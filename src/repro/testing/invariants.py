"""Recovery invariants, checked by replaying a runner's event log.

The paper's fault-tolerance story (section 2.3) reduces to promises
that must hold no matter which workers died or which links flapped:

1. **No command is lost** — every issued command is completed, still
   queued, or still in flight; completed projects completed *all*
   their commands.
2. **No command completes twice** — duplicated/retried results are
   deduplicated before they reach the project controller.
3. **Checkpoints are monotone** — per command, reported checkpoint
   steps and report times never move backwards (a resumed command
   continues, it does not restart behind its own checkpoint).
4. **Requeue accounting matches observed crashes** — every
   ``COMMAND_REQUEUED`` follows a ``WORKER_DEAD`` for that worker, a
   worker is declared dead at most once per outage (deaths must be
   separated by a revival), and the servers'
   ``requeued_after_failure`` counters equal the logged requeues.
5. **Recovery accounting is exact** — after a journal-based server
   restart (``SERVER_RECOVERED``), every command the recovery re-issued
   is either replayed-complete or restored to the queue (nothing lost,
   nothing invented across the restart boundary), and commands are
   only restored as part of a recovery.
6. **Speculation is exactly-once** — a ``SPECULATION_LOST`` implies a
   prior ``SPECULATION_STARTED`` *and* a prior completion of the same
   command (the race was decided before the loss was journaled), a
   speculated command still completes at most once, and the servers'
   speculation counters match the logged events.
7. **Quarantine is respected** — between a worker's
   ``WORKER_QUARANTINED`` and its ``WORKER_READMITTED`` the same server
   assigns it no workload, and readmissions only follow quarantines.
8. **Breaker accounting is consistent** — every peer circuit breaker's
   open/close/skip counters describe a realisable automaton history
   (skips require an open, a closed breaker has closed as often as it
   opened).
9. **Fault accounting matches observations** — the chaos harness's
   labelled fault counters in the shared metrics registry
   (``chaos_faults_total``, ``chaos_messages_dropped_total``,
   ``chaos_delay_seconds_total``) agree with the network's own
   drop/delay totals: every injected fault was observed, none were
   invented.

The multi-tenant service plane adds three more:

10. **Tenant isolation** — a completion is only ever delivered to the
    tenant that issued the command, every project's result log holds
    only its own command ids, and no queued or assigned command
    belongs to a tenant the deployment does not know.
11. **Exact quota accounting** — every fair-share scheduler's ledger
    balances (``dispatched == released + in_flight`` per tenant),
    ``peak_in_flight`` never exceeded the quota, a zero-quota tenant
    never dispatched, and the ledgers' deferral/release totals match
    the ``ADMISSION_DEFERRED`` / ``ADMISSION_RELEASED`` events.
12. **Starvation-free aging** — no admissible command that aged past
    the fair-share ``max_wait_seconds`` was ever bypassed by a
    workload build (zero ``AGING_VIOLATED`` events), and the
    schedulers' violation counters agree with the log.
13. **Migration accounting is exact** — every ``PROJECT_MIGRATED``
    follows a ``SHARD_DEAD`` for its source shard and lands on a live
    shard, and the displaced/migrated counts agree across the event
    log, the runner's migration reports and the metrics registry.
14. **Epoch fencing holds** — per-project ownership epochs
    (``EPOCH_BUMPED``) move strictly forward, the current owner's
    journal never accepted an effectful write stamped below the epoch
    in force at that point of its history, and the fencing-rejection
    counts agree across the event log, the shared metrics registry,
    the live servers' counters and the zombies' demotion reports —
    so a partitioned old owner can never smuggle a stale write past
    a failover.

When the event log spans more than one project, all command identity
is *scoped* by project id, so two tenants reusing a command id (say,
``ensemble/r0``) never alias in the checker; single-project logs keep
plain ids, so checks behave exactly as before.

:class:`Invariants` replays a :class:`~repro.core.events.EventLog`
(plus end-state from the runner's servers) and returns human-readable
violations; :meth:`Invariants.assert_ok` raises
:class:`~repro.util.errors.InvariantViolation` listing them all.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Set

from repro.core.command import scoped_command_id
from repro.core.events import EventKind, EventLog
from repro.core.project import ProjectStatus
from repro.net.circuit import BreakerState
from repro.server.wal import WriteAheadLog
from repro.util.errors import InvariantViolation
from repro.util.serialization import decode_message


class Invariants:
    """Replay-based invariant checker for one :class:`ProjectRunner`."""

    def __init__(self, runner) -> None:
        self.runner = runner
        self.events: EventLog = runner.events

    @property
    def _servers(self) -> list:
        """The runner's servers via the public accessor, falling back
        to the private list for bare test doubles."""
        servers = getattr(self.runner, "servers", None)
        if servers is None:
            servers = self.runner._servers
        return list(servers)

    # -- identity scoping --------------------------------------------------

    def _scoper(self) -> Callable[[str, str], str]:
        """Command-identity namer: plain ids for a single-project log,
        project-scoped ids when the log spans tenants (so two tenants
        reusing a command id never alias in any check)."""
        projects = {
            record.project_id
            for record in self.events.filter(kind=EventKind.COMMANDS_ISSUED)
        }
        if len(projects) <= 1:
            return lambda pid, cid: cid
        return lambda pid, cid: scoped_command_id(pid, cid) if pid else cid

    # -- individual checks -------------------------------------------------

    def _issued_ids(self, scope: Callable[[str, str], str]) -> Set[str]:
        issued: Set[str] = set()
        for record in self.events.filter(kind=EventKind.COMMANDS_ISSUED):
            for cid in record.details.get("ids", []):
                issued.add(scope(record.project_id, cid))
        return issued

    def _completed_ids(
        self,
        scope: Callable[[str, str], str],
        include_replayed: bool = True,
    ) -> List[str]:
        """Completions in the log.  ``include_replayed=False`` drops
        journal-replay re-deliveries (``replayed=True`` completions): a
        result completed live and later replayed on a recovered or
        migrated server is one completion, not two."""
        return [
            scope(record.project_id, record.details.get("command"))
            for record in self.events.filter(kind=EventKind.COMMAND_COMPLETED)
            if include_replayed or not record.details.get("replayed")
        ]

    def _dead_servers(self) -> Set[str]:
        """Shards declared dead by the shard monitor.  Their in-memory
        counters vanished with the process, so counter-vs-event
        cross-checks must not charge survivors for the corpse's log."""
        return {
            record.details.get("server")
            for record in self.events.filter(kind=EventKind.SHARD_DEAD)
        }

    def check_no_lost_commands(self) -> List[str]:
        """Invariant 1: issued == completed + queued + in-flight.

        Deferred submissions (fair-share backpressure) are journaled
        but intentionally not yet queued; they count as queued here so
        backpressure is never mistaken for loss.
        """
        scope = self._scoper()
        issued = self._issued_ids(scope)
        completed = set(self._completed_ids(scope))
        queued: Set[str] = set()
        in_flight: Set[str] = set()
        for server in self._servers:
            for c in server.queue.commands():
                queued.add(scope(getattr(c, "project_id", ""), c.command_id))
            fairshare = getattr(server, "fairshare", None)
            if fairshare is not None:
                for c in fairshare.deferred_commands():
                    queued.add(scope(c.project_id, c.command_id))
            for cmds in server.assignments.values():
                for c in cmds.values():
                    in_flight.add(
                        scope(getattr(c, "project_id", ""), c.command_id)
                    )
        violations = []
        lost = issued - completed - queued - in_flight
        if lost:
            violations.append(
                f"commands lost (issued but neither completed, queued nor "
                f"in flight): {sorted(lost)}"
            )
        phantom = completed - issued
        if phantom:
            violations.append(
                f"commands completed that were never issued: {sorted(phantom)}"
            )
        for pid, project in self.runner._projects.items():
            if (
                project.status is ProjectStatus.COMPLETE
                and project.completed > project.issued
            ):
                violations.append(
                    f"project {pid!r} recorded more completions "
                    f"({project.completed}) than issues ({project.issued})"
                )
        return violations

    def check_no_double_completion(self) -> List[str]:
        """Invariant 2: each command completes at most once.

        Replayed completions are excluded: a journal replay re-delivers
        already-completed results to the fresh controller by design
        (restart and migration), which is idempotent, not a double.
        """
        seen: Dict[str, int] = {}
        for command_id in self._completed_ids(
            self._scoper(), include_replayed=False
        ):
            seen[command_id] = seen.get(command_id, 0) + 1
        return [
            f"command {command_id!r} completed {n} times"
            for command_id, n in sorted(seen.items())
            if n > 1
        ]

    def check_checkpoint_monotonicity(self) -> List[str]:
        """Invariant 3: per-command checkpoint steps/times never regress.

        A speculated command legitimately has two workers reporting
        checkpoints concurrently (the straggler and its speculative
        copy), so commands named in ``SPECULATION_STARTED`` events are
        tracked per ``(command, worker)`` stream instead of globally.

        A ``COMMAND_RESTORED`` event starts a new execution regime for
        its command: when the restore carried no journaled checkpoint
        (``has_checkpoint=False`` — e.g. the checkpoint was only ever
        reported to a peer shard that fetched the command, never to the
        owner's journal) the command legitimately restarts from scratch
        and its stream resets.  When a checkpoint *was* journaled, the
        stream is reseeded at the journaled step instead — the restored
        command must resume at or past it.
        """
        violations = []
        scope = self._scoper()
        speculated = {
            scope(record.project_id, record.details.get("command"))
            for record in self.events.filter(kind=EventKind.SPECULATION_STARTED)
        }
        last: Dict[tuple, tuple] = {}
        for record in self.events.all():
            if record.kind is EventKind.COMMAND_RESTORED:
                command = scope(record.project_id, record.details.get("command"))
                for key in [k for k in last if k[0] == command]:
                    del last[key]
                step = record.details.get("step")
                if record.details.get("has_checkpoint") and step is not None:
                    last[(command, None)] = (record.time, step)
                continue
            if record.kind is not EventKind.CHECKPOINT_REPORTED:
                continue
            if record.details.get("command") is None:
                continue
            command = scope(record.project_id, record.details["command"])
            step = record.details.get("step")
            if step is None:
                continue
            key = (
                (command, record.details.get("worker"))
                if command in speculated
                else (command, None)
            )
            prev = last.get(key)
            if prev is not None:
                prev_time, prev_step = prev
                if record.time < prev_time or step < prev_step:
                    violations.append(
                        f"checkpoint regression for {command!r}: "
                        f"(t={prev_time}, step={prev_step}) -> "
                        f"(t={record.time}, step={step})"
                    )
            last[key] = (record.time, step)
        return violations

    def check_requeue_accounting(self) -> List[str]:
        """Invariant 4: requeues <-> observed crashes, deaths <-> outages.

        Events recorded by a shard later declared dead are excluded:
        its counters died with it, and its workers were re-homed — the
        successor legitimately opens a fresh outage for a worker the
        corpse had already declared dead.
        """
        violations = []
        dead_servers = self._dead_servers()
        requeued = [
            record
            for record in self.events.filter(kind=EventKind.COMMAND_REQUEUED)
            if record.details.get("server") not in dead_servers
        ]
        counter_total = sum(
            server.requeued_after_failure for server in self._servers
        )
        if counter_total != len(requeued):
            violations.append(
                f"servers count {counter_total} requeues after failure but the "
                f"event log records {len(requeued)}"
            )
        # replay death/revival interleaving per worker
        declared_dead: Dict[str, bool] = {}
        for record in self.events.all():
            worker: Optional[str] = record.details.get("worker")
            if (
                record.kind in (
                    EventKind.WORKER_DEAD,
                    EventKind.WORKER_REVIVED,
                    EventKind.COMMAND_REQUEUED,
                )
                and record.details.get("server") in dead_servers
            ):
                continue
            if record.kind is EventKind.WORKER_DEAD:
                if declared_dead.get(worker):
                    violations.append(
                        f"worker {worker!r} declared dead twice in one outage "
                        f"(t={record.time})"
                    )
                declared_dead[worker] = True
            elif record.kind is EventKind.WORKER_REVIVED:
                if not declared_dead.get(worker):
                    violations.append(
                        f"worker {worker!r} revived without a preceding death "
                        f"(t={record.time})"
                    )
                declared_dead[worker] = False
            elif record.kind is EventKind.COMMAND_REQUEUED:
                if not declared_dead.get(worker):
                    violations.append(
                        f"command {record.details.get('command')!r} requeued "
                        f"from {worker!r} which was not declared dead "
                        f"(t={record.time})"
                    )
        return violations

    def check_recovery_accounting(self) -> List[str]:
        """Invariant 5: journal recovery neither loses nor invents work."""
        violations = []
        recovered_projects: Set[str] = set()
        for record in self.events.all():
            pid = record.project_id
            if record.kind is EventKind.SERVER_RECOVERED:
                recovered_projects.add(pid)
            elif record.kind is EventKind.COMMAND_RESTORED:
                if pid not in recovered_projects:
                    violations.append(
                        f"command {record.details.get('command')!r} restored "
                        f"for {pid!r} without a preceding server recovery "
                        f"(t={record.time})"
                    )
        # aggregate per project: a project may recover more than once
        # in one log (server restart, then a shard migration), and
        # each recovery's numbers must jointly balance the re-issues
        totals: Dict[str, Dict[str, int]] = {}
        for record in self.events.filter(kind=EventKind.SERVER_RECOVERED):
            agg = totals.setdefault(
                record.project_id, {"replayed": 0, "restored": 0}
            )
            agg["replayed"] += record.details.get("replayed", 0)
            agg["restored"] += record.details.get("restored", 0)
        for pid, agg in sorted(totals.items()):
            replayed = agg["replayed"]
            restored = agg["restored"]
            reissued = sum(
                r.details.get("count", 0)
                for r in self.events.filter(
                    kind=EventKind.COMMANDS_ISSUED, project_id=pid
                )
                if r.details.get("generation") == "recovered"
            )
            if replayed + restored != reissued:
                violations.append(
                    f"recovery of {pid!r} re-issued {reissued} commands but "
                    f"accounts for {replayed} replayed + {restored} restored"
                )
            restored_events = self.events.filter(
                kind=EventKind.COMMAND_RESTORED, project_id=pid
            )
            if len(restored_events) != restored:
                violations.append(
                    f"recovery of {pid!r} reports {restored} restored "
                    f"commands but {len(restored_events)} restore events "
                    f"were logged"
                )
            replayed_events = [
                r
                for r in self.events.filter(
                    kind=EventKind.COMMAND_COMPLETED, project_id=pid
                )
                if r.details.get("replayed")
            ]
            if len(replayed_events) != replayed:
                violations.append(
                    f"recovery of {pid!r} reports {replayed} replayed "
                    f"results but {len(replayed_events)} replayed "
                    f"completions were logged"
                )
        return violations

    def check_speculation_exactly_once(self) -> List[str]:
        """Invariant 6: speculative re-execution never double-completes."""
        violations = []
        scope = self._scoper()
        dead_servers = self._dead_servers()
        started: Set[str] = set()
        completed_live: Dict[str, int] = {}
        completed_any: Dict[str, int] = {}
        lost: Dict[str, int] = {}
        lost_live = 0
        started_live = 0
        for record in self.events.all():
            command = record.details.get("command")
            if command is not None:
                command = scope(record.project_id, command)
            if record.kind is EventKind.SPECULATION_STARTED:
                started.add(command)
                if record.details.get("server") not in dead_servers:
                    started_live += 1
            elif record.kind is EventKind.COMMAND_COMPLETED:
                completed_any[command] = completed_any.get(command, 0) + 1
                if not record.details.get("replayed"):
                    completed_live[command] = (
                        completed_live.get(command, 0) + 1
                    )
            elif record.kind is EventKind.SPECULATION_LOST:
                lost[command] = lost.get(command, 0) + 1
                if record.details.get("server") not in dead_servers:
                    lost_live += 1
                if command not in started:
                    violations.append(
                        f"speculation lost for {command!r} without a "
                        f"preceding speculation start (t={record.time})"
                    )
                if completed_any.get(command, 0) < 1:
                    violations.append(
                        f"speculation lost for {command!r} before any copy "
                        f"completed — the race was not decided "
                        f"(t={record.time})"
                    )
        for command in sorted(started):
            if completed_live.get(command, 0) > 1:
                violations.append(
                    f"speculated command {command!r} completed "
                    f"{completed_live[command]} times"
                )
            if lost.get(command, 0) > 1:
                violations.append(
                    f"speculated command {command!r} journaled "
                    f"{lost[command]} losses (at most one copy can lose)"
                )
        counter_lost = sum(
            getattr(server, "speculations_lost", 0)
            for server in self._servers
        )
        if counter_lost != lost_live:
            violations.append(
                f"servers count {counter_lost} speculation losses but the "
                f"event log records {lost_live}"
            )
        counter_started = sum(
            getattr(server, "speculations_started", 0)
            for server in self._servers
        )
        if counter_started != started_live:
            violations.append(
                f"servers count {counter_started} speculations started but "
                f"the event log disagrees"
            )
        return violations

    def check_quarantine_respected(self) -> List[str]:
        """Invariant 7: quarantined workers receive no workload."""
        violations = []
        quarantined: Set[tuple] = set()
        ever_quarantined: Set[tuple] = set()
        for record in self.events.all():
            worker = record.details.get("worker")
            server = record.details.get("server")
            key = (server, worker)
            if record.kind is EventKind.WORKER_QUARANTINED:
                quarantined.add(key)
                ever_quarantined.add(key)
            elif record.kind is EventKind.WORKER_READMITTED:
                if key not in ever_quarantined:
                    violations.append(
                        f"worker {worker!r} readmitted by {server!r} without "
                        f"a preceding quarantine (t={record.time})"
                    )
                quarantined.discard(key)
            elif record.kind is EventKind.WORKLOAD_ASSIGNED:
                if key in quarantined:
                    violations.append(
                        f"server {server!r} assigned workload to quarantined "
                        f"worker {worker!r} (t={record.time})"
                    )
        return violations

    def check_breaker_accounting(self) -> List[str]:
        """Invariant 8: circuit-breaker counters form a valid history."""
        violations = []
        network = getattr(self.runner, "network", None)
        endpoints = getattr(network, "endpoints", None)
        if endpoints is None:
            return violations
        for name in network.endpoints():
            endpoint = network.endpoint(name)
            for peer, breaker in getattr(endpoint, "peer_breakers", {}).items():
                label = f"breaker {name!r}->{peer!r}"
                if breaker.skips > 0 and breaker.opens == 0:
                    violations.append(
                        f"{label} skipped {breaker.skips} calls but never "
                        f"opened"
                    )
                if breaker.closes > breaker.opens:
                    violations.append(
                        f"{label} closed {breaker.closes} times but only "
                        f"opened {breaker.opens}"
                    )
                if (
                    breaker.state is BreakerState.CLOSED
                    and breaker.closes != breaker.opens
                ):
                    violations.append(
                        f"{label} ended closed with {breaker.opens} opens "
                        f"but {breaker.closes} closes (a re-closed breaker "
                        f"must balance its opens)"
                    )
        return violations

    def check_fault_accounting(self) -> List[str]:
        """Invariant 9: chaos fault counters match network observations.

        Applies only when the runner's network is a
        :class:`~repro.testing.chaos.ChaosNetwork` exporting its
        injections to the shared metrics registry; plain networks (and
        bare test doubles) have nothing to cross-check.
        """
        violations = []
        network = getattr(self.runner, "network", None)
        obs = getattr(network, "obs", None)
        if obs is None or not hasattr(network, "messages_dropped"):
            return violations
        metrics = obs.metrics
        counted_dropped = metrics.total("chaos_messages_dropped_total")
        if counted_dropped != network.messages_dropped:
            violations.append(
                f"chaos metrics count {counted_dropped:.0f} dropped messages "
                f"but the network observed {network.messages_dropped}"
            )
        counted_delay = metrics.total("chaos_delay_seconds_total")
        observed_delay = getattr(network, "chaos_delay_seconds", 0.0)
        if abs(counted_delay - observed_delay) > 1e-9:
            violations.append(
                f"chaos metrics count {counted_delay}s of injected delay but "
                f"the network observed {observed_delay}s"
            )
        fault_kinds_dropping = (
            "server_crash", "flapping_worker", "drop", "partition", "sick_peer"
        )
        dropping_faults = sum(
            metrics.value("chaos_faults_total", kind=kind)
            for kind in fault_kinds_dropping
        )
        if dropping_faults != counted_dropped:
            violations.append(
                f"chaos fault counters record {dropping_faults:.0f} "
                f"drop-class injections but {counted_dropped:.0f} messages "
                f"were counted dropped"
            )
        return violations

    def _fairshare_schedulers(self) -> List[tuple]:
        """``(server_name, scheduler)`` for every fair-share server."""
        out = []
        for server in self._servers:
            fairshare = getattr(server, "fairshare", None)
            if fairshare is not None:
                out.append((getattr(server, "name", "?"), fairshare))
        return out

    def check_tenant_isolation(self) -> List[str]:
        """Invariant 10: no work or results leak across tenants."""
        violations = []
        issued_by_pid: Dict[str, Set[str]] = {}
        for record in self.events.filter(kind=EventKind.COMMANDS_ISSUED):
            issued_by_pid.setdefault(record.project_id, set()).update(
                record.details.get("ids", [])
            )
        # completions must reach the tenant that issued the command
        for record in self.events.filter(kind=EventKind.COMMAND_COMPLETED):
            pid = record.project_id
            cid = record.details.get("command")
            if cid is None or cid in issued_by_pid.get(pid, set()):
                continue
            leakers = sorted(
                p for p, ids in issued_by_pid.items() if cid in ids and p != pid
            )
            if leakers:
                violations.append(
                    f"cross-tenant leak: completion of {cid!r} delivered to "
                    f"{pid!r} but issued by {leakers[0]!r} (t={record.time})"
                )
        # a project's result log holds only its own command ids
        for pid, project in self.runner._projects.items():
            results_log = getattr(project, "results_log", None)
            if not results_log or pid not in issued_by_pid:
                continue
            foreign = {cid for cid, _ in results_log} - issued_by_pid[pid]
            if foreign:
                violations.append(
                    f"project {pid!r} holds results for commands it never "
                    f"issued: {sorted(foreign)[:5]}"
                )
        # queued/assigned work belongs to known tenants only
        known = set(self.runner._projects) | set(issued_by_pid)
        if known:
            for server in self._servers:
                name = getattr(server, "name", "?")
                for c in server.queue.commands():
                    pid = getattr(c, "project_id", "")
                    if pid and pid not in known:
                        violations.append(
                            f"server {name!r} queues command "
                            f"{c.command_id!r} for unknown tenant {pid!r}"
                        )
                for cmds in server.assignments.values():
                    for c in cmds.values():
                        pid = getattr(c, "project_id", "")
                        if pid and pid not in known:
                            violations.append(
                                f"server {name!r} assigned command "
                                f"{c.command_id!r} for unknown tenant {pid!r}"
                            )
        return violations

    def check_quota_accounting(self) -> List[str]:
        """Invariant 11: fair-share ledgers are exact and match the log.

        Servers without a fair-share scheduler attached have no quota
        promises to keep, so single-tenant deployments pass trivially.
        """
        violations = []
        schedulers = self._fairshare_schedulers()
        if not schedulers:
            return violations
        for name, scheduler in schedulers:
            for message in scheduler.check_ledger():
                violations.append(f"server {name!r}: {message}")
        # cross-check deferral accounting against the event log; a
        # dead shard's ledger vanished with its process, so its logged
        # deferrals/releases are excluded from the comparison
        dead_servers = self._dead_servers()
        deferred_events: Dict[str, int] = {}
        for record in self.events.filter(kind=EventKind.ADMISSION_DEFERRED):
            if record.details.get("server") in dead_servers:
                continue
            pid = record.project_id
            deferred_events[pid] = deferred_events.get(pid, 0) + 1
        released_events: Dict[str, int] = {}
        for record in self.events.filter(kind=EventKind.ADMISSION_RELEASED):
            if record.details.get("server") in dead_servers:
                continue
            pid = record.project_id
            released_events[pid] = released_events.get(pid, 0) + 1
        totals: Dict[str, Dict[str, int]] = {}
        for _, scheduler in schedulers:
            for tenant, snap in scheduler.snapshot().items():
                agg = totals.setdefault(
                    tenant, {"deferred_total": 0, "deferred_pending": 0}
                )
                agg["deferred_total"] += snap["deferred_total"]
                agg["deferred_pending"] += snap["deferred_pending"]
        for tenant in sorted(set(deferred_events) | set(totals)):
            agg = totals.get(
                tenant, {"deferred_total": 0, "deferred_pending": 0}
            )
            logged = deferred_events.get(tenant, 0)
            if agg["deferred_total"] != logged:
                violations.append(
                    f"tenant {tenant!r}: ledgers count "
                    f"{agg['deferred_total']} deferrals but the event log "
                    f"records {logged}"
                )
            ledger_released = agg["deferred_total"] - agg["deferred_pending"]
            logged_released = released_events.get(tenant, 0)
            if ledger_released != logged_released:
                violations.append(
                    f"tenant {tenant!r}: ledgers account for "
                    f"{ledger_released} released deferrals but the event "
                    f"log records {logged_released}"
                )
        return violations

    def check_starvation_free_aging(self) -> List[str]:
        """Invariant 12: no aged admissible command was ever bypassed."""
        violations = []
        aged = self.events.filter(kind=EventKind.AGING_VIOLATED)
        for record in aged:
            violations.append(
                f"aged command {record.details.get('command')!r} of tenant "
                f"{record.project_id!r} was bypassed after waiting "
                f"{record.details.get('waited', '?')}s (t={record.time})"
            )
        schedulers = self._fairshare_schedulers()
        if schedulers:
            counted = sum(s.aging_violations for _, s in schedulers)
            if counted != len(aged):
                violations.append(
                    f"schedulers count {counted} aging violations but the "
                    f"event log records {len(aged)}"
                )
        return violations

    def check_migration_accounting(self) -> List[str]:
        """Invariant 13: shard failover is exactly accounted.

        Every ``PROJECT_MIGRATED`` follows a ``SHARD_DEAD`` for its
        source shard, lands on a live shard the runner still knows,
        and the counts agree everywhere they are recorded: the
        ``SHARD_DEAD`` events' displaced totals, the runner's
        migration reports, and the observability counters
        (``repro_shard_failovers_total``,
        ``repro_projects_migrated_total``).  Result-set equality with
        the crash-free run is the scenario's job (the checker sees
        only one run); this check pins the accounting half.
        """
        violations = []
        dead: Set[str] = set()
        displaced_total = 0
        migrations = []
        for record in self.events.all():
            if record.kind is EventKind.SHARD_DEAD:
                dead.add(record.details.get("server"))
                displaced_total += record.details.get("displaced", 0)
            elif record.kind is EventKind.PROJECT_MIGRATED:
                migrations.append(record)
                src = record.details.get("from_shard")
                dst = record.details.get("to_shard")
                pid = record.project_id
                if src not in dead:
                    violations.append(
                        f"project {pid!r} migrated from {src!r} which was "
                        f"never declared dead (t={record.time})"
                    )
                if dst in dead or dst == src:
                    violations.append(
                        f"project {pid!r} migrated to {dst!r}, which is "
                        f"dead or the source shard itself (t={record.time})"
                    )
                if pid not in self.runner._projects:
                    violations.append(
                        f"migrated project {pid!r} is unknown to the runner"
                    )
        if not dead and not migrations:
            return violations
        if displaced_total != len(migrations):
            violations.append(
                f"shard deaths displaced {displaced_total} projects but "
                f"{len(migrations)} migrations were logged"
            )
        reports = getattr(self.runner, "migrations", None)
        if reports is not None and len(reports) != len(migrations):
            violations.append(
                f"the runner holds {len(reports)} migration reports but "
                f"the event log records {len(migrations)}"
            )
        obs = getattr(self.runner, "obs", None)
        if obs is not None:
            failovers = obs.metrics.total("repro_shard_failovers_total")
            if failovers != len(dead):
                violations.append(
                    f"metrics count {failovers:.0f} shard failovers but "
                    f"{len(dead)} shards were declared dead"
                )
            migrated = obs.metrics.total("repro_projects_migrated_total")
            if migrated != len(migrations):
                violations.append(
                    f"metrics count {migrated:.0f} migrated projects but "
                    f"the event log records {len(migrations)}"
                )
        live_shards = {getattr(s, "name", "?") for s in self._servers}
        for record in migrations:
            dst = record.details.get("to_shard")
            if dst not in live_shards:
                violations.append(
                    f"project {record.project_id!r} migrated to {dst!r} "
                    f"which is not a live server"
                )
        return violations

    def check_epoch_fencing(self) -> List[str]:
        """Invariant 14: ownership epochs fence every stale regime.

        Three promises, cross-checked against independent recordings:
        per-project ``EPOCH_BUMPED`` events move strictly forward; the
        *current owner's* journal never accepted an effectful write
        stamped below the epoch in force at that point of its history
        (replayed record by record from disk); and the
        fencing-rejection counts agree everywhere they are kept — the
        event log, ``repro_fencing_rejections_total`` in the metrics
        registry, the live servers' ``fencing_rejections`` counters,
        and the demotion reports healed zombies answered probes with.
        """
        violations = []
        last_epoch: Dict[str, int] = {}
        for record in self.events.filter(kind=EventKind.EPOCH_BUMPED):
            pid = record.project_id
            epoch = int(record.details.get("epoch", 0))
            prev = last_epoch.get(pid)
            if prev is not None and epoch <= prev:
                violations.append(
                    f"epoch of {pid!r} bumped to {epoch} after {prev} "
                    f"(epochs must move strictly forward; t={record.time})"
                )
            last_epoch[pid] = max(epoch, prev or 0)
        violations += self._scan_owner_journals()
        rejections = self.events.filter(kind=EventKind.FENCING_REJECTED)
        obs = getattr(self.runner, "obs", None)
        if obs is not None:
            counted = obs.metrics.total("repro_fencing_rejections_total")
            if counted != len(rejections):
                violations.append(
                    f"metrics count {counted:.0f} fencing rejections but "
                    f"the event log records {len(rejections)}"
                )
        counter_total = sum(
            getattr(server, "fencing_rejections", 0)
            for server in self._servers
        )
        if counter_total != len(rejections):
            violations.append(
                f"live servers count {counter_total} fencing rejections "
                f"but the event log records {len(rejections)}"
            )
        if rejections and not last_epoch:
            violations.append(
                f"{len(rejections)} fencing rejections logged but no epoch "
                f"was ever bumped (nothing to be stale against)"
            )
        # demotion reports: internally consistent, and their rejected
        # forwards can never exceed the owners' forward-path rejections
        monitor = getattr(self.runner, "monitor", None)
        reports = list(getattr(monitor, "demotions", None) or [])
        forward_rejections = sum(
            1 for r in rejections if r.details.get("path") == "forward"
        )
        reported_rejected = 0
        for report in reports:
            pid = report.get("project_id")
            rejected = int(report.get("forwards_rejected", 0))
            duplicate = int(report.get("forwards_duplicate", 0))
            forwarded = int(report.get("results_forwarded", 0))
            reported_rejected += rejected
            if rejected + duplicate > forwarded:
                violations.append(
                    f"demotion of {pid!r} at {report.get('server')!r} "
                    f"accounts for {rejected} rejected + {duplicate} "
                    f"duplicate forwards out of only {forwarded} forwarded "
                    f"results"
                )
            if int(report.get("epoch", 0)) <= int(
                report.get("stale_epoch", 0)
            ):
                violations.append(
                    f"demotion of {pid!r} fenced stale epoch "
                    f"{report.get('stale_epoch')} with a non-newer epoch "
                    f"{report.get('epoch')}"
                )
        if reported_rejected > forward_rejections:
            violations.append(
                f"demotion reports account for {reported_rejected} rejected "
                f"forwards but owners logged only {forward_rejections} "
                f"forward-path rejections"
            )
        return violations

    def _scan_owner_journals(self) -> List[str]:
        """Replay each project's *current owner's* journal directory.

        A fenced zombie's own directory legitimately holds
        stale-stamped writes — its whole regime was fenced and
        discarded at demotion — so only the owner of record is held to
        the no-stale-writes promise.  Runners without journals (or
        without a shard router) have no durable history to scan.
        """
        violations = []
        root = getattr(self.runner, "_journal_root", None)
        router = getattr(self.runner, "router", None)
        if root is None or router is None:
            return violations
        for pid in sorted(getattr(self.runner, "_projects", {})):
            try:
                owner = router.route(pid)
            except Exception:
                continue  # every shard parked/dead: no owner to hold
            directory = Path(root) / owner / pid
            if directory.is_dir():
                violations += self._scan_journal_dir(pid, owner, directory)
        return violations

    def _scan_journal_dir(
        self, pid: str, owner: str, directory: Path
    ) -> List[str]:
        """One journal directory, replayed record by record: epoch
        records strictly advance, and no result record carries a stamp
        below the epoch in force when it was accepted."""
        violations = []
        epoch = 0
        snapshot_seq = -1
        snapshots = sorted(directory.glob("snapshot-*.bin"))
        if snapshots:
            try:
                payload = decode_message(snapshots[-1].read_bytes())
            except Exception as exc:
                return [
                    f"journal of {pid!r} at {owner!r}: snapshot "
                    f"{snapshots[-1].name} unreadable ({exc})"
                ]
            epoch = int(payload.get("epoch", 0))
            snapshot_seq = int(payload.get("last_seq", -1))
        wal_dir = directory / "wal"
        if not wal_dir.is_dir():
            return violations
        wal = WriteAheadLog(wal_dir, fsync=False)
        try:
            for record in wal.records():
                if int(record.get("seq", -1)) <= snapshot_seq:
                    continue  # already folded into the snapshot
                kind = record.get("type")
                if kind == "epoch":
                    bumped = int(record.get("epoch", 0))
                    if bumped <= epoch:
                        violations.append(
                            f"journal of {pid!r} at {owner!r}: epoch record "
                            f"{bumped} does not advance past {epoch}"
                        )
                    epoch = max(epoch, bumped)
                elif kind == "result":
                    command = record.get("command") or {}
                    stamp = int(command.get("epoch", 0))
                    if stamp < epoch:
                        violations.append(
                            f"journal of {pid!r} at {owner!r}: result for "
                            f"{command.get('command_id')!r} accepted at "
                            f"stale epoch {stamp} < {epoch}"
                        )
        finally:
            wal.close()
        return violations

    # -- entry points ------------------------------------------------------

    def check(self) -> List[str]:
        """All violations across every invariant (empty = green)."""
        return (
            self.check_no_lost_commands()
            + self.check_no_double_completion()
            + self.check_checkpoint_monotonicity()
            + self.check_requeue_accounting()
            + self.check_recovery_accounting()
            + self.check_speculation_exactly_once()
            + self.check_quarantine_respected()
            + self.check_breaker_accounting()
            + self.check_fault_accounting()
            + self.check_tenant_isolation()
            + self.check_quota_accounting()
            + self.check_starvation_free_aging()
            + self.check_migration_accounting()
            + self.check_epoch_fencing()
        )

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolation` if any invariant fails."""
        violations = self.check()
        if violations:
            raise InvariantViolation(
                "recovery invariants violated:\n  - "
                + "\n  - ".join(violations)
            )
