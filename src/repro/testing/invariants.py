"""Recovery invariants, checked by replaying a runner's event log.

The paper's fault-tolerance story (section 2.3) reduces to promises
that must hold no matter which workers died or which links flapped:

1. **No command is lost** — every issued command is completed, still
   queued, or still in flight; completed projects completed *all*
   their commands.
2. **No command completes twice** — duplicated/retried results are
   deduplicated before they reach the project controller.
3. **Checkpoints are monotone** — per command, reported checkpoint
   steps and report times never move backwards (a resumed command
   continues, it does not restart behind its own checkpoint).
4. **Requeue accounting matches observed crashes** — every
   ``COMMAND_REQUEUED`` follows a ``WORKER_DEAD`` for that worker, a
   worker is declared dead at most once per outage (deaths must be
   separated by a revival), and the servers'
   ``requeued_after_failure`` counters equal the logged requeues.
5. **Recovery accounting is exact** — after a journal-based server
   restart (``SERVER_RECOVERED``), every command the recovery re-issued
   is either replayed-complete or restored to the queue (nothing lost,
   nothing invented across the restart boundary), and commands are
   only restored as part of a recovery.

:class:`Invariants` replays a :class:`~repro.core.events.EventLog`
(plus end-state from the runner's servers) and returns human-readable
violations; :meth:`Invariants.assert_ok` raises
:class:`~repro.util.errors.InvariantViolation` listing them all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.events import EventKind, EventLog
from repro.core.project import ProjectStatus
from repro.util.errors import InvariantViolation


class Invariants:
    """Replay-based invariant checker for one :class:`ProjectRunner`."""

    def __init__(self, runner) -> None:
        self.runner = runner
        self.events: EventLog = runner.events

    # -- individual checks -------------------------------------------------

    def _issued_ids(self) -> Set[str]:
        issued: Set[str] = set()
        for record in self.events.filter(kind=EventKind.COMMANDS_ISSUED):
            issued.update(record.details.get("ids", []))
        return issued

    def _completed_ids(self) -> List[str]:
        return [
            record.details.get("command")
            for record in self.events.filter(kind=EventKind.COMMAND_COMPLETED)
        ]

    def check_no_lost_commands(self) -> List[str]:
        """Invariant 1: issued == completed + queued + in-flight."""
        issued = self._issued_ids()
        completed = set(self._completed_ids())
        queued: Set[str] = set()
        in_flight: Set[str] = set()
        for server in self.runner._servers:
            queued.update(c.command_id for c in server.queue.commands())
            for cmds in server.assignments.values():
                in_flight.update(cmds)
        violations = []
        lost = issued - completed - queued - in_flight
        if lost:
            violations.append(
                f"commands lost (issued but neither completed, queued nor "
                f"in flight): {sorted(lost)}"
            )
        phantom = completed - issued
        if phantom:
            violations.append(
                f"commands completed that were never issued: {sorted(phantom)}"
            )
        for pid, project in self.runner._projects.items():
            if (
                project.status is ProjectStatus.COMPLETE
                and project.completed > project.issued
            ):
                violations.append(
                    f"project {pid!r} recorded more completions "
                    f"({project.completed}) than issues ({project.issued})"
                )
        return violations

    def check_no_double_completion(self) -> List[str]:
        """Invariant 2: each command completes at most once."""
        seen: Dict[str, int] = {}
        for command_id in self._completed_ids():
            seen[command_id] = seen.get(command_id, 0) + 1
        return [
            f"command {command_id!r} completed {n} times"
            for command_id, n in sorted(seen.items())
            if n > 1
        ]

    def check_checkpoint_monotonicity(self) -> List[str]:
        """Invariant 3: per-command checkpoint steps/times never regress."""
        violations = []
        last: Dict[str, tuple] = {}
        for record in self.events.filter(kind=EventKind.CHECKPOINT_REPORTED):
            command = record.details.get("command")
            step = record.details.get("step")
            if command is None or step is None:
                continue
            prev = last.get(command)
            if prev is not None:
                prev_time, prev_step = prev
                if record.time < prev_time or step < prev_step:
                    violations.append(
                        f"checkpoint regression for {command!r}: "
                        f"(t={prev_time}, step={prev_step}) -> "
                        f"(t={record.time}, step={step})"
                    )
            last[command] = (record.time, step)
        return violations

    def check_requeue_accounting(self) -> List[str]:
        """Invariant 4: requeues <-> observed crashes, deaths <-> outages."""
        violations = []
        requeued = self.events.filter(kind=EventKind.COMMAND_REQUEUED)
        counter_total = sum(
            server.requeued_after_failure for server in self.runner._servers
        )
        if counter_total != len(requeued):
            violations.append(
                f"servers count {counter_total} requeues after failure but the "
                f"event log records {len(requeued)}"
            )
        # replay death/revival interleaving per worker
        declared_dead: Dict[str, bool] = {}
        for record in self.events.all():
            worker: Optional[str] = record.details.get("worker")
            if record.kind is EventKind.WORKER_DEAD:
                if declared_dead.get(worker):
                    violations.append(
                        f"worker {worker!r} declared dead twice in one outage "
                        f"(t={record.time})"
                    )
                declared_dead[worker] = True
            elif record.kind is EventKind.WORKER_REVIVED:
                if not declared_dead.get(worker):
                    violations.append(
                        f"worker {worker!r} revived without a preceding death "
                        f"(t={record.time})"
                    )
                declared_dead[worker] = False
            elif record.kind is EventKind.COMMAND_REQUEUED:
                if not declared_dead.get(worker):
                    violations.append(
                        f"command {record.details.get('command')!r} requeued "
                        f"from {worker!r} which was not declared dead "
                        f"(t={record.time})"
                    )
        return violations

    def check_recovery_accounting(self) -> List[str]:
        """Invariant 5: journal recovery neither loses nor invents work."""
        violations = []
        recovered_projects: Set[str] = set()
        for record in self.events.all():
            pid = record.project_id
            if record.kind is EventKind.SERVER_RECOVERED:
                recovered_projects.add(pid)
            elif record.kind is EventKind.COMMAND_RESTORED:
                if pid not in recovered_projects:
                    violations.append(
                        f"command {record.details.get('command')!r} restored "
                        f"for {pid!r} without a preceding server recovery "
                        f"(t={record.time})"
                    )
        for record in self.events.filter(kind=EventKind.SERVER_RECOVERED):
            pid = record.project_id
            replayed = record.details.get("replayed", 0)
            restored = record.details.get("restored", 0)
            reissued = sum(
                r.details.get("count", 0)
                for r in self.events.filter(
                    kind=EventKind.COMMANDS_ISSUED, project_id=pid
                )
                if r.details.get("generation") == "recovered"
            )
            if replayed + restored != reissued:
                violations.append(
                    f"recovery of {pid!r} re-issued {reissued} commands but "
                    f"accounts for {replayed} replayed + {restored} restored"
                )
            restored_events = [
                r
                for r in self.events.filter(
                    kind=EventKind.COMMAND_RESTORED, project_id=pid
                )
            ]
            if len(restored_events) != restored:
                violations.append(
                    f"recovery of {pid!r} reports {restored} restored "
                    f"commands but {len(restored_events)} restore events "
                    f"were logged"
                )
            replayed_events = [
                r
                for r in self.events.filter(
                    kind=EventKind.COMMAND_COMPLETED, project_id=pid
                )
                if r.details.get("replayed")
            ]
            if len(replayed_events) != replayed:
                violations.append(
                    f"recovery of {pid!r} reports {replayed} replayed "
                    f"results but {len(replayed_events)} replayed "
                    f"completions were logged"
                )
        return violations

    # -- entry points ------------------------------------------------------

    def check(self) -> List[str]:
        """All violations across every invariant (empty = green)."""
        return (
            self.check_no_lost_commands()
            + self.check_no_double_completion()
            + self.check_checkpoint_monotonicity()
            + self.check_requeue_accounting()
            + self.check_recovery_accounting()
        )

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolation` if any invariant fails."""
        violations = self.check()
        if violations:
            raise InvariantViolation(
                "recovery invariants violated:\n  - "
                + "\n  - ".join(violations)
            )
