"""Discrete-event simulation of the Copernicus controller's scheduling.

A project is G generations of ``n_commands`` trajectories, each needing
``ns_per_command`` nanoseconds of simulation.  Workers of ``cores_per_sim``
cores pull work greedily; a single trajectory cannot be spread over
more than one worker, so with more workers than trajectories the extra
capacity idles — the command-count ceiling that flattens Figs. 7 and 8.
Trajectories are scheduled in ``ns_per_quantum`` extension chunks, the
paper's model of the controller continuously extending runs as results
stream back, which is what lets utilisation stay near-perfect below the
ceiling.

Both a DES (event-accurate, yields utilisation traces) and the analytic
closed form it converges to are provided; the test suite checks they
agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.des import Environment, Store
from repro.perfmodel.mdperf import (
    MDPerformanceModel,
    VILLIN_MODEL,
    batch_speedup,
)
from repro.util.errors import ConfigurationError


@dataclass
class ProjectSpec:
    """One adaptive-MSM project for the scheduler model (villin defaults)."""

    total_cores: int = 5000
    cores_per_sim: int = 24
    n_commands: int = 225          # commands per generation (paper: 225)
    n_generations: int = 3         # first-folded stop criterion
    ns_per_command: float = 50.0   # trajectory length per generation
    ns_per_quantum: float = 10.0   # controller extension granularity
    cluster_overhead_hours: float = 0.05
    data_per_command_mb: float = 15.0   # compressed trajectory upload
    #: Replicas the workers coalesce into one batched kernel call
    #: (1 = the unbatched engine).
    batch_size: int = 1
    #: Per-command dispatch-overhead-to-work ratio amortised by
    #: batching; see :func:`repro.perfmodel.mdperf.batch_speedup`.
    batch_dispatch_overhead: float = 0.0
    md_model: MDPerformanceModel = field(default_factory=lambda: VILLIN_MODEL)

    def __post_init__(self) -> None:
        if self.total_cores < 1 or self.cores_per_sim < 1:
            raise ConfigurationError("core counts must be >= 1")
        if self.cores_per_sim > self.total_cores:
            raise ConfigurationError(
                "cores_per_sim cannot exceed total_cores"
            )
        if self.n_commands < 1 or self.n_generations < 1:
            raise ConfigurationError("command/generation counts must be >= 1")
        if self.ns_per_command <= 0 or self.ns_per_quantum <= 0:
            raise ConfigurationError("ns parameters must be positive")
        if self.cluster_overhead_hours < 0 or self.data_per_command_mb < 0:
            raise ConfigurationError("overheads must be >= 0")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.batch_dispatch_overhead < 0:
            raise ConfigurationError("batch_dispatch_overhead must be >= 0")

    @property
    def n_workers(self) -> int:
        """Concurrent simulations the core pool supports."""
        return max(1, self.total_cores // self.cores_per_sim)

    @property
    def total_ns(self) -> float:
        """Total simulated nanoseconds in the project."""
        return self.n_commands * self.n_generations * self.ns_per_command

    @property
    def effective_rate(self) -> float:
        """Per-simulation rate (ns/hour) including the batch term.

        The coalesced batch cannot be larger than the work actually
        available per worker, so the speedup is evaluated at
        ``min(batch_size, ceil(n_commands / n_workers))``.
        """
        concurrent = max(
            1, -(-self.n_commands // max(1, self.n_workers))
        )
        effective_batch = min(self.batch_size, concurrent)
        return self.md_model.rate(self.cores_per_sim) * batch_speedup(
            effective_batch, self.batch_dispatch_overhead
        )


@dataclass
class SchedulerResult:
    """Outcome of one scheduler run."""

    spec: ProjectSpec
    hours: float
    efficiency: float
    core_hours: float
    avg_bandwidth_mbps: float
    generation_hours: List[float]
    worker_utilization: float


def reference_time_single_core(spec: ProjectSpec) -> float:
    """t_res(1): hours for one core to run the whole command set."""
    return spec.total_ns / spec.md_model.rate(1) + (
        spec.n_generations * spec.cluster_overhead_hours
    )


def analytic_project_time(spec: ProjectSpec) -> float:
    """Closed-form makespan in hours.

    Per generation the makespan is bounded below by both the work
    bound (total ns over aggregate rate) and the chain bound (one
    trajectory's ns at the per-simulation rate); greedy scheduling of
    quantum chunks achieves the maximum of the two up to one quantum
    of tail.
    """
    rate = spec.effective_rate  # ns/hour per simulation (incl. batching)
    active = min(spec.n_workers, spec.n_commands)
    work_bound = spec.n_commands * spec.ns_per_command / (active * rate)
    chain_bound = spec.ns_per_command / rate
    per_generation = max(work_bound, chain_bound)
    return spec.n_generations * (per_generation + spec.cluster_overhead_hours)


def simulate_project(spec: ProjectSpec) -> SchedulerResult:
    """Run the DES of the controller and return timing/efficiency.

    Workers greedily pull ``ns_per_quantum`` trajectory extensions from
    the current generation's queue; a generation barrier models the
    clustering step.
    """
    env = Environment()
    rate = spec.effective_rate
    quantum_hours = spec.ns_per_quantum / rate
    n_workers = min(spec.n_workers, spec.n_commands)
    generation_hours: List[float] = []
    busy_hours = [0.0]

    def generation(env: Environment, gen_index: int):
        start = env.now
        # each trajectory is a chain of quanta; chains[i] = quanta left
        chains = Store(env)
        remaining: Dict[int, int] = {}
        quanta_per_traj = int(np.ceil(spec.ns_per_command / spec.ns_per_quantum))
        last_quantum_hours = (
            spec.ns_per_command - (quanta_per_traj - 1) * spec.ns_per_quantum
        ) / rate
        for t in range(spec.n_commands):
            remaining[t] = quanta_per_traj
            chains.put(t)
        done = env.event()
        finished = [0]

        def worker(env: Environment):
            from repro.des import Interrupt

            try:
                while True:
                    traj = yield chains.get()
                    is_last = remaining[traj] == 1
                    duration = last_quantum_hours if is_last else quantum_hours
                    yield env.timeout(duration)
                    busy_hours[0] += duration
                    remaining[traj] -= 1
                    if remaining[traj] == 0:
                        finished[0] += 1
                        if finished[0] == spec.n_commands:
                            done.succeed()
                    else:
                        chains.put(traj)
            except Interrupt:
                return  # generation barrier: stand down

        procs = [env.process(worker(env)) for _ in range(n_workers)]
        yield done
        for proc in procs:
            if proc.is_alive:
                proc.interrupt("generation complete")
        yield env.timeout(spec.cluster_overhead_hours)
        generation_hours.append(env.now - start)

    def project(env: Environment):
        for g in range(spec.n_generations):
            yield env.process(generation(env, g))

    main = env.process(project(env))
    env.run(until=main)

    hours = env.now
    t1 = reference_time_single_core(spec)
    efficiency = t1 / (spec.total_cores * hours)
    total_mb = spec.n_commands * spec.n_generations * spec.data_per_command_mb
    avg_bandwidth = total_mb / (hours * 3600.0)
    utilization = busy_hours[0] / (n_workers * hours)
    return SchedulerResult(
        spec=spec,
        hours=hours,
        efficiency=efficiency,
        core_hours=spec.total_cores * hours,
        avg_bandwidth_mbps=avg_bandwidth,
        generation_hours=generation_hours,
        worker_utilization=utilization,
    )


def analytic_result(spec: ProjectSpec) -> SchedulerResult:
    """SchedulerResult from the closed form (no DES) — fast for sweeps."""
    hours = analytic_project_time(spec)
    t1 = reference_time_single_core(spec)
    total_mb = spec.n_commands * spec.n_generations * spec.data_per_command_mb
    rate = spec.effective_rate
    active = min(spec.n_workers, spec.n_commands)
    per_gen = hours / spec.n_generations
    return SchedulerResult(
        spec=spec,
        hours=hours,
        efficiency=t1 / (spec.total_cores * hours),
        core_hours=spec.total_cores * hours,
        avg_bandwidth_mbps=total_mb / (hours * 3600.0),
        generation_hours=[per_gen] * spec.n_generations,
        worker_utilization=min(
            1.0,
            spec.n_commands
            * spec.ns_per_command
            / (active * rate * per_gen),
        ),
    )


@dataclass
class ResourcePool:
    """One contributed resource (a cluster) in a multi-site project.

    The paper's villin run used two simultaneously: "64-80 nodes on the
    Infiniband system and 96-144 nodes on the Cray".
    """

    name: str
    total_cores: int
    cores_per_sim: int
    rate_multiplier: float = 1.0  # relative per-core speed of this site

    def __post_init__(self) -> None:
        if self.total_cores < 1 or self.cores_per_sim < 1:
            raise ConfigurationError("pool core counts must be >= 1")
        if self.cores_per_sim > self.total_cores:
            raise ConfigurationError("cores_per_sim exceeds the pool")
        if self.rate_multiplier <= 0:
            raise ConfigurationError("rate_multiplier must be positive")

    @property
    def n_workers(self) -> int:
        """Concurrent simulations this pool can host."""
        return self.total_cores // self.cores_per_sim


def analytic_heterogeneous_time(
    pools: List[ResourcePool],
    n_commands: int = 225,
    n_generations: int = 3,
    ns_per_command: float = 50.0,
    cluster_overhead_hours: float = 0.05,
    md_model: Optional[MDPerformanceModel] = None,
) -> float:
    """Makespan (hours) of a project spread over several resource pools.

    Trajectories are pinned to a pool (a simulation cannot span sites);
    allocating commands proportionally to pool throughput makes all
    pools finish together, so the per-generation time is the larger of
    the aggregate work bound and the slowest-used-pool chain bound.
    Pools are engaged fastest-first when there are more workers than
    commands.
    """
    if not pools:
        raise ConfigurationError("need at least one pool")
    if n_commands < 1 or n_generations < 1 or ns_per_command <= 0:
        raise ConfigurationError("invalid project parameters")
    model = md_model or VILLIN_MODEL
    rated = sorted(
        (
            (p, model.rate(p.cores_per_sim) * p.rate_multiplier)
            for p in pools
        ),
        key=lambda item: -item[1],
    )
    throughput = 0.0
    slots_left = n_commands
    slowest_used_rate = None
    for pool, rate in rated:
        if slots_left <= 0:
            break
        used_workers = min(pool.n_workers, slots_left)
        throughput += used_workers * rate
        slots_left -= used_workers
        slowest_used_rate = rate
    work_bound = n_commands * ns_per_command / throughput
    chain_bound = ns_per_command / slowest_used_rate
    per_generation = max(work_bound, chain_bound)
    return n_generations * (per_generation + cluster_overhead_hours)


def sweep_total_cores(
    core_counts: List[int],
    cores_per_sim: int,
    use_des: bool = False,
    **spec_kwargs,
) -> List[SchedulerResult]:
    """Evaluate the project across total core counts (one Fig. 7/8 line)."""
    results = []
    for n in core_counts:
        if n < cores_per_sim:
            continue
        spec = ProjectSpec(
            total_cores=n, cores_per_sim=cores_per_sim, **spec_kwargs
        )
        results.append(simulate_project(spec) if use_des else analytic_result(spec))
    return results
