"""Bandwidth analyses: Fig. 9 ensemble traffic and the Fig. 6 hierarchy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.perfmodel.scheduler_sim import ProjectSpec, analytic_result
from repro.util.errors import ConfigurationError


def ensemble_bandwidth(spec: ProjectSpec) -> float:
    """Average ensemble-level bandwidth (MB/s) for a project.

    Trajectory output flows from workers to the project server over the
    project's makespan; the average is total data over total time —
    the quantity plotted in Fig. 9.
    """
    return analytic_result(spec).avg_bandwidth_mbps


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the Copernicus parallelism hierarchy (Fig. 6)."""

    level: str
    mechanism: str
    average_bandwidth: str
    peak_bandwidth: str
    latency: str


def parallelism_hierarchy() -> List[HierarchyLevel]:
    """The multi-level parallelism table of Fig. 6 (paper's numbers)."""
    return [
        HierarchyLevel(
            level="SIMD kernels",
            mechanism="hand-tuned vector instructions within a core",
            average_bandwidth="register-file",
            peak_bandwidth="register-file",
            latency="~ns",
        ),
        HierarchyLevel(
            level="threads",
            mechanism="shared memory within a node",
            average_bandwidth="0.5 GB/s",
            peak_bandwidth="25 GB/s",
            latency="<100 ns",
        ),
        HierarchyLevel(
            level="MPI",
            mechanism="message passing over Infiniband between nodes",
            average_bandwidth="0.5 GB/s",
            peak_bandwidth=">2.7 GB/s",
            latency="1-10 us",
        ),
        HierarchyLevel(
            level="ensemble (SSL)",
            mechanism="worker <-> server trajectory/result traffic",
            average_bandwidth="0.04 MB/s",
            peak_bandwidth="100 MB/s",
            latency="10 ms",
        ),
        HierarchyLevel(
            level="server overlay",
            mechanism="server <-> server across sites",
            average_bandwidth="<0.04 MB/s",
            peak_bandwidth="100 MB/s",
            latency=">100 ms",
        ),
    ]


def single_simulation_mpi_bandwidth(cores: int) -> float:
    """MPI traffic of one villin simulation, MB/s (paper: 500-2900 MB/s
    for 24-96 cores).

    Communication volume grows with core count (halo exchange plus
    global reductions); a linear interpolation through the paper's two
    quoted points is all downstream analyses need.
    """
    if cores < 1:
        raise ConfigurationError("cores must be >= 1")
    if cores <= 1:
        return 0.0
    # 24 cores -> 500 MB/s, 96 cores -> 2900 MB/s (paper section 4)
    slope = (2900.0 - 500.0) / (96.0 - 24.0)
    return max(0.0, 500.0 + slope * (cores - 24.0))
