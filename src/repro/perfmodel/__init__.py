"""Performance model and scheduler simulation (paper Figs. 6-9).

The paper's scaling figures were produced by benchmarking simulations
at a few core counts and then *simulating the controller's activity*
for other configurations ("we additionally benchmarked simulations
with different numbers of cores and then simulated the controller's
activity given different numbers of cores per task and total resources
allocated").  This subpackage implements that methodology:

* :mod:`repro.perfmodel.mdperf` — a Gromacs-like strong-scaling model
  for a single simulation, calibrated against the paper's anchors
  (t_res(1) = 1.1e5 hours, ~30 h at 5,000 cores, ~10 h and 53 %
  efficiency at 20,000 cores);
* :mod:`repro.perfmodel.scheduler_sim` — a discrete-event simulation
  of the Copernicus controller scheduling generations of commands over
  a core pool, plus the analytic closed form it converges to;
* :mod:`repro.perfmodel.bandwidth` — ensemble-level bandwidth use and
  the multi-level parallelism hierarchy of Fig. 6.
"""

from repro.perfmodel.mdperf import (
    MDPerformanceModel,
    VILLIN_MODEL,
    batch_speedup,
)
from repro.perfmodel.scheduler_sim import (
    ProjectSpec,
    ResourcePool,
    SchedulerResult,
    simulate_project,
    analytic_project_time,
    analytic_heterogeneous_time,
    sweep_total_cores,
)
from repro.perfmodel.bandwidth import (
    ensemble_bandwidth,
    parallelism_hierarchy,
)

__all__ = [
    "MDPerformanceModel",
    "VILLIN_MODEL",
    "batch_speedup",
    "ProjectSpec",
    "ResourcePool",
    "SchedulerResult",
    "simulate_project",
    "analytic_project_time",
    "analytic_heterogeneous_time",
    "sweep_total_cores",
    "ensemble_bandwidth",
    "parallelism_hierarchy",
]
