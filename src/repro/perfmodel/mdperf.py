"""Strong-scaling model of a single MD simulation.

A parallel MD step costs compute (perfect 1/k) plus communication
overhead growing with the core count, so the simulation rate is

``rate(k) = rate_1core * k / (1 + ((k - 1) / a)^b)``

with per-simulation parallel efficiency ``e(k) = 1 / (1 + ((k-1)/a)^b)``.
The villin calibration pins ``rate_1core`` to the paper's
``t_res(1) = 1.1e5`` hours for the 3-generation first-folded command
set, and ``(a, b)`` to the efficiencies implied by the paper's
time-to-solution anchors (~30 h at 5,000 cores with 24-core tasks;
~10 h / 53 % overall efficiency at 20,000 cores with 96-core tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MDPerformanceModel:
    """Strong-scaling performance of one simulation.

    Attributes
    ----------
    rate_1core:
        Simulation rate on a single core, ns/hour.
    overhead_scale / overhead_exponent:
        The ``(a, b)`` of the communication-overhead term.
    n_atoms:
        System size (used by size-rescaling helpers).
    max_cores:
        Hard strong-scaling wall: beyond this many cores a single
        simulation gains nothing (domain decomposition runs out of
        atoms to distribute).
    """

    rate_1core: float
    overhead_scale: float = 124.0
    overhead_exponent: float = 0.447
    n_atoms: int = 9864
    max_cores: int = 512

    def __post_init__(self) -> None:
        if self.rate_1core <= 0:
            raise ConfigurationError("rate_1core must be positive")
        if self.overhead_scale <= 0 or self.overhead_exponent <= 0:
            raise ConfigurationError("overhead parameters must be positive")
        if self.max_cores < 1:
            raise ConfigurationError("max_cores must be >= 1")

    def efficiency(self, cores: int) -> float:
        """Per-simulation parallel efficiency e(k), e(1) = 1."""
        cores = self._clip(cores)
        overhead = ((cores - 1) / self.overhead_scale) ** self.overhead_exponent
        return 1.0 / (1.0 + overhead)

    def rate(self, cores: int) -> float:
        """Simulation rate in ns/hour at *cores* cores."""
        cores = self._clip(cores)
        return self.rate_1core * cores * self.efficiency(cores)

    def rate_ns_per_day(self, cores: int) -> float:
        """Simulation rate in ns/day."""
        return 24.0 * self.rate(cores)

    def hours_for(self, ns: float, cores: int) -> float:
        """Wallclock hours to simulate *ns* nanoseconds."""
        if ns < 0:
            raise ConfigurationError("ns must be >= 0")
        return ns / self.rate(cores)

    def _clip(self, cores: int) -> int:
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        return min(int(cores), self.max_cores)

    def rescaled(self, n_atoms: int) -> "MDPerformanceModel":
        """Model for a different system size.

        MD cost is ~linear in atom count (cutoff interactions), while
        the strong-scaling wall moves proportionally with the atoms
        available to distribute — the paper's argument that larger
        systems scale further ("the number of cores in each simulation
        can thus increase in proportion to the system size").
        """
        if n_atoms < 1:
            raise ConfigurationError("n_atoms must be >= 1")
        factor = n_atoms / self.n_atoms
        return MDPerformanceModel(
            rate_1core=self.rate_1core / factor,
            overhead_scale=self.overhead_scale * factor,
            overhead_exponent=self.overhead_exponent,
            n_atoms=n_atoms,
            max_cores=max(1, int(self.max_cores * factor)),
        )


def batch_speedup(batch_size: int, dispatch_overhead: float) -> float:
    """Per-command throughput gain from batching R replicas.

    Each command's cost splits into propagation work (irreducible) and
    dispatch overhead (force-loop setup, integrator bookkeeping, the
    per-command fixed costs the batched kernel amortises), with
    ``dispatch_overhead`` the overhead-to-work ratio *d*.  Serial cost
    per command is ``(1 + d)``; a batch of R pays the overhead once,
    ``(R + d) / R`` per command, giving

    ``S(R) = R (1 + d) / (R + d)``

    — 1 at R=1, monotone, saturating at ``1 + d``.  ``d = 0`` (the
    default everywhere) reproduces the unbatched model exactly.
    """
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    if dispatch_overhead < 0:
        raise ConfigurationError("dispatch_overhead must be >= 0")
    return (
        batch_size * (1.0 + dispatch_overhead)
        / (batch_size + dispatch_overhead)
    )


def _calibrated_villin() -> MDPerformanceModel:
    """Villin model hitting the paper's t_res(1) anchor.

    The Fig. 7 caption gives t_res(1) = 1.1e5 hours for the full
    first-folded MSM command set (3 generations x 225 commands x 50 ns
    = 33,750 ns), fixing the single-core rate at ~0.307 ns/hour
    (~7.4 ns/day, a plausible 2011-era single-core rate for a 9,864-atom
    system with reaction-field electrostatics).
    """
    total_ns = 3 * 225 * 50.0
    t_res_1 = 1.1e5
    return MDPerformanceModel(rate_1core=total_ns / t_res_1)


#: The calibrated villin performance model used by the benchmarks.
VILLIN_MODEL = _calibrated_villin()
