"""Fig. 8 — total time-to-solution vs total cores.

Stop criterion: the first folded conformation (3 generations of 225 x
50-ns commands).  Paper anchors: ~30 h at ~5,000 cores (the real run),
"just over 10 h" at 20,000 cores, and a plateau once the number of
simultaneous simulations hits the command count.
"""

import numpy as np
import pytest

from repro.perfmodel import ProjectSpec, analytic_project_time, simulate_project

from conftest import report

CORE_COUNTS = [24, 96, 384, 1536, 5000, 5376, 20000, 50000, 100000]
CORES_PER_SIM = [1, 12, 24, 48, 96]


def compute_table():
    table = {}
    for k in CORES_PER_SIM:
        for n in CORE_COUNTS:
            if n < k:
                continue
            table[(n, k)] = analytic_project_time(
                ProjectSpec(total_cores=n, cores_per_sim=k)
            )
    return table


def test_fig8_time_to_solution(benchmark):
    table = benchmark.pedantic(compute_table, rounds=1, iterations=1)

    lines = [
        "time to first folded conformation (hours), 3 generations x 225",
        "commands x 50 ns each",
        "",
        f"{'N cores':>9s} " + " ".join(f"k={k:>6d}" for k in CORES_PER_SIM),
    ]
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            t = table.get((n, k))
            cells.append(f"{t:8.1f}" if t is not None else "       -")
        lines.append(f"{n:>9d} " + " ".join(cells))

    t_5000 = table[(5000, 24)]
    t_20000 = table[(20000, 96)]
    lines += [
        "",
        f"paper: project ran with ~5,000 cores in ~30 h wallclock; "
        f"measured (k=24): {t_5000:.1f} h",
        f"paper: 'using 20,000 cores the time to solution would have been "
        f"just over 10 h'; measured (k=96): {t_20000:.1f} h",
    ]
    assert t_5000 == pytest.approx(30.0, rel=0.15)
    assert t_20000 == pytest.approx(10.5, rel=0.15)

    # plateau: beyond 225 simultaneous commands extra cores don't help
    for k in (12, 24):
        assert table[(100000, k)] == pytest.approx(table[(50000, k)], rel=0.01)
    # crossover: at large N, decomposing individual simulations further
    # (larger k) wins despite lower per-simulation efficiency
    assert table[(100000, 96)] < table[(100000, 12)]

    # DES cross-check at the paper's own operating point
    des = simulate_project(ProjectSpec(total_cores=5000, cores_per_sim=24))
    lines.append(
        f"DES cross-check at (5,000 cores, k=24): {des.hours:.1f} h "
        f"(analytic {t_5000:.1f} h, worker utilisation {des.worker_utilization:.2f})"
    )
    assert des.hours == pytest.approx(t_5000, rel=0.25)
    report("fig8_time_to_solution", lines)
