"""Fig. 5 — ensemble-average RMSD vs time with standard-deviation bars.

The paper's point: adaptive ensemble simulation measures *ensemble
properties* — the average C-alpha RMSD of the whole villin ensemble
decays toward the native value with quantified statistical error.
Here: the same curve for the CG ensemble, mean +/- one standard
deviation (the paper's error bars).
"""

import numpy as np
import pytest

from repro.analysis.stats import ensemble_mean_sd

from conftest import PS_TO_PAPER_NS, report


def test_fig5_ensemble_average_rmsd(benchmark, brute_force_ensemble):
    curves = brute_force_ensemble["rmsd_curves"]
    times = brute_force_ensemble["times_ps"]
    mean, sd = benchmark(lambda: ensemble_mean_sd(curves))

    lines = [
        f"ensemble of {len(curves)} independent folding trajectories "
        "from extended starts (paper Fig. 5: villin ensemble average)",
        "",
        f"{'t (ps)':>8s} {'t (paper-ns eq.)':>16s} {'<RMSD> (nm)':>12s} {'sd':>8s}",
    ]
    stride = max(1, len(times) // 12)
    for k in range(0, len(times), stride):
        lines.append(
            f"{times[k]:8.0f} {times[k] * PS_TO_PAPER_NS:16.0f} "
            f"{mean[k]:12.3f} {sd[k]:8.3f}"
        )

    # shape: the ensemble mean decays substantially from the unfolded
    # plateau toward the native value, as in the paper
    assert mean[0] > 2.0 * mean[-1]
    # error bars stay finite and meaningful
    assert np.all(sd[1:] > 0)
    report("fig5_ensemble_rmsd", lines)
