"""Batched ensemble kernel vs the serial engine (BENCH_batched.json,
BENCH_kernel.json).

Measures steps/second propagating R villin-fast replicas at
R ∈ {1, 8, 64} two ways — R serial :meth:`MDEngine.run` calls, and one
:meth:`MDEngine.run_batched` call under the default ``dispatch="auto"``
policy — verifying per-replica bit-identity along the way.  A second
sweep forces ``dispatch="batched"`` at R ∈ {1, 2, 3, 4} to measure the
raw kernel crossover that calibrates
:data:`repro.md.dispatch.BATCH_DISPATCH_MIN_REPLICAS`.

Timing hygiene: thread counts are pinned to 1 (before numpy loads),
one warm-up run precedes measurement, and each cell takes the best of
k repeats (5 at R=1, 3 at R=8, 1 at R=64 — repeat count scales down as
the cell itself gets longer and less noisy).

Run as a script (CI's ``bench`` job)::

    PYTHONPATH=src python benchmarks/bench_batched_engine.py

Writes ``BENCH_batched.json`` (the historical speedup document, now
with per-R steps/s deltas against the committed baseline) and
``BENCH_kernel.json`` (the kernel-pass floors).  Exits nonzero when a
floor is breached:

- R=1 auto-dispatch speedup >= 1.0 (the batched entry point must never
  lose to serial — "auto" falls back to the serial path below the
  measured crossover),
- R=64 speedup >= 5.0,
- serial throughput >= 3,500 steps/s.

Floor checks allow ``NOISE_TOLERANCE`` (relative) slack: back-to-back
runs of the identical binary jitter by a few percent on shared
hardware, and the floors are regression tripwires, not records.
"""

from __future__ import annotations

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.md.dispatch import BATCH_DISPATCH_MIN_REPLICAS
from repro.md.engine import BatchedMDTask, MDEngine, MDTask

MODEL = "villin-fast"
REPLICA_COUNTS = (1, 8, 64)
CROSSOVER_COUNTS = (1, 2, 3, 4)
N_STEPS = 300
REPORT_INTERVAL = 100
DEFAULT_MIN_SPEEDUP = 3.0
#: Relative slack applied to every floor check (run-to-run jitter).
NOISE_TOLERANCE = 0.08
#: BENCH_kernel.json floors (see module docstring).
FLOORS = {
    "r1_speedup": 1.0,
    "r64_speedup": 5.0,
    "serial_steps_per_sec": 3500.0,
}
_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = _ROOT / "BENCH_batched.json"
KERNEL_RESULT_PATH = _ROOT / "BENCH_kernel.json"

#: Best-of-k repeat count per replica count (larger cells are longer
#: and proportionally less noisy, so they get fewer repeats).
_REPEATS = {1: 5, 2: 4, 3: 4, 4: 3, 8: 3}
_cached_document = None


def _tasks(n_replicas: int, dispatch: str = "auto") -> list:
    return [
        MDTask(
            model=MODEL,
            n_steps=N_STEPS,
            report_interval=REPORT_INTERVAL,
            seed=100 + r,
            task_id=f"bench/r{r}",
            dispatch=dispatch,
        )
        for r in range(n_replicas)
    ]


def _best_of(fn, repeats: int):
    """Minimum wall time over *repeats* calls; returns (seconds, result)."""
    best_seconds, best_result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        if best_seconds is None or seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def measure(n_replicas: int, dispatch: str = "auto") -> dict:
    """Serial vs batched steps/sec for one replica count."""
    engine = MDEngine()
    total_steps = n_replicas * N_STEPS
    repeats = _REPEATS.get(n_replicas, 1)

    serial_seconds, serial = _best_of(
        lambda: [engine.run(task) for task in _tasks(n_replicas)], repeats
    )

    btask = BatchedMDTask.from_tasks(
        _tasks(n_replicas, dispatch=dispatch), batch_id="bench"
    )
    batched_seconds, batched = _best_of(
        lambda: engine.run_batched(btask), repeats
    )

    for serial_result, batched_result in zip(serial, batched.results):
        if not np.array_equal(serial_result.frames, batched_result.frames):
            raise AssertionError(
                f"batched frames diverge from serial for "
                f"{serial_result.task_id} at R={n_replicas}"
            )

    serial_rate = total_steps / serial_seconds
    batched_rate = total_steps / batched_seconds
    return {
        "n_replicas": n_replicas,
        "n_steps": N_STEPS,
        "dispatch_requested": dispatch,
        "dispatch_used": batched.dispatch,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "serial_steps_per_sec": serial_rate,
        "batched_steps_per_sec": batched_rate,
        "speedup": batched_rate / serial_rate,
    }


def _baseline_deltas(rows: list) -> list:
    """Per-R steps/s deltas vs the committed BENCH_batched.json."""
    try:
        baseline = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        return []
    by_r = {row["n_replicas"]: row for row in baseline.get("results", [])}
    deltas = []
    for row in rows:
        base = by_r.get(row["n_replicas"])
        if base is None:
            continue
        deltas.append(
            {
                "n_replicas": row["n_replicas"],
                "serial_steps_per_sec_delta": row["serial_steps_per_sec"]
                / base["serial_steps_per_sec"]
                - 1.0,
                "batched_steps_per_sec_delta": row["batched_steps_per_sec"]
                / base["batched_steps_per_sec"]
                - 1.0,
                "speedup_delta": row["speedup"] - base["speedup"],
            }
        )
    return deltas


def run_benchmark() -> dict:
    """Full sweep; returns the combined benchmark document (cached)."""
    global _cached_document
    if _cached_document is not None:
        return _cached_document

    # Warm-up: first touch pays numpy/model-registry setup costs.
    MDEngine().run(_tasks(1)[0])

    rows = [measure(n) for n in REPLICA_COUNTS]
    crossover = [measure(n, dispatch="batched") for n in CROSSOVER_COUNTS]
    _cached_document = {
        "benchmark": "batched_engine",
        "model": MODEL,
        "n_steps": N_STEPS,
        "report_interval": REPORT_INTERVAL,
        "baseline_deltas": _baseline_deltas(rows),
        "results": rows,
        "crossover": {
            "dispatch_min_replicas": BATCH_DISPATCH_MIN_REPLICAS,
            "rows": crossover,
        },
    }
    return _cached_document


def kernel_document(document: dict) -> dict:
    """The BENCH_kernel.json view: floors plus the rows they gate."""
    by_r = {row["n_replicas"]: row for row in document["results"]}
    best_serial = max(
        row["serial_steps_per_sec"] for row in document["results"]
    )
    return {
        "benchmark": "kernel_pass",
        "model": MODEL,
        "n_steps": N_STEPS,
        "floors": dict(FLOORS),
        "noise_tolerance": NOISE_TOLERANCE,
        "r1_speedup": by_r[1]["speedup"],
        "r64_speedup": by_r[64]["speedup"],
        "serial_steps_per_sec": best_serial,
        "crossover": document["crossover"],
        "results": document["results"],
    }


def check_floors(kernel: dict) -> list:
    """Floor breaches (empty = pass), each a printable message."""
    slack = 1.0 - NOISE_TOLERANCE
    breaches = []
    for key in ("r1_speedup", "r64_speedup", "serial_steps_per_sec"):
        if kernel[key] < kernel["floors"][key] * slack:
            breaches.append(
                f"{key} {kernel[key]:.3f} < floor "
                f"{kernel['floors'][key]:.3f} (noise tolerance "
                f"{NOISE_TOLERANCE:.0%})"
            )
    return breaches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="fail if the largest-R batched speedup is below this",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="output JSON path"
    )
    parser.add_argument(
        "--kernel-out",
        type=Path,
        default=KERNEL_RESULT_PATH,
        help="BENCH_kernel.json output path",
    )
    args = parser.parse_args(argv)

    document = run_benchmark()
    kernel = kernel_document(document)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    args.kernel_out.write_text(json.dumps(kernel, indent=2) + "\n")
    for row in document["results"]:
        print(
            f"R={row['n_replicas']:>3}  "
            f"serial {row['serial_steps_per_sec']:>9.0f} steps/s  "
            f"batched {row['batched_steps_per_sec']:>9.0f} steps/s  "
            f"speedup {row['speedup']:.2f}x  "
            f"(dispatch={row['dispatch_used']})"
        )
    for row in document["crossover"]["rows"]:
        print(
            f"forced-batched R={row['n_replicas']}: "
            f"{row['speedup']:.2f}x vs serial"
        )
    for delta in document["baseline_deltas"]:
        print(
            f"vs baseline R={delta['n_replicas']:>3}: "
            f"serial {delta['serial_steps_per_sec_delta']:+.1%}, "
            f"batched {delta['batched_steps_per_sec_delta']:+.1%}, "
            f"speedup {delta['speedup_delta']:+.2f}"
        )
    print(f"wrote {args.out} and {args.kernel_out}")

    failed = False
    top = document["results"][-1]
    if top["speedup"] < args.min_speedup:
        print(
            f"FAIL: R={top['n_replicas']} speedup {top['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    for breach in check_floors(kernel):
        print(f"FAIL: {breach}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def test_batched_speedup_r64(tmp_path):
    """Benchmark entry for the pytest-driven bench suite."""
    document = run_benchmark()
    (tmp_path / "BENCH_batched.json").write_text(json.dumps(document))
    top = document["results"][-1]
    assert top["n_replicas"] == max(REPLICA_COUNTS)
    assert top["speedup"] >= DEFAULT_MIN_SPEEDUP


def test_kernel_floors(tmp_path):
    """The kernel-pass floors (R=1 regression killed, R=64 >= 5x)."""
    kernel = kernel_document(run_benchmark())
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps(kernel))
    assert kernel["results"][0]["dispatch_used"] == "serial"
    assert kernel["results"][-1]["dispatch_used"] == "batched"
    assert check_floors(kernel) == []


if __name__ == "__main__":
    sys.exit(main())
