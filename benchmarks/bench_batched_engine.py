"""Batched ensemble kernel vs the serial engine (BENCH_batched.json).

Measures steps/second propagating R villin-fast replicas at
R ∈ {1, 8, 64} two ways — R serial :meth:`MDEngine.run` calls, and one
:meth:`MDEngine.run_batched` call — verifying per-replica bit-identity
along the way, and writes the results to ``BENCH_batched.json``.

Run as a script (CI's ``bench`` job)::

    PYTHONPATH=src python benchmarks/bench_batched_engine.py

Exits nonzero if the R=64 batched speedup falls below the regression
threshold (default 3.0; override with ``--min-speedup``).  The paper's
economics live in exactly this regime: thousands of short ensemble
members in flight, where per-command dispatch overhead — not
arithmetic — dominates the serial engine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.md.engine import BatchedMDTask, MDEngine, MDTask

MODEL = "villin-fast"
REPLICA_COUNTS = (1, 8, 64)
N_STEPS = 300
REPORT_INTERVAL = 100
DEFAULT_MIN_SPEEDUP = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched.json"


def _tasks(n_replicas: int) -> list:
    return [
        MDTask(
            model=MODEL,
            n_steps=N_STEPS,
            report_interval=REPORT_INTERVAL,
            seed=100 + r,
            task_id=f"bench/r{r}",
        )
        for r in range(n_replicas)
    ]


def measure(n_replicas: int) -> dict:
    """Serial vs batched steps/sec for one replica count."""
    engine = MDEngine()
    total_steps = n_replicas * N_STEPS

    start = time.perf_counter()
    serial = [engine.run(task) for task in _tasks(n_replicas)]
    serial_seconds = time.perf_counter() - start

    btask = BatchedMDTask.from_tasks(_tasks(n_replicas), batch_id="bench")
    start = time.perf_counter()
    batched = engine.run_batched(btask)
    batched_seconds = time.perf_counter() - start

    for serial_result, batched_result in zip(serial, batched.results):
        if not np.array_equal(serial_result.frames, batched_result.frames):
            raise AssertionError(
                f"batched frames diverge from serial for "
                f"{serial_result.task_id} at R={n_replicas}"
            )

    serial_rate = total_steps / serial_seconds
    batched_rate = total_steps / batched_seconds
    return {
        "n_replicas": n_replicas,
        "n_steps": N_STEPS,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "serial_steps_per_sec": serial_rate,
        "batched_steps_per_sec": batched_rate,
        "speedup": batched_rate / serial_rate,
    }


def run_benchmark() -> dict:
    """All replica counts; returns the BENCH_batched.json document."""
    rows = [measure(n) for n in REPLICA_COUNTS]
    return {
        "benchmark": "batched_engine",
        "model": MODEL,
        "n_steps": N_STEPS,
        "report_interval": REPORT_INTERVAL,
        "results": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="fail if the largest-R batched speedup is below this",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)

    document = run_benchmark()
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    for row in document["results"]:
        print(
            f"R={row['n_replicas']:>3}  "
            f"serial {row['serial_steps_per_sec']:>9.0f} steps/s  "
            f"batched {row['batched_steps_per_sec']:>9.0f} steps/s  "
            f"speedup {row['speedup']:.2f}x"
        )
    print(f"wrote {args.out}")

    top = document["results"][-1]
    if top["speedup"] < args.min_speedup:
        print(
            f"FAIL: R={top['n_replicas']} speedup {top['speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_batched_speedup_r64(tmp_path):
    """Benchmark entry for the pytest-driven bench suite."""
    document = run_benchmark()
    (tmp_path / "BENCH_batched.json").write_text(json.dumps(document))
    top = document["results"][-1]
    assert top["n_replicas"] == max(REPLICA_COUNTS)
    assert top["speedup"] >= DEFAULT_MIN_SPEEDUP


if __name__ == "__main__":
    sys.exit(main())
