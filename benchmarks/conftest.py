"""Shared fixtures for the figure-regeneration benchmarks.

The adaptive villin campaign and the brute-force reference ensemble are
expensive (minutes), so they are session-scoped and shared by the
Fig. 2/3/4/5 benchmarks.  Scale note: the paper's 50-ns commands are
~1/14 of villin's 700-ns folding time; the CG campaign keeps that ratio
with 3,000-step (60 ps) commands against a folding time of hundreds of
picoseconds.
"""

import os

# Pin BLAS/OpenMP thread pools to one thread *before* numpy loads:
# benchmark numbers (and their committed baselines) are single-thread
# measurements, and an unpinned pool adds multi-percent jitter.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.rmsd import rmsd_to_reference
from repro.core import (
    AdaptiveMSMController,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.md import LangevinIntegrator, Simulation
from repro.md.models.villin import build_villin
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

RESULTS_DIR = Path(__file__).parent / "results"

#: Campaign scale (paper values in brackets).  Contact strength and
#: friction are calibrated so the model is two-state at 300 K with a
#: folding time of ~6,000-19,000 steps — commands of 3,000 steps are
#: then ~1/2 to ~1/6 of a folding time, preserving the paper's regime
#: (50-ns commands against villin's ~700-ns folding time).
CAMPAIGN = dict(
    model="villin-fast",            # [9,864-atom all-atom villin]
    model_params=dict(contact_epsilon=2.0),
    n_starting_conformations=3,     # [9]
    trajectories_per_start=4,       # [25]
    steps_per_command=2000,         # [50 ns]
    report_interval=50,
    temperature=300.0,              # [300 K]
    friction=2.0,
    n_clusters=40,                  # [10,000]
    lag_frames=5,                   # [25 ns]
    n_generations=6,                # [8-10]
    weighting="uncertainty",
    seed=7,
)

#: Mapping declared in EXPERIMENTS.md: one command's simulated time
#: corresponds to the paper's 50 ns command.
COMMAND_PS = CAMPAIGN["steps_per_command"] * 0.02   # 60 ps
PAPER_COMMAND_NS = 50.0
PS_TO_PAPER_NS = PAPER_COMMAND_NS / COMMAND_PS


def report(name: str, lines) -> None:
    """Print a figure report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def _build_deployment(seed=0, cores=2, segment_steps=3000):
    net = Network(seed=seed)
    server = CopernicusServer("project-server", net, heartbeat_interval=120.0)
    worker = Worker(
        "w0",
        net,
        server="project-server",
        platform=SMPPlatform(cores=cores),
        segment_steps=segment_steps,
    )
    net.connect("project-server", "w0")
    worker.announce(0.0)
    return net, server, worker


def run_campaign(weighting: str, seed: int, n_generations: int = None):
    """Run one adaptive villin campaign; returns (project, controller, net)."""
    params = dict(CAMPAIGN)
    params["weighting"] = weighting
    params["seed"] = seed
    if n_generations is not None:
        params["n_generations"] = n_generations
    config = MSMProjectConfig(**params)
    controller = AdaptiveMSMController(config)
    net, server, worker = _build_deployment(seed=seed)
    runner = ProjectRunner(net, server, [worker], tick=60.0)
    project = Project(f"msm_villin_{weighting}_{seed}")
    runner.submit(project, controller)
    runner.run()
    return project, controller, net


@pytest.fixture(scope="session")
def villin_campaign():
    """The flagship adaptive campaign shared by Figs. 2, 3 and 4."""
    return run_campaign(CAMPAIGN["weighting"], CAMPAIGN["seed"])


@pytest.fixture(scope="session")
def brute_force_ensemble():
    """Long unbiased trajectories from extended starts.

    This is the reproduction's stand-in for the experimental reference:
    direct (non-adaptive) folding kinetics of the same model, against
    which the MSM's propagated kinetics are judged (paper Fig. 4 /
    experimental folding time).
    """
    model = build_villin("fast", **CAMPAIGN["model_params"])
    n_members, n_steps, stride = 16, 24000, 50
    curves, times = [], None
    for seed in range(n_members):
        state = model.extended_state(rng=1000 + seed, temperature=300.0)
        sim = Simulation(
            model.system,
            LangevinIntegrator(
                0.02, 300.0, friction=CAMPAIGN["friction"], rng=2000 + seed
            ),
            state,
            report_interval=stride,
        )
        sim.run(n_steps)
        curves.append(rmsd_to_reference(sim.trajectory.frames, model.native))
        times = sim.trajectory.times
    return {
        "model": model,
        "rmsd_curves": np.asarray(curves),
        "times_ps": np.asarray(times),
    }
