"""Fig. 9 — average ensemble-level bandwidth vs total cores.

The paper: ensemble synchronisation bandwidth "typically does not
exceed 0.1 MB/s" at the real run's scale and grows with the total core
count (more concurrent workers streaming results), with lines for
12/24/48/96 cores per simulation.
"""

import numpy as np
import pytest

from repro.perfmodel import ProjectSpec, ensemble_bandwidth

from conftest import report

CORE_COUNTS = [96, 384, 1536, 5000, 20000, 100000]
CORES_PER_SIM = [12, 24, 48, 96]


def compute_bandwidths():
    table = {}
    for k in CORES_PER_SIM:
        for n in CORE_COUNTS:
            if n < k:
                continue
            table[(n, k)] = ensemble_bandwidth(
                ProjectSpec(total_cores=n, cores_per_sim=k)
            )
    return table


def test_fig9_ensemble_bandwidth(benchmark):
    table = benchmark.pedantic(compute_bandwidths, rounds=1, iterations=1)

    lines = [
        "average ensemble-level bandwidth (MB/s) vs total cores",
        "",
        f"{'N cores':>9s} " + " ".join(f"k={k:>8d}" for k in CORES_PER_SIM),
    ]
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            bw = table.get((n, k))
            cells.append(f"{bw:10.4f}" if bw is not None else "         -")
        lines.append(f"{n:>9d} " + " ".join(cells))

    bw_run = table[(5000, 24)]
    lines += [
        "",
        f"paper: average ensemble bandwidth <= 0.1 MB/s for the villin run;",
        f"measured at the run's operating point (5,000 cores, k=24): "
        f"{bw_run:.3f} MB/s",
    ]
    assert bw_run < 0.15
    # bandwidth grows with total cores until the command ceiling, then
    # saturates (the makespan stops shrinking)
    for k in CORES_PER_SIM:
        below = table[(384, k)] if (384, k) in table else table[(96, k)]
        assert table[(20000, k)] >= below - 1e-12
        assert table[(100000, k)] == pytest.approx(
            max(table[(20000, k)], table[(100000, k)]), rel=0.2
        )
    report("fig9_bandwidth", lines)
