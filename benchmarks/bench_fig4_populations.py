"""Fig. 4 — time evolution of MSM cluster populations.

The paper propagates ``p(t + tau) = p(t) T(tau)`` from the nine
unfolded states: 66 % of the population folds by 2 us, with a folding
half-time of 500-600 ns, against an experimental ~700 ns.  Here the
MSM built from the adaptive campaign is propagated from the unfolded
starts, and the resulting half-time is validated against the direct
(brute-force) folding kinetics of the same model — this reproduction's
stand-in for experiment.
"""

import numpy as np
import pytest

from repro.analysis.folding import half_time
from repro.analysis.rmsd import rmsd_to_reference
from repro.md.models.villin import build_villin

from conftest import CAMPAIGN, PS_TO_PAPER_NS, report

#: Membership threshold for "folded" microstates (nm); the paper uses
#: 3.5 A on the all-atom system.
FOLDED_NM = 0.25


def test_fig4_population_evolution(benchmark, villin_campaign, brute_force_ensemble):
    _, controller, _ = villin_campaign
    msm, clusters = benchmark.pedantic(
        controller.final_msm, rounds=1, iterations=1
    )
    model = build_villin("fast", **CAMPAIGN["model_params"])

    # folded microstates: cluster centres within the threshold
    center_rmsd = rmsd_to_reference(clusters.centers, model.native)
    folded_full = center_rmsd < FOLDED_NM
    folded_active = folded_full[msm.active_set]
    assert folded_active.any(), "no folded microstate in the active set"

    # initial distribution: where the unfolded starting frames live
    gen0_starts = np.stack(
        [
            t.frames[0]
            for t in controller.trajectories.values()
            if t.generation == 0 and t.frames is not None
        ]
    )
    start_labels = clusters.assign(gen0_starts, metric=controller.metric)
    start_active = msm.map_to_active(start_labels)
    start_active = start_active[start_active >= 0]
    assert len(start_active), "every start state was trimmed"
    p0 = np.zeros(msm.n_states)
    for s in start_active:
        p0[s] += 1.0
    p0 /= p0.sum()

    horizon_steps = 80
    times, curve = msm.population_curve(p0, horizon_steps, folded_active)
    msm_half_ps = half_time(curve, times, plateau=curve[-1])

    # direct reference kinetics: cumulative first-passage folding of the
    # brute-force ensemble (the "experimental" folding time here)
    curves = brute_force_ensemble["rmsd_curves"]
    t_ps = brute_force_ensemble["times_ps"]
    reached = np.minimum.accumulate(curves, axis=1) < FOLDED_NM
    direct_curve = reached.mean(axis=0)
    direct_half_ps = half_time(direct_curve, t_ps, plateau=1.0)

    lines = [
        "paper: 66% of the population folded by 2 us; MSM half-time",
        "500-600 ns vs experimental ~700 ns (ratio 0.71-0.86)",
        "",
        f"MSM: {msm.n_states} active microstates, lag {msm.lag_time:.0f} ps, "
        f"{int(folded_active.sum())} folded states",
        f"fraction folded at horizon ({times[-1]:.0f} ps): {curve[-1]:.2f}",
        f"MSM folding half-time:   {msm_half_ps:7.1f} ps "
        f"(~{msm_half_ps * PS_TO_PAPER_NS:.0f} paper-ns equivalent)",
        f"direct-ensemble half-time: {direct_half_ps:7.1f} ps "
        "(reproduction's 'experimental' reference)",
        f"ratio MSM/direct: {msm_half_ps / direct_half_ps:.2f} "
        "(paper's MSM/experiment ratio: 0.71-0.86)",
        "",
        f"{'t (ps)':>8s} {'folded population':>18s}",
    ]
    for k in range(0, horizon_steps + 1, 10):
        lines.append(f"{times[k]:8.0f} {curve[k]:18.3f}")

    # shape assertions: population flows from unfolded to folded and the
    # MSM kinetics agree with direct simulation within a small factor
    assert curve[0] < 0.05
    assert curve[-1] > 0.3
    assert msm_half_ps is not None and direct_half_ps is not None
    assert 0.25 < msm_half_ps / direct_half_ps < 4.0
    report("fig4_populations", lines)
