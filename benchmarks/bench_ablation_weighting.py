"""Ablation — even vs adaptive weighting (paper section 3.2).

The paper: even weighting is right while the state partitioning is
unstable; once states stabilise, uncertainty-adaptive weighting
"optimizes convergence of the kinetic properties of the model, which
can boost sampling efficiency twofold compared to even weighting".

Metric: after an equal simulation budget, (a) state-space coverage
(microstates discovered on a fixed reference partition) and (b) total
transition-matrix uncertainty (summed Dirichlet posterior variance,
lower is better).  The efficiency boost is the even/adaptive
uncertainty ratio.
"""

import numpy as np
import pytest

from repro.msm.cluster import KCentersClustering
from repro.msm.counts import count_matrix_multi
from repro.msm.metrics import RMSDMetric

from conftest import report, run_campaign


def total_uncertainty(counts: np.ndarray, prior: float = 1.0) -> float:
    """Summed Dirichlet posterior variance over visited rows."""
    n = counts.shape[0]
    visited = counts.sum(axis=1) > 0
    alpha = counts + prior / n
    alpha_total = counts.sum(axis=1) + prior
    p = alpha / alpha_total[:, None]
    row_var = (p * (1.0 - p)).sum(axis=1) / (alpha_total + 1.0)
    return float(row_var[visited].sum())


def campaign_metrics(controller, reference_clusters):
    """Coverage and uncertainty on a shared reference partition."""
    pool, index = controller._pooled_frames()
    labels = reference_clusters.assign(pool, metric=RMSDMetric())
    dtrajs = [labels[idx] for _, idx in index]
    counts = count_matrix_multi(
        dtrajs, reference_clusters.n_clusters, controller.config.lag_frames
    )
    visited = int(((counts.sum(axis=1) + counts.sum(axis=0)) > 0).sum())
    return visited, total_uncertainty(counts)


def run_ablation():
    runs = {}
    for weighting in ("uniform", "uncertainty", "min-counts"):
        # two seeds each to damp run-to-run noise
        runs[weighting] = [
            run_campaign(weighting, seed, n_generations=4)[1]
            for seed in (11, 12)
        ]
    return runs


def test_ablation_even_vs_adaptive(benchmark):
    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    # shared reference partition: cluster the union of all frames once
    all_frames = []
    for controllers in runs.values():
        for controller in controllers:
            pool, _ = controller._pooled_frames()
            all_frames.append(pool[::4])
    reference = KCentersClustering(
        n_clusters=40, metric=RMSDMetric(), seed=0
    ).fit(np.concatenate(all_frames))

    lines = [
        "equal budget: 12 commands/generation x 4 generations x 3,000 steps",
        "",
        f"{'weighting':>10s} {'states discovered':>18s} {'total uncertainty':>18s}",
    ]
    summary = {}
    for weighting, controllers in runs.items():
        coverage, uncertainty = zip(
            *(campaign_metrics(c, reference) for c in controllers)
        )
        summary[weighting] = (np.mean(coverage), np.mean(uncertainty))
        lines.append(
            f"{weighting:>10s} {np.mean(coverage):18.1f} "
            f"{np.mean(uncertainty):18.4f}"
        )

    boost = summary["uniform"][1] / summary["uncertainty"][1]
    lines += [
        "",
        f"uncertainty ratio uniform/uncertainty: {boost:.2f} "
        "(paper: adaptive can boost sampling efficiency ~2x)",
    ]
    # adaptive must not lose to even on either axis by a wide margin
    assert summary["uncertainty"][0] >= 0.7 * summary["uniform"][0]
    assert boost > 0.7
    report("ablation_weighting", lines)
