"""Fig. 3 — the first folded conformation.

The paper superposes the first folded frame on the crystal structure:
0.7 A C-alpha RMSD after three generations (~30 h).  Here: the minimum
RMSD frame of the campaign, when it appeared (generation and simulated
time), and how it compares with the folded-state fluctuation scale —
the exact analogue of the paper's claim in model units.
"""

import numpy as np
import pytest

from repro.analysis.rmsd import rmsd_to_reference
from repro.md import LangevinIntegrator, Simulation
from repro.md.models.villin import build_villin

from conftest import CAMPAIGN, PS_TO_PAPER_NS, report


def folded_fluctuation_scale(model, n_steps=6000):
    """Typical RMSD of the *stably folded* state at 300 K — the yardstick
    the first-folded RMSD is judged against."""
    state = model.native_state(rng=5, temperature=300.0)
    sim = Simulation(
        model.system,
        LangevinIntegrator(0.02, 300.0, friction=CAMPAIGN["friction"], rng=6),
        state,
        report_interval=100,
    )
    sim.run(n_steps)
    values = rmsd_to_reference(sim.trajectory.frames, model.native)
    return float(np.median(values))


def test_fig3_first_folded_structure(benchmark, villin_campaign):
    _, controller, _ = villin_campaign
    model = build_villin("fast", **CAMPAIGN["model_params"])
    yardstick = benchmark.pedantic(
        folded_fluctuation_scale, args=(model,), rounds=1, iterations=1
    )

    best_value = np.inf
    best_traj, best_time = None, None
    for traj_id, (times, values) in controller.rmsd_traces().items():
        k = int(np.argmin(values))
        if values[k] < best_value:
            best_value = float(values[k])
            best_traj = traj_id
            best_time = float(times[k])
    record = controller.trajectories[best_traj]

    lines = [
        "paper: first folded conformation at 0.7 A Calpha RMSD from the",
        "2F4K crystal structure, observed after ~3 generations (~30 h)",
        "",
        f"measured best frame: {best_value:.3f} nm RMSD to native",
        f"  in trajectory {best_traj} (generation {record.generation})",
        f"  at t = {best_time:.0f} ps of that command "
        f"(~{best_time * PS_TO_PAPER_NS:.0f} paper-ns equivalent)",
        f"folded-state fluctuation scale (native run): {yardstick:.3f} nm",
        f"ratio best/fluctuation: {best_value / yardstick:.2f} "
        "(paper's 0.7 A is likewise within native-state fluctuations)",
    ]
    # the first folded frame must be indistinguishable from the folded
    # ensemble, as in the paper's Fig. 3 superposition
    assert best_value < 2.0 * yardstick
    report("fig3_first_folded", lines)
