"""Fig. 2 — per-generation RMSD evolution of adaptive villin trajectories.

The paper follows selected trajectories across MSM generations: the
initial unfolded runs, an adaptively spawned trajectory that reaches
the first folded conformation, and a generation-4 spawn from which the
native state becomes blind-predictable.  This benchmark runs the CG
campaign and reports, per generation, the minimum RMSD to native and
the lineage of the best trajectory — the same story in model units.
"""

import numpy as np
import pytest

from repro.analysis.rmsd import rmsd_to_reference

from conftest import CAMPAIGN, report, run_campaign

#: RMSD (nm) counting as "folded" for the CG model; fluctuations of the
#: folded state sit at 0.04-0.10 nm (the paper's 0.6-0.7 A plays the
#: same role against its ~0.1-nm folded-state fluctuations).
FIRST_FOLDED_NM = 0.12


def test_fig2_generation_evolution(benchmark, villin_campaign):
    project, controller, _ = villin_campaign
    benchmark.pedantic(controller.min_rmsd_per_generation, rounds=3, iterations=1)

    per_gen = controller.min_rmsd_per_generation()
    lines = [
        f"campaign: {CAMPAIGN['n_starting_conformations']} unfolded starts "
        f"x {CAMPAIGN['trajectories_per_start']} trajectories, "
        f"{CAMPAIGN['n_generations']} generations (paper: 9 x 25, 8-10 gens)",
        "",
        f"{'generation':>10s} {'min RMSD to native (nm)':>26s} {'new best?':>10s}",
    ]
    best = np.inf
    first_folded_gen = None
    for gen in sorted(per_gen):
        value = per_gen[gen]
        marker = "*" if value < best else ""
        best = min(best, value)
        if first_folded_gen is None and value < FIRST_FOLDED_NM:
            first_folded_gen = gen
        lines.append(f"{gen:>10d} {value:>26.3f} {marker:>10s}")

    # lineage of the best trajectory (paper: the predictive trajectory
    # was spawned in generation 4 and extended onward)
    traces = controller.rmsd_traces()
    best_traj = min(traces, key=lambda t: traces[t][1].min())
    record = controller.trajectories[best_traj]
    chain = [best_traj]
    node = record
    while node.parent is not None:
        chain.append(node.parent)
        node = controller.trajectories[node.parent]
    lines += [
        "",
        f"best trajectory: {best_traj} (gen {record.generation}, "
        f"spawned from cluster {record.start_cluster})",
        f"lineage (most recent first): {' <- '.join(chain)}",
        "",
        f"paper: first folded conformation after ~3 generations; "
        f"measured: first frame under {FIRST_FOLDED_NM} nm in generation "
        f"{first_folded_gen}",
    ]

    # the adaptive machinery must improve on generation 0
    assert min(per_gen.values()) <= per_gen[0] + 1e-12
    # folding is reached within the campaign
    assert first_folded_gen is not None, "campaign never approached native"
    report("fig2_generations", lines)


def test_fig2_adaptive_spawns_have_parents(villin_campaign, benchmark):
    """Every post-gen-0 trajectory descends from a sampled frame."""
    _, controller, _ = villin_campaign
    benchmark(lambda: controller.rmsd_traces())
    later = [
        t for t in controller.trajectories.values() if t.generation > 0
    ]
    assert later
    assert all(t.parent is not None for t in later)
    assert all(t.start_cluster is not None for t in later)
