"""Fig. 7 — scaling efficiency of the villin run vs total core count.

Efficiency is ``t_res(1) / (N t_res(N))`` with ``t_res(1) = 1.1e5``
hours, for 1/12/24/48/96 cores per simulation.  The paper's shape:
near-linear scaling until the 225-command ceiling (at ~225 k cores for
k cores per simulation), then a rapid drop; 53 % at 20,000 cores.
"""

import numpy as np
import pytest

from repro.perfmodel import ProjectSpec, sweep_total_cores
from repro.perfmodel.scheduler_sim import analytic_result, reference_time_single_core

from conftest import report

CORE_COUNTS = [1, 12, 24, 48, 96, 192, 384, 768, 1536, 3072, 5376, 10000, 20000, 50000, 100000]
CORES_PER_SIM = [1, 12, 24, 48, 96]


def sweep_all():
    return {
        k: sweep_total_cores(CORE_COUNTS, cores_per_sim=k)
        for k in CORES_PER_SIM
    }


def test_fig7_scaling_efficiency(benchmark):
    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    lines = [
        "scaling efficiency t_res(1) / (N * t_res(N)); t_res(1) = "
        f"{reference_time_single_core(ProjectSpec(total_cores=1, cores_per_sim=1)):.3g} h "
        "(paper: 1.1e5 h)",
        "",
        f"{'N cores':>9s} " + " ".join(f"k={k:>4d}" for k in CORES_PER_SIM),
    ]
    table = {}
    for k, rows in results.items():
        for r in rows:
            table[(r.spec.total_cores, k)] = r.efficiency
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            eff = table.get((n, k))
            cells.append(f"{eff:6.2f}" if eff is not None else "     -")
        lines.append(f"{n:>9d} " + " ".join(cells))

    # paper anchors
    eff_20k_96 = table[(20000, 96)]
    lines += [
        "",
        f"paper: 53% efficiency at 20,000 cores (k=96); measured: {eff_20k_96:.2f}",
        "paper: near-linear strong scaling 1 -> 5,376 cores; measured "
        f"efficiency at 5,376 cores (k=24): {table[(5376, 24)]:.2f}",
    ]
    assert eff_20k_96 == pytest.approx(0.53, abs=0.06)
    # near-linear below the ceiling for small k
    assert table[(192, 1)] > 0.9
    # the ceiling bites: efficiency at 100k cores is far below each
    # line's best value
    for k in CORES_PER_SIM:
        best = max(eff for (n, kk), eff in table.items() if kk == k)
        assert table[(100000, k)] < 0.6 * best + 1e-9
    # larger k extends the efficient range to more cores (the paper's
    # trade-off): at 50k cores, k=96 beats k=12
    assert table[(50000, 96)] > table[(50000, 12)]
    report("fig7_efficiency", lines)
