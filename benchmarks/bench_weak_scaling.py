"""Ablation — weak scaling and the size-grows-reach argument (paper §4).

Two of the paper's supporting claims:

* "the underlying molecular dynamics implementation has close to ideal
  weak scaling" — checked on the simulated domain decomposition: with
  atoms-per-rank held fixed, the computational load per rank stays
  constant while halo traffic per rank grows only with the slab
  cross-section;
* "the strong scaling regime for Copernicus will typically increase
  more than proportionally to the system size" — checked on the
  performance model: a 10x larger system supports proportionally more
  cores per simulation at *higher* per-simulation efficiency.
"""

import numpy as np
import pytest

from repro.md.models.lj_fluid import lj_fluid_state, lj_fluid_system
from repro.md.parallel import DomainDecomposition
from repro.perfmodel import VILLIN_MODEL

from conftest import report


def dd_weak_scaling_rows(atoms_per_rank=216):
    rows = []
    for n_ranks in (2, 4, 8):
        n_atoms = atoms_per_rank * n_ranks
        system, box = lj_fluid_system(n_particles=n_atoms, density=0.5)
        state = lj_fluid_state(system, box, rng=0)
        dd = DomainDecomposition(system, state.positions, n_ranks=n_ranks)
        balance = dd.load_balance()
        _, _, stats = dd.compute_forces(state.positions)
        rows.append(
            {
                "n_ranks": n_ranks,
                "n_atoms": n_atoms,
                "load_imbalance": float(balance.max()),
                "halo_per_rank": float(np.mean(stats.halo_atoms_per_rank)),
            }
        )
    return rows


def test_weak_scaling(benchmark):
    rows = benchmark.pedantic(dd_weak_scaling_rows, rounds=1, iterations=1)

    lines = [
        "domain decomposition, fixed 216 atoms/rank (LJ fluid, rho*=0.5):",
        "",
        f"{'ranks':>6s} {'atoms':>7s} {'max load/mean':>14s} {'halo atoms/rank':>16s}",
    ]
    for row in rows:
        lines.append(
            f"{row['n_ranks']:>6d} {row['n_atoms']:>7d} "
            f"{row['load_imbalance']:>14.2f} {row['halo_per_rank']:>16.1f}"
        )

    # weak scaling: per-rank load stays balanced as the system grows
    assert all(row["load_imbalance"] < 2.0 for row in rows)
    # halo per rank grows sublinearly with total size (surface, not volume)
    halo_growth = rows[-1]["halo_per_rank"] / max(rows[1]["halo_per_rank"], 1.0)
    atom_growth = rows[-1]["n_atoms"] / rows[1]["n_atoms"]
    assert halo_growth < atom_growth

    # the size-grows-reach argument on the performance model
    big = VILLIN_MODEL.rescaled(10 * VILLIN_MODEL.n_atoms)
    lines += [
        "",
        "performance model, villin vs 10x villin:",
        f"  efficiency at 96 cores:  {VILLIN_MODEL.efficiency(96):.2f} vs "
        f"{big.efficiency(96):.2f}",
        f"  strong-scaling wall:     {VILLIN_MODEL.max_cores} vs "
        f"{big.max_cores} cores",
        "paper: larger systems scale to proportionally more cores at "
        "better efficiency",
    ]
    assert big.efficiency(96) > VILLIN_MODEL.efficiency(96)
    assert big.max_cores == 10 * VILLIN_MODEL.max_cores
    report("weak_scaling", lines)
