"""Ablation — lag-time sensitivity (paper §3.2).

The paper: "we constructed a Markov State Model with a lag time of
25 ns (a sensitivity analysis showed that the system became Markovian
for lag times of 20 ns or greater)".  This benchmark runs the same
analysis on the adaptive campaign's data: implied timescales vs lag,
the detected Markovian lag, and a Chapman-Kolmogorov check at the
campaign's production lag.
"""

import numpy as np
import pytest

from repro.msm.validation import (
    chapman_kolmogorov,
    implied_timescale_scan,
    markovian_lag,
)

from conftest import CAMPAIGN, PS_TO_PAPER_NS, report


def test_lag_sensitivity(benchmark, villin_campaign):
    _, controller, _ = villin_campaign
    pool, index = controller._pooled_frames()
    labels = controller.cluster_model.assign(pool, metric=controller.metric)
    dtrajs = [labels[idx] for _, idx in index]
    n_states = controller.cluster_model.n_clusters
    frame_ps = CAMPAIGN["report_interval"] * 0.02  # config default timestep

    lags = [1, 2, 3, 5, 8, 12]
    scan = benchmark.pedantic(
        implied_timescale_scan,
        args=(dtrajs, n_states, lags),
        kwargs={"frame_time": frame_ps, "k": 2},
        rounds=1,
        iterations=1,
    )
    lag_star = markovian_lag(scan, tolerance=0.1)

    lines = [
        "implied timescales vs lag on the adaptive campaign's trajectories",
        f"(frame time {frame_ps:.0f} ps; campaign production lag "
        f"{CAMPAIGN['lag_frames']} frames)",
        "",
        f"{'lag (frames)':>12s} {'lag (ps)':>9s} {'t1 (ps)':>9s} {'t2 (ps)':>9s}",
    ]
    for lag in lags:
        t = scan[lag]
        lines.append(
            f"{lag:>12d} {lag * frame_ps:>9.0f} {t[0]:>9.1f} {t[1]:>9.1f}"
        )
    ck = chapman_kolmogorov(
        dtrajs, n_states, lag=CAMPAIGN["lag_frames"], factors=(2, 3)
    )
    lines += [
        "",
        f"Markovian from lag {lag_star} frames "
        f"(~{lag_star * frame_ps * PS_TO_PAPER_NS:.0f} paper-ns equivalent; "
        "paper: Markovian for lags >= 20 ns)",
        "Chapman-Kolmogorov at the production lag: "
        + ", ".join(f"k={k}: {v:.3f}" for k, v in ck.items()),
    ]

    # a Markovian plateau exists within the scanned range, at or below
    # the campaign's production lag — the paper's situation exactly
    # (Markovian from 20 ns, production at 25 ns)
    assert lag_star <= CAMPAIGN["lag_frames"] + 3
    # the slowest timescale is resolved (finite) at the production lag
    assert np.isfinite(scan[CAMPAIGN["lag_frames"]][0])
    # timescales rise toward the plateau rather than diverging
    assert scan[5][0] > scan[1][0]
    report("lag_sensitivity", lines)
