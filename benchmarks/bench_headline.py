"""Headline claims — the abstract's numbers, paper vs measured.

* near-linear strong scaling from 1 to 5,376 cores;
* structures ~0.6-0.7 A from native within 30 h (3 generations);
* blind native-state prediction after 80-90 h (~2.5x the first-folded
  time);
* matching Copernicus' efficiency classically would require > 50 us/day.
"""

import numpy as np
import pytest

from repro.perfmodel import (
    ProjectSpec,
    ResourcePool,
    analytic_heterogeneous_time,
    analytic_project_time,
)
from repro.perfmodel.scheduler_sim import analytic_result

from conftest import report


def scaling_numbers():
    eff_5376 = analytic_result(
        ProjectSpec(total_cores=5376, cores_per_sim=24)
    ).efficiency
    t_first_folded = analytic_project_time(
        ProjectSpec(total_cores=5000, cores_per_sim=24)
    )
    # blind prediction needs ~2.5x more generations (paper: 8 vs 3)
    t_blind = analytic_project_time(
        ProjectSpec(total_cores=5000, cores_per_sim=24, n_generations=8)
    )
    # classical-equivalent throughput: the simulated nanoseconds the
    # adaptive run produces per day of wallclock at 20,000 cores
    spec20k = ProjectSpec(total_cores=20000, cores_per_sim=96)
    ns_per_day_20k = spec20k.total_ns / (analytic_project_time(spec20k) / 24.0)
    # the real run: ~10 generations in ~100 h wallclock at 3,840-5,376
    # cores, with successive generations taking 10-11 h each
    spec_full = ProjectSpec(total_cores=5376, cores_per_sim=24, n_generations=10)
    t_full_project = analytic_project_time(spec_full)
    gen_hours = t_full_project / 10.0
    # the actual two-machine deployment: Infiniband (64-80 nodes) plus
    # Cray XE6 (96-144 nodes), 24 cores per node, run simultaneously
    t_two_site = analytic_heterogeneous_time(
        [
            ResourcePool("infiniband", total_cores=72 * 24, cores_per_sim=24),
            ResourcePool("cray", total_cores=120 * 24, cores_per_sim=24),
        ],
        n_generations=10,
    )
    return (
        eff_5376,
        t_first_folded,
        t_blind,
        ns_per_day_20k,
        t_full_project,
        gen_hours,
        t_two_site,
    )


def test_headline_claims(benchmark, villin_campaign):
    (
        eff_5376,
        t_first,
        t_blind,
        ns_day_20k,
        t_full,
        gen_hours,
        t_two_site,
    ) = benchmark.pedantic(scaling_numbers, rounds=1, iterations=1)
    _, controller, _ = villin_campaign

    # blind prediction from the campaign's final MSM
    msm, _ = controller.final_msm()
    prediction = controller.blind_native_prediction(msm)
    per_gen = controller.min_rmsd_per_generation()
    first_folded_gen = min(
        (g for g, v in per_gen.items() if v < 0.12), default=None
    )

    lines = [
        f"{'claim':58s} {'paper':>12s} {'measured':>12s}",
        f"{'strong-scaling efficiency at 5,376 cores (k=24)':58s} "
        f"{'~linear':>12s} {eff_5376:12.2f}",
        f"{'time to first folded structure, ~5,000 cores (h)':58s} "
        f"{'~30':>12s} {t_first:12.1f}",
        f"{'time to blind native prediction, 8 generations (h)':58s} "
        f"{'80-90':>12s} {t_blind:12.1f}",
        f"{'blind/first-folded time ratio':58s} {'~2.5':>12s} "
        f"{t_blind / t_first:12.2f}",
        f"{'classical-equivalent throughput at 20k cores (us/day)':58s} "
        f"{'>50':>12s} {ns_day_20k / 1000.0:12.1f}",
        f"{'full 10-generation project at 5,376 cores (h)':58s} "
        f"{'~100':>12s} {t_full:12.1f}",
        f"{'wallclock per MSM generation (h)':58s} {'10-11':>12s} "
        f"{gen_hours:12.1f}",
        f"{'two-site deployment (Infiniband+Cray), 10 gens (h)':58s} "
        f"{'~100':>12s} {t_two_site:12.1f}",
        "",
        "campaign (CG villin, adaptive):",
        f"  first folded structure in generation {first_folded_gen} "
        "(paper: generation ~3)",
        f"  blind prediction: cluster {prediction['predicted_state']} at "
        f"{prediction['rmsd_mean']:.3f} nm mean RMSD over "
        f"{len(prediction['rmsd_values'])} samples "
        "(paper: 1.4 A from native, 5 random samples)",
        f"  equilibrium population of predicted cluster: "
        f"{prediction['equilibrium_population']:.2f}",
    ]

    assert eff_5376 > 0.6
    assert t_first == pytest.approx(30.0, rel=0.15)
    assert 60.0 < t_blind < 100.0
    assert ns_day_20k / 1000.0 > 50.0
    assert t_full == pytest.approx(100.0, rel=0.15)
    assert gen_hours == pytest.approx(10.5, rel=0.15)
    assert t_two_site == pytest.approx(110.0, rel=0.2)
    assert first_folded_gen is not None
    # the blind prediction lands on a well-populated cluster that is
    # genuinely folded-ish (within a few folded-state fluctuations)
    assert prediction["rmsd_mean"] < 0.35
    report("headline", lines)
