"""The full-size villin model: the paper's 35-residue protein.

The quick benchmarks use a reduced 19-residue bundle; this one
exercises the full 35-residue coarse-grained villin (matching the real
villin headpiece's residue count, with its 10+2+11+2+10 three-helix
architecture) through the complete pipeline: stability at 300 K, a
mini adaptive campaign, and MSM construction.
"""

import numpy as np
import pytest

from repro.analysis.rmsd import rmsd_to_reference
from repro.core import (
    AdaptiveMSMController,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.md import LangevinIntegrator, Simulation
from repro.md.models.villin import build_villin
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

from conftest import report


def run_full_villin():
    model = build_villin("full")
    # native-state stability at 300 K
    state = model.native_state(rng=0, temperature=300.0)
    sim = Simulation(
        model.system,
        LangevinIntegrator(0.02, 300.0, friction=1.0, rng=1),
        state,
        report_interval=200,
    )
    sim.run(6000)
    native_rmsd = rmsd_to_reference(sim.trajectory.frames, model.native)

    # a miniature adaptive campaign on the full-size model
    net = Network(seed=0)
    server = CopernicusServer("srv", net)
    worker = Worker("w0", net, server="srv", platform=SMPPlatform(cores=2))
    net.connect("srv", "w0")
    worker.announce(0.0)
    config = MSMProjectConfig(
        model="villin-full",
        n_starting_conformations=2,
        trajectories_per_start=2,
        steps_per_command=2500,
        report_interval=50,
        n_clusters=20,
        lag_frames=4,
        n_generations=2,
        weighting="uncertainty",
        seed=3,
    )
    controller = AdaptiveMSMController(config)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("msm_villin_full"), controller)
    runner.run()
    msm, _ = controller.final_msm()
    return model, native_rmsd, controller, msm


def test_villin_full_pipeline(benchmark):
    model, native_rmsd, controller, msm = benchmark.pedantic(
        run_full_villin, rounds=1, iterations=1
    )

    per_gen = controller.min_rmsd_per_generation()
    lines = [
        f"full villin: {model.n_residues} residues "
        "(paper: 35-residue villin headpiece), "
        f"{len(model.go_force.pairs)} native contacts",
        "",
        f"native-state RMSD at 300 K: median {np.median(native_rmsd):.3f} nm, "
        f"max {native_rmsd.max():.3f} nm over 120 ps",
        f"adaptive mini-campaign: {controller.generation + 1} generations, "
        f"{len(controller.trajectories)} trajectories",
        "min RMSD per generation: "
        + ", ".join(f"g{g}: {v:.2f}" for g, v in sorted(per_gen.items())),
        f"final MSM: {msm.n_states} active microstates",
    ]
    assert model.n_residues == 35
    # the full-size native state is dynamically stable
    assert np.median(native_rmsd) < 0.15
    # the pipeline runs end to end on the paper-size model
    assert controller._complete
    assert msm.n_states > 1
    report("villin_full", lines)
