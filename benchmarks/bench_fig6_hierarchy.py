"""Fig. 6 — multi-level parallelism and its bandwidth/latency hierarchy.

The paper's Fig. 6 annotates each parallelisation level (SIMD, threads,
MPI, ensemble-SSL) with its bandwidth and latency.  This benchmark
prints the hierarchy with the paper's numbers, the model's per-level
quantities (single-simulation MPI traffic for 24-96 cores, ensemble
traffic from the scheduler model), and measures the overlay's actual
accounted traffic on a live mini-deployment.
"""

import pytest

from repro.core import Command
from repro.md.engine import MDTask
from repro.net import Network
from repro.perfmodel import ProjectSpec, ensemble_bandwidth, parallelism_hierarchy
from repro.perfmodel.bandwidth import single_simulation_mpi_bandwidth
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

from conftest import report


def run_overlay_sample():
    """One command through a relayed overlay; returns the network."""
    net = Network(seed=3)
    origin = CopernicusServer("origin", net)
    relay = CopernicusServer("relay", net)
    net.connect("origin", "relay", latency=0.1)
    worker = Worker("w0", net, server="relay", platform=SMPPlatform(cores=2))
    net.connect("relay", "w0", latency=0.001)
    worker.announce(0.0)
    origin.host_project("p", lambda c, r: None)
    task = MDTask(model="villin-fast", n_steps=2000, report_interval=100, task_id="c0")
    origin.submit_commands([Command("c0", "p", "mdrun", task.to_payload())])
    worker.work_once(now=1.0)
    return net


def test_fig6_parallelism_hierarchy(benchmark):
    net = benchmark.pedantic(run_overlay_sample, rounds=1, iterations=1)

    lines = [
        f"{'level':18s} {'avg bandwidth':>15s} {'peak':>12s} {'latency':>10s}",
    ]
    for level in parallelism_hierarchy():
        lines.append(
            f"{level.level:18s} {level.average_bandwidth:>15s} "
            f"{level.peak_bandwidth:>12s} {level.latency:>10s}"
        )
    lines += [
        "",
        "model quantities:",
        f"  single-simulation MPI traffic: {single_simulation_mpi_bandwidth(24):.0f} MB/s at 24 cores, "
        f"{single_simulation_mpi_bandwidth(96):.0f} MB/s at 96 cores "
        "(paper: 500-2900 MB/s)",
        f"  ensemble-level average: "
        f"{ensemble_bandwidth(ProjectSpec(total_cores=5000, cores_per_sim=24)):.3f} MB/s "
        "(paper: ~0.04 avg, <=0.1 MB/s)",
        "",
        "measured overlay traffic (one 2,000-step command, relayed):",
    ]
    for row in net.traffic_report():
        lines.append(
            f"  {row['link']:24s} {row['bytes']:>10d} bytes "
            f"{row['messages']:>4d} msgs {row['busy_seconds']:>8.3f} s busy"
        )
    # the trajectory data dominates: worker link carries more than the
    # inter-server link carries in messages but the result is forwarded
    assert net.total_bytes() > 0
    report("fig6_hierarchy", lines)
