"""Fig. 1 — the Copernicus network architecture, functionally exercised.

The paper's Fig. 1 shows two project servers and four relay servers
spanning three clusters, running an MSM project and a free-energy
project simultaneously.  This benchmark builds that exact topology,
runs both project types across it, and reports the per-link traffic —
demonstrating wildcard workload routing, multi-hop result forwarding
and simultaneous use of three "clusters".
"""

import pytest

from repro.core import (
    BARController,
    FEPProjectConfig,
    MSMProjectConfig,
    AdaptiveMSMController,
    Project,
    ProjectRunner,
)
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

from conftest import report


def build_fig1_network():
    """Two project servers, a gateway, three cluster head-node servers."""
    net = Network(seed=7)
    msm_server = CopernicusServer("server-villin", net)      # msm_villin project
    fep_server = CopernicusServer("server-titin", net)       # free_energy project
    gateway = CopernicusServer("gateway", net)               # Stockholm gateway
    heads = [CopernicusServer(f"cluster{k}-head", net) for k in range(3)]
    # overlay (Fig. 1 center): both project servers behind the gateway;
    # clusters 0 and 1 local, cluster 2 on another continent
    net.connect("server-villin", "gateway", latency=0.01)
    net.connect("server-titin", "gateway", latency=0.01)
    net.connect("gateway", "cluster0-head", latency=0.005)
    net.connect("gateway", "cluster1-head", latency=0.005)
    net.connect("gateway", "cluster2-head", latency=0.15)    # intercontinental
    workers = []
    for c in range(3):
        for w in range(2):
            name = f"c{c}w{w}"
            worker = Worker(
                name,
                net,
                server=f"cluster{c}-head",
                platform=SMPPlatform(cores=2),
                segment_steps=2000,
            )
            net.connect(f"cluster{c}-head", name, latency=0.0005)
            worker.announce(0.0)
            workers.append(worker)
    return net, msm_server, fep_server, workers


def run_fig1_projects():
    net, msm_server, fep_server, workers = build_fig1_network()
    msm_runner = ProjectRunner(net, msm_server, workers, tick=60.0)
    msm_config = MSMProjectConfig(
        model="muller-brown",
        n_starting_conformations=2,
        trajectories_per_start=2,
        steps_per_command=1500,
        report_interval=25,
        n_clusters=12,
        lag_frames=2,
        n_generations=2,
        timestep=0.01,
        seed=1,
    )
    msm_controller = AdaptiveMSMController(msm_config)
    msm_runner.submit(Project("msm_villin"), msm_controller)

    fep_runner = ProjectRunner(net, fep_server, workers, tick=60.0)
    fep_controller = BARController(
        FEPProjectConfig(n_windows=4, samples_per_command=400, target_error=0.08)
    )
    fep_runner.submit(Project("free_energy"), fep_controller)

    # drive both projects over the same worker pool
    msm_runner.run()
    fep_runner.run()
    return net, msm_controller, fep_controller


def test_fig1_architecture(benchmark):
    net, msm_controller, fep_controller = benchmark.pedantic(
        run_fig1_projects, rounds=1, iterations=1
    )
    lines = [
        "Topology: 2 project servers + gateway + 3 cluster head nodes, "
        "2 workers each (paper Fig. 1)",
        "",
        f"MSM project generations completed: {msm_controller.generation + 1}",
        f"BAR project dF = {fep_controller.estimate:.4f} "
        f"+/- {fep_controller.error:.4f} "
        f"(analytic {fep_controller.analytic_reference():.4f})",
        "",
        f"{'link':34s} {'messages':>9s} {'bytes':>12s}",
    ]
    for row in net.traffic_report():
        lines.append(
            f"{row['link']:34s} {row['messages']:9d} {row['bytes']:12d}"
        )
    # every cluster (including the remote one) carried traffic
    for c in range(3):
        head_links = [
            r for r in net.traffic_report() if f"cluster{c}-head" in r["link"]
        ]
        assert any(r["messages"] > 0 for r in head_links), f"cluster {c} idle"
    report("fig1_architecture", lines)
