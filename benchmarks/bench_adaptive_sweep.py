"""Adaptive-strategy sweep + regression floor (BENCH_adaptive.json).

Runs the laboratory's [scheme x adaptive-frequency x parallelism] grid
on the 20-state ground-truth chain (``markov-ala20``) and writes the
deterministic ``BENCH_adaptive.json`` payload plus the "which scheme
wins where" markdown report.

Run as a script (CI's ``lab`` job)::

    PYTHONPATH=src python benchmarks/bench_adaptive_sweep.py \
        --seeds 0 1 2 --min-speedup 1.5

Exits nonzero if uncertainty-weighted adaptive sampling fails to beat
uniform by the floor (default 1.5x) on time-to-threshold, pooled over
the given seeds.  Pooling uses budget-censored times (a scheme that
never reaches the threshold is scored at the full step budget, a
conservative lower bound on its true time), because single-seed
time-to-threshold on a barrier chain is a first-passage time with
heavy-tailed noise — the pooled ratio is the stable quantity a
regression floor can sit on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lab.sweep import SweepConfig, render_report, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_MIN_SPEEDUP = 1.5
FLOOR_STEPS = 400
FLOOR_TRAJS = 8


def _floor_config(seed: int) -> SweepConfig:
    """The single cell the regression floor is measured on."""
    return SweepConfig(
        schemes=("uniform", "uncertainty"),
        steps_per_command=(FLOOR_STEPS,),
        n_trajectories=(FLOOR_TRAJS,),
        seed=seed,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="seeds pooled into the regression floor (grid artifacts "
        "come from the first seed)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="pooled uncertainty-vs-uniform floor (default 1.5)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_adaptive.json"),
        help="where to write the sweep JSON payload",
    )
    parser.add_argument(
        "--report", default=str(REPO_ROOT / "REPORT_adaptive.md"),
        help="where to write the markdown report",
    )
    args = parser.parse_args(argv)

    grid_seed = args.seeds[0]
    print(f"[lab] full grid sweep at seed {grid_seed} ...")
    grid = run_sweep(SweepConfig(seed=grid_seed), log=print)
    Path(args.out).write_text(grid.to_json() + "\n", encoding="utf-8")
    Path(args.report).write_text(render_report(grid), encoding="utf-8")
    print(f"[lab] wrote {args.out} and {args.report}")

    uniform_steps = 0.0
    uncertainty_steps = 0.0
    for seed in args.seeds:
        if seed == grid_seed:
            result = grid
        else:
            print(f"[lab] floor cell at seed {seed} ...")
            result = run_sweep(_floor_config(seed), log=print)
        tt_uniform = result.capped_time("uniform", FLOOR_STEPS, FLOOR_TRAJS)
        tt_uncertainty = result.capped_time(
            "uncertainty", FLOOR_STEPS, FLOOR_TRAJS
        )
        uniform_steps += tt_uniform
        uncertainty_steps += tt_uncertainty
        print(
            f"[lab] seed {seed}: uniform {tt_uniform:,.0f} steps, "
            f"uncertainty {tt_uncertainty:,.0f} steps "
            f"(ratio {tt_uniform / tt_uncertainty:.2f}x)"
        )

    pooled = uniform_steps / uncertainty_steps
    print(
        f"[lab] pooled uncertainty-vs-uniform speedup over seeds "
        f"{args.seeds}: {pooled:.2f}x (floor {args.min_speedup:.2f}x)"
    )
    if pooled < args.min_speedup:
        print(
            f"[lab] REGRESSION: pooled speedup {pooled:.2f}x is below "
            f"the {args.min_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
