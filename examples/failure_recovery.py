"""Checkpoint handoff: kill a worker mid-command, watch recovery.

Reproduces the paper's fault-tolerance path (section 2.3): workers
heartbeat the latest checkpoint of every running command; when a worker
goes silent for twice the heartbeat interval, its server declares it
dead and requeues the commands — *with* the checkpoint — so another
worker transparently continues from where the dead one stopped.

Run:  python examples/failure_recovery.py
"""

from repro.core import Command, Project, ProjectRunner
from repro.core.controller import Controller
from repro.md.engine import MDTask
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker


class SwarmController(Controller):
    """A flat swarm of MD commands; complete when all return."""

    def __init__(self, n_commands: int, n_steps: int) -> None:
        self.n_commands = n_commands
        self.n_steps = n_steps
        self.finished = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model="villin-fast",
                    n_steps=self.n_steps,
                    report_interval=200,
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append((command.command_id, result["steps_completed"]))
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.n_commands


def main() -> None:
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=60.0)
    flaky = Worker(
        "flaky", net, server="srv", platform=SMPPlatform(cores=1),
        segment_steps=1000,
    )
    steady = Worker(
        "steady", net, server="srv", platform=SMPPlatform(cores=1),
        segment_steps=1000,
    )
    for name in ("flaky", "steady"):
        net.connect("srv", name)
    flaky.announce(0.0)
    steady.announce(0.0)

    # the flaky worker dies after two 1,000-step segments of whatever
    # command it picks up first
    flaky.set_crash_hook(lambda cid, segment: segment == 2)

    controller = SwarmController(n_commands=3, n_steps=5000)
    runner = ProjectRunner(net, server, [flaky, steady], tick=90.0)
    runner.submit(Project("swarm"), controller)
    runner.run()

    print("commands completed (steps executed by the finishing worker):")
    for cid, steps in sorted(controller.finished):
        note = " <- resumed from a dead worker's checkpoint" if steps < 5000 else ""
        print(f"  {cid}: {steps} steps{note}")
    print(f"\nworkers declared dead and requeued commands: "
          f"{server.requeued_after_failure}")
    print(f"flaky crashed: {flaky.crashed}; history: "
          f"{[(r.command_id, r.segments, r.completed) for r in flaky.history]}")


if __name__ == "__main__":
    main()
