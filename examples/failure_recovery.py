"""Checkpoint handoff: kill a worker mid-command, watch recovery.

Reproduces the paper's fault-tolerance path (section 2.3): workers
heartbeat the latest checkpoint of every running command; when a worker
goes silent for twice the heartbeat interval, its server declares it
dead and requeues the commands — *with* the checkpoint — so another
worker transparently continues from where the dead one stopped.

The run goes through ``repro.testing``: a seeded :class:`FaultPlan`
crashes one worker mid-command *and* briefly partitions the other
worker's uplink, and the :class:`Invariants` checker replays the event
log afterwards to prove no command was lost, none completed twice and
every checkpoint moved forward.  Re-running with the same seed
reproduces the identical event transcript.

Run:  python examples/failure_recovery.py
"""

from repro.testing import Invariants, run_swarm_under_faults

N_STEPS = 5000


def build_and_run(seed: int = 0) -> dict:
    """Run the chaos scenario; returns the scenario dict (see
    :func:`repro.testing.scenarios.run_swarm_under_faults`)."""

    def configure(plan):
        # the first worker dies after two 1,000-step segments of
        # whatever command it picks up first...
        plan.crash_worker("w0", at_segment=2)
        # ...and the second worker's uplink drops for a while, so its
        # heartbeats and result submissions must survive retries
        plan.partition("srv", "w1", after_index=8, until_index=14)

    return run_swarm_under_faults(
        configure=configure, n_commands=3, n_steps=N_STEPS, seed=seed
    )


def main() -> None:
    scenario = build_and_run(seed=0)
    controller = scenario.controller
    server = scenario.server
    flaky = scenario.workers[0]

    print("commands completed (steps executed by the finishing worker):")
    for cid, steps in sorted(controller.finished):
        note = " <- resumed from a dead worker's checkpoint" if steps < N_STEPS else ""
        print(f"  {cid}: {steps} steps{note}")
    print(f"\nworkers declared dead and requeued commands: "
          f"{server.requeued_after_failure}")
    print(f"flaky crashed: {flaky.crashed}; history: "
          f"{[(r.command_id, r.segments, r.completed) for r in flaky.history]}")
    print(f"chaos: {scenario.chaos}")

    Invariants(scenario.runner).assert_ok()
    print("recovery invariants: all green")


if __name__ == "__main__":
    main()
