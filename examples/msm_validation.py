"""MSM validation on the Muller-Brown surface: lag scan and CK test.

The paper validates its villin MSM by a lag-time sensitivity analysis
("the system became Markovian for lag times of 20 ns or greater").
This example runs the same analysis on the Muller-Brown surface, where
trajectories are cheap: implied timescales vs lag time, the detected
Markovian lag, and a Chapman-Kolmogorov test at that lag.

Run:  python examples/msm_validation.py
"""

import numpy as np

from repro.md.engine import MDEngine, MDTask
from repro.msm import KCentersClustering
from repro.msm.validation import (
    chapman_kolmogorov,
    implied_timescale_scan,
    markovian_lag,
)


def main() -> None:
    # --- sample the surface -------------------------------------------------
    engine = MDEngine(segment_steps=5000)
    frames = []
    for seed in range(6):
        result = engine.run(
            MDTask(
                model="muller-brown",
                n_steps=30000,
                report_interval=10,
                timestep=0.01,
                seed=seed,
                task_id=f"t{seed}",
            )
        )
        frames.append(np.asarray(result.frames)[:, 0, :])  # (F, 2)
    print(f"sampled {sum(len(f) for f in frames)} frames "
          f"from {len(frames)} trajectories")

    # --- discretise ---------------------------------------------------------
    pool = np.concatenate(frames)
    clustering = KCentersClustering(n_clusters=30, seed=0).fit(pool)
    offsets = np.cumsum([0] + [len(f) for f in frames])
    dtrajs = [
        clustering.assignments[a:b] for a, b in zip(offsets[:-1], offsets[1:])
    ]

    # --- implied-timescale scan (the paper's Markovianity analysis) -------
    lags = [1, 2, 5, 10, 20, 40]
    scan = implied_timescale_scan(
        dtrajs, clustering.n_clusters, lags, frame_time=0.1, k=2
    )
    print("\nimplied timescales vs lag (time units: ps):")
    print(f"{'lag':>6s} {'t1':>10s} {'t2':>10s}")
    for lag in lags:
        t = scan[lag]
        print(f"{lag:>6d} {t[0]:>10.2f} {t[1]:>10.2f}")
    lag_star = markovian_lag(scan)
    print(f"\nMarkovian from lag {lag_star} frames "
          "(paper: villin Markovian for lags >= 20 ns)")

    # --- Chapman-Kolmogorov test ------------------------------------------
    ck = chapman_kolmogorov(dtrajs, clustering.n_clusters, lag=lag_star)
    print("Chapman-Kolmogorov max |T(lag)^k - T(k lag)|:")
    for k, err in ck.items():
        print(f"  k={k}: {err:.4f}")


if __name__ == "__main__":
    main()
