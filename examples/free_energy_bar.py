"""The BAR free-energy plugin with its error-targeted stop criterion.

A ladder of harmonic lambda windows is sampled by ``fepsample``
commands distributed over the worker pool; the controller keeps issuing
sampling rounds until the combined Bennett-acceptance-ratio error drops
below the target — the paper's example of a convergence-driven project
("until the standard error estimate of the output result has reached a
user-specified minimum value").  The result is validated against the
exact analytic free energy.

Run:  python examples/free_energy_bar.py
"""

from repro.core import BARController, FEPProjectConfig, Project, ProjectRunner
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker


def main() -> None:
    net = Network(seed=0)
    server = CopernicusServer("project-server", net)
    workers = []
    for k in range(2):
        worker = Worker(
            f"w{k}", net, server="project-server", platform=SMPPlatform(cores=2)
        )
        net.connect("project-server", f"w{k}")
        worker.announce(0.0)
        workers.append(worker)

    config = FEPProjectConfig(
        k_start=1.0,
        k_end=16.0,
        n_windows=6,
        samples_per_command=300,   # small on purpose: forces several rounds
        target_error=0.04,
        max_rounds=20,
        seed=3,
    )
    controller = BARController(config)
    runner = ProjectRunner(net, server, workers)
    runner.submit(Project("free_energy"), controller)
    runner.run()

    exact = controller.analytic_reference()
    print("round history (dF +/- error):")
    for entry in controller.history:
        print(
            f"  round {entry['round']:2d}: {entry['dF']:.4f} "
            f"+/- {entry['error']:.4f}"
        )
    print(
        f"\nfinal: dF = {controller.estimate:.4f} +/- {controller.error:.4f} "
        f"(target {config.target_error})"
    )
    print(f"analytic: {exact:.4f}  (deviation "
          f"{abs(controller.estimate - exact) / controller.error:.1f} sigma)")


if __name__ == "__main__":
    main()
