"""Quickstart: adaptive MSM folding of CG villin on a simulated deployment.

Builds the smallest useful Copernicus setup — one project server, one
worker — submits an adaptive MSM project on the coarse-grained villin
model, runs it to completion and prints the blind native-state
prediction (the paper's headline analysis).

Run:  python examples/quickstart.py
"""

from repro.core import (
    AdaptiveMSMController,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker


def main() -> None:
    # --- deployment: one server, one 2-core worker -----------------------
    net = Network(seed=0)
    server = CopernicusServer("project-server", net)
    worker = Worker(
        "w0", net, server="project-server", platform=SMPPlatform(cores=2)
    )
    net.connect("project-server", "w0")
    worker.announce(0.0)

    # --- the adaptive MSM project (tiny scale; see DESIGN.md for the
    #     mapping to the paper's 9 starts x 25 trajectories x 50 ns) -----
    config = MSMProjectConfig(
        model="villin-fast",
        n_starting_conformations=2,
        trajectories_per_start=3,
        steps_per_command=3000,
        report_interval=50,
        n_clusters=25,
        lag_frames=5,
        n_generations=3,
        weighting="adaptive",
        seed=0,
    )
    controller = AdaptiveMSMController(config)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("msm_villin"), controller)

    print("running adaptive project ...")
    runner.run()
    for status in runner.status():
        print("status:", status)

    # --- analysis ---------------------------------------------------------
    per_gen = controller.min_rmsd_per_generation()
    print("\nmin RMSD to native per generation (nm):")
    for gen in sorted(per_gen):
        print(f"  generation {gen}: {per_gen[gen]:.3f}")

    msm, _ = controller.final_msm()
    prediction = controller.blind_native_prediction(msm)
    print(
        f"\nblind native-state prediction: cluster "
        f"{prediction['predicted_state']} "
        f"(equilibrium population {prediction['equilibrium_population']:.2f}), "
        f"mean RMSD to true native {prediction['rmsd_mean']:.3f} nm"
    )
    print(f"overlay traffic: {net.total_bytes()} bytes, "
          f"{net.messages_delivered} messages")


if __name__ == "__main__":
    main()
