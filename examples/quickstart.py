"""Quickstart: the ``repro.api`` facade, from one ensemble to adaptive MSM.

Everything here goes through :mod:`repro.api` — no Network / server /
worker plumbing.  First a batched ensemble of independent villin
replicas (the paper's bread-and-butter workload), then the headline
analysis: an adaptive MSM folding project with a blind native-state
prediction.

Run:  python examples/quickstart.py
"""

from repro.api import Ensemble, Project, run
from repro.core import AdaptiveMSMController, MSMProjectConfig


def main() -> None:
    # --- 1. a batched ensemble in one call -------------------------------
    # Eight replicas of coarse-grained villin, differing only in seed.
    # The deployment coalesces them into batched kernel calls
    # automatically; results are bit-identical to running each serially.
    ensemble = Ensemble(
        model="villin-fast",
        n_replicas=8,
        steps=2000,
        report_interval=200,
        seed=0,
        name="swarm",
    )
    outcome = run(ensemble, name="ensemble_demo")
    print(f"ensemble project: {outcome.status}")
    for task, result in zip(ensemble.tasks(), outcome.ensemble_results(ensemble)):
        print(
            f"  {task.task_id}: {result.steps_completed} steps, "
            f"final U = {result.final_potential_energy:.2f}"
        )
    coalesced = outcome.obs.metrics.value(
        "repro_worker_commands_coalesced_total", worker="w0"
    )
    print(f"commands coalesced into batched kernel calls: {coalesced:.0f}")

    # --- 2. the adaptive MSM project (tiny scale; see DESIGN.md for the
    #     mapping to the paper's 9 starts x 25 trajectories x 50 ns) -----
    config = MSMProjectConfig(
        model="villin-fast",
        n_starting_conformations=2,
        trajectories_per_start=3,
        steps_per_command=3000,
        report_interval=50,
        n_clusters=25,
        lag_frames=5,
        n_generations=3,
        weighting="uncertainty",
        seed=0,
    )
    controller = AdaptiveMSMController(config)
    print("\nrunning adaptive project ...")
    msm_outcome = Project("msm_villin", controller=controller).run(cores=2)
    print(f"adaptive project: {msm_outcome.status}")

    # --- analysis ---------------------------------------------------------
    per_gen = controller.min_rmsd_per_generation()
    print("\nmin RMSD to native per generation (nm):")
    for gen in sorted(per_gen):
        print(f"  generation {gen}: {per_gen[gen]:.3f}")

    msm, _ = controller.final_msm()
    prediction = controller.blind_native_prediction(msm)
    print(
        f"\nblind native-state prediction: cluster "
        f"{prediction['predicted_state']} "
        f"(equilibrium population {prediction['equilibrium_population']:.2f}), "
        f"mean RMSD to true native {prediction['rmsd_mean']:.3f} nm"
    )
    net = msm_outcome.network
    print(f"overlay traffic: {net.total_bytes()} bytes, "
          f"{net.messages_delivered} messages")


if __name__ == "__main__":
    main()
