"""Umbrella sampling + WHAM: a free-energy profile along a coordinate.

The paper lists umbrella sampling among the ensemble methods its
framework hosts.  This example biases a tilted double well with a
ladder of harmonic windows, reconstructs the unbiased free-energy
profile with WHAM and compares the basin free-energy difference with
the exact analytic value.

Run:  python examples/umbrella_wham.py
"""

import numpy as np

from repro.fep.umbrella import metropolis_sample, window_ladder
from repro.fep.wham import free_energy_difference, wham

KT = 1.0


def potential(x: float) -> float:
    """Tilted double well: two unequal basins around x = -1 and x = +1."""
    return 3.0 * (x * x - 1.0) ** 2 + 0.8 * x


def main() -> None:
    windows = window_ladder(-1.8, 1.8, 13, k=15.0)
    print(f"sampling {len(windows)} umbrella windows ...")
    samples = [
        metropolis_sample(potential, w, 3000, KT, rng=100 + i, step=0.25)
        for i, w in enumerate(windows)
    ]

    result = wham(samples, windows, KT, n_bins=50)
    print(f"WHAM converged in {result.n_iterations} iterations")

    print("\nfree-energy profile (kT):")
    stride = max(1, len(result.bin_centers) // 16)
    for k in range(0, len(result.bin_centers), stride):
        fe = result.free_energy[k]
        bar = "#" * int(min(fe, 12.0) * 3) if np.isfinite(fe) else ""
        print(f"  x={result.bin_centers[k]:+5.2f}  F={fe:6.2f}  {bar}")

    df = free_energy_difference(
        result, region_a=(-1.8, 0.0), region_b=(0.0, 1.8), kt=KT
    )
    # exact answer by numerical integration of the Boltzmann weight
    xs = np.linspace(-2.2, 2.2, 4001)
    p = np.exp(-np.array([potential(x) for x in xs]) / KT)
    pa = np.trapezoid(np.where(xs < 0, p, 0), xs)
    pb = np.trapezoid(np.where(xs >= 0, p, 0), xs)
    exact = -KT * np.log(pb / pa)
    print(f"\nbasin free-energy difference: WHAM {df:+.3f} kT, "
          f"analytic {exact:+.3f} kT")


if __name__ == "__main__":
    main()
