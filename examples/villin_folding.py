"""The paper's villin campaign end to end (scaled to a laptop).

Reproduces section 3 of the paper with the coarse-grained villin model:

1. several unfolded starting conformations, a swarm of trajectories
   each (paper: 9 x 25 = 225 commands of 50 ns);
2. generations of adaptive sampling: cluster, weight, terminate,
   respawn;
3. the first folded conformation (paper Fig. 3: 0.7 A after ~3
   generations);
4. the blind native-state prediction from the equilibrium populations
   of the final MSM (paper: 1.4 A after 8 generations);
5. MSM-propagated folding kinetics (paper Fig. 4: t1/2 ~ 500-600 ns).

Run:  python examples/villin_folding.py        (~2-4 minutes)
"""

import numpy as np

from repro.analysis.folding import half_time
from repro.analysis.rmsd import rmsd_to_reference
from repro.core import (
    AdaptiveMSMController,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.md.models.villin import build_villin
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

FOLDED_NM = 0.25  # microstate membership threshold (paper: 3.5 A)


def main() -> None:
    net = Network(seed=0)
    server = CopernicusServer("project-server", net)
    worker = Worker(
        "w0", net, server="project-server", platform=SMPPlatform(cores=2),
        segment_steps=3000,
    )
    net.connect("project-server", "w0")
    worker.announce(0.0)

    config = MSMProjectConfig(
        model="villin-fast",
        # two-state calibration: folding takes several commands, as in
        # the paper (50-ns commands vs ~700-ns folding time)
        model_params=dict(contact_epsilon=2.0),
        friction=2.0,
        n_starting_conformations=3,      # paper: 9
        trajectories_per_start=4,        # paper: 25
        steps_per_command=2000,          # paper: 50 ns
        report_interval=50,
        n_clusters=40,                   # paper: 10,000
        lag_frames=5,                    # paper: 25 ns
        n_generations=6,                 # paper: 8-10
        weighting="uncertainty",
        seed=7,
    )
    controller = AdaptiveMSMController(config)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("msm_villin"), controller)
    print("running the adaptive campaign ...")
    runner.run()

    # --- first folded conformation (Fig. 3) ------------------------------
    per_gen = controller.min_rmsd_per_generation()
    print("\nmin RMSD to native per generation (nm):")
    for gen in sorted(per_gen):
        print(f"  generation {gen}: {per_gen[gen]:.3f}")
    best = min(per_gen.values())
    print(f"first folded structure: {best:.3f} nm from native "
          "(paper: 0.7 A on the all-atom system)")

    # --- blind native-state prediction ------------------------------------
    msm, clusters = controller.final_msm()
    prediction = controller.blind_native_prediction(msm)
    print(
        f"\nblind prediction: cluster {prediction['predicted_state']} "
        f"(equilibrium population {prediction['equilibrium_population']:.2f}) "
        f"at {prediction['rmsd_mean']:.3f} nm mean RMSD "
        "(paper: 1.4 A, average of five random samples)"
    )

    # --- MSM kinetics (Fig. 4) --------------------------------------------
    model = build_villin("fast", contact_epsilon=2.0)
    center_rmsd = rmsd_to_reference(clusters.centers, model.native)
    folded_active = (center_rmsd < FOLDED_NM)[msm.active_set]
    starts = np.stack(
        [
            t.frames[0]
            for t in controller.trajectories.values()
            if t.generation == 0 and t.frames is not None
        ]
    )
    start_states = msm.map_to_active(
        clusters.assign(starts, metric=controller.metric)
    )
    start_states = start_states[start_states >= 0]
    p0 = np.bincount(start_states, minlength=msm.n_states).astype(float)
    p0 /= p0.sum()
    times, curve = msm.population_curve(p0, 80, folded_active)
    t_half = half_time(curve, times, plateau=curve[-1])
    print(
        f"\nMSM kinetics: folded population {curve[-1]:.2f} at "
        f"{times[-1]:.0f} ps; half-time {t_half:.0f} ps "
        "(paper: 66% by 2 us, t1/2 500-600 ns)"
    )


if __name__ == "__main__":
    main()
