"""Regenerate the paper's scaling analysis (Figs. 7, 8, 9).

Sweeps the calibrated performance model over total core counts and
cores-per-simulation, printing the efficiency, time-to-solution and
ensemble-bandwidth tables, and cross-checks the analytic model against
the discrete-event scheduler simulation at the paper's operating point.

Run:  python examples/scaling_study.py
"""

from repro.perfmodel import (
    ProjectSpec,
    VILLIN_MODEL,
    analytic_project_time,
    ensemble_bandwidth,
    simulate_project,
    sweep_total_cores,
)
from repro.perfmodel.scheduler_sim import analytic_result, reference_time_single_core

CORE_COUNTS = [96, 384, 1536, 5376, 20000, 100000]
CORES_PER_SIM = [1, 12, 24, 48, 96]


def main() -> None:
    print("single-simulation strong scaling (the Gromacs substitute):")
    for k in (1, 12, 24, 48, 96):
        print(
            f"  {k:3d} cores: {VILLIN_MODEL.rate_ns_per_day(k):7.1f} ns/day "
            f"(efficiency {VILLIN_MODEL.efficiency(k):.2f})"
        )

    t1 = reference_time_single_core(ProjectSpec(total_cores=1, cores_per_sim=1))
    print(f"\nt_res(1) = {t1:.3g} hours (paper: 1.1e5)")

    print("\nFig. 7 — scaling efficiency:")
    header = f"{'N cores':>9s} " + " ".join(f"k={k:>4d}" for k in CORES_PER_SIM)
    print(header)
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            if n < k:
                cells.append("     -")
                continue
            eff = analytic_result(
                ProjectSpec(total_cores=n, cores_per_sim=k)
            ).efficiency
            cells.append(f"{eff:6.2f}")
        print(f"{n:>9d} " + " ".join(cells))

    print("\nFig. 8 — time to first folded structure (hours):")
    print(header)
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            if n < k:
                cells.append("     -")
                continue
            cells.append(
                f"{analytic_project_time(ProjectSpec(total_cores=n, cores_per_sim=k)):6.1f}"
            )
        print(f"{n:>9d} " + " ".join(cells))

    print("\nFig. 9 — ensemble bandwidth (MB/s):")
    print(header)
    for n in CORE_COUNTS:
        cells = []
        for k in CORES_PER_SIM:
            if n < k:
                cells.append("     -")
                continue
            cells.append(
                f"{ensemble_bandwidth(ProjectSpec(total_cores=n, cores_per_sim=k)):6.3f}"
            )
        print(f"{n:>9d} " + " ".join(cells))

    print("\nDES cross-check at the paper's operating point (5,000 cores, k=24):")
    spec = ProjectSpec(total_cores=5000, cores_per_sim=24)
    des = simulate_project(spec)
    print(
        f"  DES {des.hours:.1f} h vs analytic {analytic_project_time(spec):.1f} h "
        f"(paper: ~30 h); worker utilisation {des.worker_utilization:.2f}"
    )


if __name__ == "__main__":
    main()
