"""Bulk LJ fluid: structure and pressure under periodic boundaries.

The weak-scaling substrate of `bench_weak_scaling.py`, shown as
physics: melt a lattice, measure the radial distribution function and
the virial pressure, and decompose the force computation over simulated
MPI ranks (which must agree exactly with the serial engine).

Run:  python examples/lj_fluid_structure.py
"""

import numpy as np

from repro.md import LangevinIntegrator, Simulation
from repro.md.models.lj_fluid import (
    lj_fluid_state,
    lj_fluid_system,
    radial_distribution,
    virial_pressure,
    wrap_positions,
)
from repro.md.parallel import DomainDecomposition
from repro.util.units import KB


def main() -> None:
    sigma, temperature = 0.34, 150.0
    system, box = lj_fluid_system(n_particles=125, density=0.7, sigma=sigma)
    print(
        f"LJ fluid: {system.n_atoms} particles, box {box[0]:.2f} nm, "
        f"rho* = 0.7, T = {temperature} K"
    )

    state = lj_fluid_state(system, box, temperature=temperature, rng=0)
    sim = Simulation(
        system,
        LangevinIntegrator(0.002, temperature, friction=2.0, rng=1),
        state,
        report_interval=200,
    )
    print("equilibrating off the lattice ...")
    sim.run(6000)

    frames = wrap_positions(sim.trajectory.frames[10:], box)
    r, g = radial_distribution(frames, box, n_bins=40)
    peak = r[np.argmax(g)]
    print(f"\ng(r): first peak at r = {peak:.3f} nm "
          f"(2^(1/6) sigma = {2 ** (1 / 6) * sigma:.3f} nm), "
          f"height {g.max():.2f}")
    stride = max(1, len(r) // 12)
    for k in range(0, len(r), stride):
        bar = "#" * int(g[k] * 12)
        print(f"  r={r[k]:.3f}  g={g[k]:5.2f}  {bar}")

    pressure = virial_pressure(system, sim.state.positions, box, temperature)
    ideal = system.n_atoms * KB * temperature / float(np.prod(box))
    regime = (
        "repulsion-dominated at this density"
        if pressure > ideal
        else "attraction-dominated at this density"
    )
    print(f"\nvirial pressure: {pressure:.2f} kJ/mol/nm^3 "
          f"(ideal-gas value {ideal:.2f}; {regime})")

    dd = DomainDecomposition(system, sim.state.positions, n_ranks=4)
    e_dd, f_dd, stats = dd.compute_forces(sim.state.positions)
    e_serial, f_serial = system.energy_forces(sim.state.positions)
    print(
        f"\ndomain decomposition over 4 ranks: energy matches serial to "
        f"{abs(e_dd - e_serial):.2e} kJ/mol; "
        f"{stats.total_bytes_per_step} bytes/step of halo+export traffic"
    )


if __name__ == "__main__":
    main()
