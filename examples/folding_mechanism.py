"""Folding mechanism from the MSM: macrostates, committors, pathways.

The paper notes a converged kinetic model predicts "folding rates,
mechanism, and any kinetic or thermodynamic quantities".  This example
builds an MSM on the Muller-Brown surface (three metastable basins),
lumps microstates into macrostates, computes committors between the
two deep basins and decomposes the reactive flux into its dominant
pathways — showing whether transitions route through the intermediate
basin.

Run:  python examples/folding_mechanism.py
"""

import numpy as np

from repro.md.engine import MDEngine, MDTask
from repro.md.models.muller_brown import MINIMA
from repro.msm import (
    KCentersClustering,
    MarkovStateModel,
    dominant_pathways,
    forward_committor,
    lump_states,
    metastability,
    rate,
)


def main() -> None:
    # --- sample the surface -----------------------------------------------
    engine = MDEngine(segment_steps=5000)
    frames = []
    for seed in range(8):
        result = engine.run(
            MDTask(
                model="muller-brown",
                n_steps=40000,
                report_interval=10,
                timestep=0.01,
                seed=seed,
                task_id=f"t{seed}",
            )
        )
        frames.append(np.asarray(result.frames)[:, 0, :])

    pool = np.concatenate(frames)
    clustering = KCentersClustering(n_clusters=40, seed=0).fit(pool)
    offsets = np.cumsum([0] + [len(f) for f in frames])
    dtrajs = [
        clustering.assignments[a:b] for a, b in zip(offsets[:-1], offsets[1:])
    ]
    msm = MarkovStateModel(lag=10, frame_time=0.1).fit(
        dtrajs, n_states=clustering.n_clusters
    )
    T = msm.transition_matrix
    print(f"MSM: {msm.n_states} microstates at lag {msm.lag_time:.1f} ps")

    # --- macrostates ---------------------------------------------------------
    labels = lump_states(T, 3, seed=0)
    print(f"3 macrostates, metastability {metastability(T, labels):.2f}")
    centers_active = clustering.centers[msm.active_set]
    for macro in range(labels.max() + 1):
        members = centers_active[labels == macro]
        print(
            f"  macrostate {macro}: {len(members)} microstates, "
            f"centroid ({members[:, 0].mean():+.2f}, {members[:, 1].mean():+.2f})"
        )

    # --- committors and pathways between the two deep minima ---------------
    def nearest_state(point):
        return int(np.argmin(np.linalg.norm(centers_active - point, axis=1)))

    a_state = nearest_state(MINIMA[0])  # deep minimum (upper left)
    b_state = nearest_state(MINIMA[1])  # deep minimum (lower right)
    source = np.zeros(msm.n_states, dtype=bool)
    sink = np.zeros(msm.n_states, dtype=bool)
    source[a_state] = True
    sink[b_state] = True

    q = forward_committor(T, source, sink)
    k_ab = rate(T, source, sink, lag_time=msm.lag_time)
    print(f"\nA -> B rate: {k_ab:.4f} / ps")
    print(f"committor range: {q.min():.2f} .. {q.max():.2f}")

    print("\ndominant reactive pathways (microstate sequences):")
    for path, flux in dominant_pathways(T, source, sink, n_paths=3):
        coords = " -> ".join(
            f"({centers_active[s][0]:+.2f},{centers_active[s][1]:+.2f})"
            for s in path
        )
        via = "via intermediate basin" if any(
            np.linalg.norm(centers_active[s] - MINIMA[2]) < 0.35 for s in path
        ) else "direct"
        print(f"  flux {flux:.2e}: {coords}  [{via}]")


if __name__ == "__main__":
    main()
