"""Tests for counting, estimation, connectivity and spectral analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msm.analysis import (
    eigenvalues,
    implied_timescales,
    mean_first_passage_time,
    population_evolution,
    propagate,
    stationary_distribution,
)
from repro.msm.connectivity import (
    largest_connected_set,
    map_dtrajs_to_subset,
    trim_counts,
)
from repro.msm.counts import count_matrix_multi, count_transitions, visited_states
from repro.msm.estimation import (
    detailed_balance_violation,
    estimate_transition_matrix,
    is_stochastic,
    reversible_transition_matrix,
)
from repro.util.errors import ConfigurationError, EstimationError
from repro.util.rng import RandomStream


# ------------------------------------------------------------- counting


def test_count_transitions_sliding():
    d = np.array([0, 0, 1, 1, 0])
    C = count_transitions(d, n_states=2, lag=1)
    expected = np.array([[1, 1], [1, 1]])
    np.testing.assert_array_equal(C, expected)


def test_count_transitions_lag_two():
    d = np.array([0, 1, 0, 1, 0])
    C = count_transitions(d, 2, lag=2)
    np.testing.assert_array_equal(C, [[2, 0], [0, 1]])


def test_count_transitions_disjoint():
    d = np.array([0, 1, 0, 1, 0])
    C = count_transitions(d, 2, lag=2, sliding=False)
    # strided sequence 0,0,0 -> two 0->0 transitions
    np.testing.assert_array_equal(C, [[2, 0], [0, 0]])


def test_count_transitions_short_trajectory():
    C = count_transitions(np.array([0]), 2, lag=1)
    assert C.sum() == 0


def test_count_transitions_validation():
    with pytest.raises(ConfigurationError):
        count_transitions(np.array([0, 1]), 2, lag=0)
    with pytest.raises(ConfigurationError):
        count_transitions(np.array([0, 5]), 2, lag=1)


def test_count_matrix_multi_no_boundary_crossing():
    """Counts never bridge two separate trajectories."""
    a = np.array([0, 0])
    b = np.array([1, 1])
    C = count_matrix_multi([a, b], 2, lag=1)
    assert C[0, 1] == 0 and C[1, 0] == 0
    assert C[0, 0] == 1 and C[1, 1] == 1


def test_count_matrix_multi_empty_rejected():
    with pytest.raises(EstimationError):
        count_matrix_multi([], 2, lag=1)


def test_visited_states():
    mask = visited_states([np.array([0, 2])], 4)
    np.testing.assert_array_equal(mask, [True, False, True, False])


# ------------------------------------------------------------ estimation


def test_mle_row_normalisation():
    C = np.array([[6, 2], [1, 3]])
    T = estimate_transition_matrix(C)
    np.testing.assert_allclose(T, [[0.75, 0.25], [0.25, 0.75]])
    assert is_stochastic(T)


def test_mle_empty_row_becomes_absorbing():
    C = np.array([[0, 0], [1, 1]])
    T = estimate_transition_matrix(C)
    assert T[0, 0] == 1.0
    assert is_stochastic(T)


def test_mle_prior_smooths():
    C = np.array([[10, 0], [0, 10]])
    T = estimate_transition_matrix(C, prior=1.0)
    assert 0 < T[0, 1] < 0.2


def test_mle_rejects_negative_counts():
    with pytest.raises(EstimationError):
        estimate_transition_matrix(np.array([[1, -1], [0, 1]]))


def test_mle_rejects_nonsquare():
    with pytest.raises(EstimationError):
        estimate_transition_matrix(np.ones((2, 3)))


def test_reversible_satisfies_detailed_balance():
    rng = RandomStream(0)
    C = rng.integers(1, 50, size=(5, 5)).astype(float)
    T = reversible_transition_matrix(C)
    assert is_stochastic(T)
    pi = stationary_distribution(T)
    assert detailed_balance_violation(T, pi) < 1e-8


def test_reversible_symmetric_counts_identity():
    """For already-symmetric counts the reversible MLE equals the naive MLE."""
    C = np.array([[4.0, 2.0], [2.0, 6.0]])
    T_rev = reversible_transition_matrix(C)
    T_mle = estimate_transition_matrix(C)
    np.testing.assert_allclose(T_rev, T_mle, atol=1e-8)


def test_reversible_rejects_empty_state():
    C = np.array([[1.0, 0.0], [0.0, 0.0]])
    with pytest.raises(EstimationError):
        reversible_transition_matrix(C)


def test_is_stochastic_rejects_bad():
    assert not is_stochastic(np.array([[0.5, 0.4], [0.2, 0.8]]))
    assert not is_stochastic(np.array([[1.2, -0.2], [0.0, 1.0]]))


# -------------------------------------------------------------- analysis


def test_stationary_distribution_two_state():
    T = np.array([[0.9, 0.1], [0.2, 0.8]])
    pi = stationary_distribution(T)
    np.testing.assert_allclose(pi, [2 / 3, 1 / 3], atol=1e-10)


def test_stationary_distribution_is_fixed_point():
    rng = RandomStream(1)
    C = rng.integers(1, 30, size=(6, 6)).astype(float)
    T = estimate_transition_matrix(C)
    pi = stationary_distribution(T)
    np.testing.assert_allclose(pi @ T, pi, atol=1e-10)


def test_stationary_rejects_nonstochastic():
    with pytest.raises(EstimationError):
        stationary_distribution(np.array([[0.5, 0.4], [0.5, 0.5]]))


def test_eigenvalues_sorted_leading_one():
    T = np.array([[0.9, 0.1], [0.2, 0.8]])
    vals = eigenvalues(T)
    assert vals[0] == pytest.approx(1.0)
    assert abs(vals[1]) <= 1.0


def test_implied_timescales_two_state_analytic():
    """t = -lag / ln(lambda_2), lambda_2 = 1 - p - q for a 2-state chain."""
    p, q = 0.1, 0.2
    T = np.array([[1 - p, p], [q, 1 - q]])
    ts = implied_timescales(T, lag_time=2.0, k=1)
    assert ts[0] == pytest.approx(-2.0 / np.log(1 - p - q))


def test_implied_timescales_invalid_lag():
    with pytest.raises(EstimationError):
        implied_timescales(np.eye(2), lag_time=0.0)


def test_propagate_conserves_probability():
    T = np.array([[0.7, 0.3], [0.4, 0.6]])
    traj = propagate(np.array([1.0, 0.0]), T, 20)
    np.testing.assert_allclose(traj.sum(axis=1), 1.0, atol=1e-12)
    # converges to stationary
    pi = stationary_distribution(T)
    np.testing.assert_allclose(traj[-1], pi, atol=1e-3)


def test_propagate_validation():
    T = np.array([[0.7, 0.3], [0.4, 0.6]])
    with pytest.raises(EstimationError):
        propagate(np.array([0.5, 0.6]), T, 5)  # not normalised
    with pytest.raises(EstimationError):
        propagate(np.array([1.0, 0.0, 0.0]), T, 5)  # wrong shape
    with pytest.raises(EstimationError):
        propagate(np.array([1.0, 0.0]), T, -1)


def test_population_evolution_masked():
    T = np.array([[0.7, 0.3], [0.4, 0.6]])
    times, curve = population_evolution(
        np.array([1.0, 0.0]), T, 10, lag_time=5.0, member_mask=np.array([False, True])
    )
    assert times[1] == 5.0
    assert curve[0] == 0.0
    assert curve[-1] == pytest.approx(stationary_distribution(T)[1], abs=1e-2)


def test_mfpt_two_state_analytic():
    """MFPT from 0 into {1} is lag / p for a 2-state chain."""
    p = 0.25
    T = np.array([[1 - p, p], [0.5, 0.5]])
    m = mean_first_passage_time(T, np.array([False, True]), lag_time=2.0)
    assert m[1] == 0.0
    assert m[0] == pytest.approx(2.0 / p)


def test_mfpt_validation():
    T = np.eye(2)
    with pytest.raises(EstimationError):
        mean_first_passage_time(T, np.array([False, False]))


# ------------------------------------------------------------ connectivity


def test_largest_connected_set_basic():
    # states 0-1 strongly connected; 2 is a sink only
    C = np.array([[1, 5, 1], [4, 1, 0], [0, 0, 0]])
    kept = largest_connected_set(C)
    np.testing.assert_array_equal(kept, [0, 1])


def test_largest_connected_set_prefers_heavy_component():
    # two disjoint 2-cycles; the second has more counts
    C = np.zeros((4, 4))
    C[0, 1] = C[1, 0] = 1
    C[2, 3] = C[3, 2] = 100
    np.testing.assert_array_equal(largest_connected_set(C), [2, 3])


def test_trim_counts_shapes():
    C = np.array([[1, 5, 1], [4, 1, 0], [0, 0, 0]])
    trimmed, kept = trim_counts(C)
    assert trimmed.shape == (2, 2)
    np.testing.assert_array_equal(trimmed, C[:2, :2])


def test_map_dtrajs_to_subset():
    mapped = map_dtrajs_to_subset([np.array([0, 2, 1])], kept=np.array([0, 2]), n_states=3)
    np.testing.assert_array_equal(mapped[0], [0, 1, -1])


def test_connected_set_rejects_nonsquare():
    with pytest.raises(EstimationError):
        largest_connected_set(np.ones((2, 3)))


# ------------------------------------------------------------ properties


@settings(max_examples=40)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_mle_always_stochastic(n, seed):
    rng = RandomStream(seed)
    C = rng.integers(0, 20, size=(n, n)).astype(float)
    T = estimate_transition_matrix(C)
    assert is_stochastic(T)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_reversible_detailed_balance(n, seed):
    rng = RandomStream(seed)
    C = rng.integers(1, 30, size=(n, n)).astype(float)
    T = reversible_transition_matrix(C)
    assert is_stochastic(T)
    pi = stationary_distribution(T)
    assert detailed_balance_violation(T, pi) < 1e-7


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=60),
    st.integers(min_value=1, max_value=4),
)
def test_property_counts_total(dtraj, lag):
    """Sliding-window counting yields exactly len - lag transitions."""
    d = np.asarray(dtraj)
    C = count_transitions(d, 5, lag)
    assert C.sum() == max(len(d) - lag, 0)
