"""Worker health scoring, quarantine and the flapping-worker scenario."""

import pytest

from repro.core.events import EventKind
from repro.server.health import (
    HealthPolicy,
    HealthRegistry,
    HealthState,
)
from repro.testing import Invariants, run_swarm_with_flapping_worker
from repro.util.errors import ConfigurationError


# -- registry unit behavior --------------------------------------------------


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        HealthPolicy(alpha=0.0)
    with pytest.raises(ConfigurationError):
        HealthPolicy(quarantine_threshold=0.7, probation_threshold=0.6)
    with pytest.raises(ConfigurationError):
        HealthPolicy(quarantine_seconds=0.0)
    with pytest.raises(ConfigurationError):
        HealthPolicy(probation_commands=0)


def test_unseen_worker_is_healthy_and_uncapped():
    registry = HealthRegistry()
    assert registry.score("ghost") == 1.0
    assert registry.admit("ghost", now=0.0) == (True, None, None)


def test_failures_walk_down_through_probation_to_quarantine():
    registry = HealthRegistry(HealthPolicy(alpha=0.4))
    # 1 -> 0.6: below probation bar (0.65)
    assert registry.observe_failure("w", "crash", now=0.0) == "probation"
    allowed, cap, transition = registry.admit("w", now=0.0)
    assert (allowed, transition) == (True, None)
    assert cap == registry.policy.probation_commands
    # 0.6 -> 0.36 -> 0.216: through the quarantine bar (0.3)
    assert registry.observe_failure("w", "flap", now=10.0) is None
    assert registry.observe_failure("w", "crash", now=20.0) == "quarantined"
    assert registry.is_quarantined("w", now=21.0)
    assert registry.admit("w", now=21.0) == (False, None, None)
    assert registry.quarantines == 1


def test_single_death_and_revival_does_not_quarantine():
    # the existing chaos tests revive workers once; that must stay
    # below the quarantine bar (1 -> 0.6 -> 0.36 > 0.3)
    registry = HealthRegistry()
    registry.observe_failure("w", "crash", now=0.0)
    assert registry.observe_failure("w", "flap", now=1.0) is None
    assert not registry.is_quarantined("w", now=2.0)


def test_speculation_loss_is_a_soft_failure():
    registry = HealthRegistry()
    registry.observe_failure("w", "speculation_loss", now=0.0)
    # 1 -> 0.7: the work finished, just slower than modelled
    assert registry.score("w") == pytest.approx(0.7)


def test_readmission_floors_score_and_counts():
    policy = HealthPolicy(alpha=0.5, quarantine_seconds=100.0)
    registry = HealthRegistry(policy)
    registry.observe_failure("w", "crash", now=0.0)     # 0.5
    registry.observe_failure("w", "crash", now=1.0)     # 0.25 -> quarantine
    assert registry.admit("w", now=50.0)[0] is False
    allowed, cap, transition = registry.admit("w", now=101.0)
    assert (allowed, cap, transition) == (True, 1, "readmitted")
    record = registry.record_for("w")
    assert record.state is HealthState.PROBATION
    assert record.score == pytest.approx(policy.quarantine_threshold)
    assert registry.readmissions == 1
    # one success lifts 0.3 -> 0.65, back over the probation bar
    assert registry.observe_success("w", now=102.0) == "recovered"
    assert record.quarantine_count == 0  # a clean slate


def test_repeat_quarantine_cooldown_escalates():
    policy = HealthPolicy(
        alpha=0.5, quarantine_seconds=100.0, quarantine_backoff=2.0
    )
    registry = HealthRegistry(policy)
    for _ in range(2):
        registry.observe_failure("w", "crash", now=0.0)
    first_until = registry.record_for("w").quarantined_until
    assert first_until == pytest.approx(100.0)
    registry.admit("w", now=150.0)  # readmitted (probation, score 0.3)
    registry.observe_failure("w", "crash", now=160.0)  # 0.15 -> quarantine
    assert registry.record_for("w").quarantined_until == pytest.approx(
        160.0 + 200.0
    )


# -- the canned flapping scenario -------------------------------------------


def test_flapping_worker_is_quarantined_then_readmitted():
    out = run_swarm_with_flapping_worker(seed=0)
    runner, server = out.runner, out.server
    events = runner.events

    # the flap was seen as a death and a revival...
    deaths = events.filter(kind=EventKind.WORKER_DEAD)
    assert any(e.details.get("worker") == "w0" for e in deaths)
    revivals = events.filter(kind=EventKind.WORKER_REVIVED)
    assert any(e.details.get("worker") == "w0" for e in revivals)

    # ...which quarantined the worker and denied it workload
    quarantines = events.filter(kind=EventKind.WORKER_QUARANTINED)
    assert [e.details.get("worker") for e in quarantines] == ["w0"]
    assert server.workloads_denied > 0
    assert server.health.quarantines == 1

    # the cooldown expired and the worker came back on probation
    readmissions = events.filter(kind=EventKind.WORKER_READMITTED)
    assert [e.details.get("worker") for e in readmissions] == ["w0"]
    assert readmissions[0].time > quarantines[0].time
    assert server.health.readmissions == 1

    # the project still completed, and every liveness invariant holds
    assert len(out.controller.finished) == 10
    Invariants(runner).assert_ok()


def test_flapping_worker_receives_no_workload_while_quarantined():
    out = run_swarm_with_flapping_worker(seed=0)
    events = out.runner.events
    quarantined_at = events.filter(kind=EventKind.WORKER_QUARANTINED)[0].time
    readmitted_at = events.filter(kind=EventKind.WORKER_READMITTED)[0].time
    for record in events.filter(kind=EventKind.WORKLOAD_ASSIGNED):
        if record.details.get("worker") != "w0":
            continue
        assert not (quarantined_at <= record.time < readmitted_at)


def test_flapping_scenario_is_deterministic():
    a = run_swarm_with_flapping_worker(seed=3)
    b = run_swarm_with_flapping_worker(seed=3)
    assert a.transcript == b.transcript
