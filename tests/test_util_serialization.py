"""Tests for the wire format, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import CommunicationError
from repro.util.serialization import decode_message, encode_message, message_size


def test_round_trip_scalars():
    payload = {"a": 1, "b": 2.5, "c": "hello", "d": True, "e": None}
    assert decode_message(encode_message(payload)) == payload


def test_round_trip_nested():
    payload = {"outer": {"inner": [1, [2, {"deep": "x"}]]}}
    assert decode_message(encode_message(payload)) == payload


def test_round_trip_float_array():
    arr = np.linspace(0, 1, 17).reshape(1, 17)
    out = decode_message(encode_message({"x": arr}))["x"]
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype


def test_round_trip_3d_array():
    arr = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
    out = decode_message(encode_message(arr))
    np.testing.assert_array_equal(out, arr)
    assert out.shape == (2, 3, 4)


def test_round_trip_noncontiguous_array():
    arr = np.arange(20, dtype=np.float64).reshape(4, 5).T
    out = decode_message(encode_message(arr))
    np.testing.assert_array_equal(out, arr)


def test_round_trip_numpy_scalar():
    out = decode_message(encode_message(np.float32(1.5)))
    assert out == np.float32(1.5)
    assert out.dtype == np.float32


def test_tuple_becomes_list():
    assert decode_message(encode_message((1, 2))) == [1, 2]


def test_decoded_array_is_writable():
    out = decode_message(encode_message(np.zeros(3)))
    out[0] = 1.0  # np.frombuffer gives read-only views; we require a copy
    assert out[0] == 1.0


def test_rejects_arbitrary_objects():
    class Foo:
        pass

    with pytest.raises(CommunicationError):
        encode_message({"bad": Foo()})


def test_rejects_non_string_keys():
    with pytest.raises(CommunicationError):
        encode_message({1: "x"})


def test_malformed_blob_raises():
    with pytest.raises(CommunicationError):
        decode_message(b"\xff\xfenot json")


def test_message_size_positive():
    assert message_size({"x": 1}) > 0


def test_message_size_grows_with_payload():
    small = message_size({"x": np.zeros(10)})
    big = message_size({"x": np.zeros(1000)})
    assert big > small


_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)


@settings(max_examples=50)
@given(
    st.recursive(
        _json_scalars,
        lambda kids: st.one_of(
            st.lists(kids, max_size=4),
            st.dictionaries(st.text(max_size=8), kids, max_size=4),
        ),
        max_leaves=20,
    )
)
def test_round_trip_property_json_like(payload):
    assert decode_message(encode_message(payload)) == payload


@settings(max_examples=30)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=64
    ),
    st.sampled_from([np.float64, np.float32, np.int32, np.int64]),
)
def test_round_trip_property_arrays(values, dtype):
    arr = np.asarray(values, dtype=np.float64)
    if np.issubdtype(dtype, np.integer):
        # stay inside both the dtype's range and the exactly-
        # representable float64 integers
        info = np.iinfo(dtype)
        lo = max(float(info.min), -(2.0**53))
        hi = min(float(info.max) / 2.0, 2.0**53)
        arr = np.clip(arr, lo, hi)
    elif dtype == np.float32:
        finfo = np.finfo(np.float32)
        arr = np.clip(arr, finfo.min, finfo.max)
    arr = arr.astype(dtype)
    out = decode_message(encode_message({"a": arr}))["a"]
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype
