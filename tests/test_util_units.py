"""Tests for repro.util.units."""

import math

import pytest

from repro.util import units


def test_kb_matches_gromacs_value():
    assert units.KB == pytest.approx(0.008314462, rel=1e-6)


def test_kelvin_to_kt_at_300k():
    # kT at 300 K is about 2.494 kJ/mol — the scale every MD person knows.
    assert units.kelvin_to_kt(300.0) == pytest.approx(2.494, rel=1e-3)


def test_kelvin_to_kt_zero():
    assert units.kelvin_to_kt(0.0) == 0.0


def test_kelvin_to_kt_rejects_negative():
    with pytest.raises(ValueError):
        units.kelvin_to_kt(-1.0)


def test_angstrom_round_trip():
    assert units.to_angstrom(units.angstrom(3.8)) == pytest.approx(3.8)


def test_angstrom_to_nm():
    assert units.angstrom(10.0) == pytest.approx(1.0)


def test_quantity_str():
    q = units.Quantity(2.5, "ns")
    assert str(q) == "2.5 ns"


def test_quantity_scaled():
    q = units.Quantity(2.0, "MB/s").scaled(3.0)
    assert q.value == pytest.approx(6.0)
    assert q.unit == "MB/s"


def test_quantity_frozen():
    q = units.Quantity(1.0, "h")
    with pytest.raises(Exception):
        q.value = 2.0  # type: ignore[misc]


def test_time_constants_consistent():
    assert units.PS_PER_NS * units.NS_PER_US == pytest.approx(1e6)
    assert math.isclose(units.SECONDS_PER_HOUR, 3600.0)
