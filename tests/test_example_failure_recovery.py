"""Integration smoke test for examples/failure_recovery.py.

Runs the shipped example under its fixed seed and asserts the paper's
recovery story end to end: the project completes despite the injected
worker crash and link partition, the checkpoint handoff actually
shortened the resumed command, and every recovery invariant is green.
"""

import os
import sys

import pytest

from repro.core.project import ProjectStatus
from repro.testing import Invariants

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


@pytest.fixture(scope="module")
def scenario():
    sys.path.insert(0, EXAMPLES_DIR)
    try:
        import failure_recovery
    finally:
        sys.path.remove(EXAMPLES_DIR)
    return failure_recovery.build_and_run(seed=0)


def test_project_completes_despite_failures(scenario):
    project = scenario.runner._projects["swarm"]
    assert project.status is ProjectStatus.COMPLETE
    assert len(scenario.controller.finished) == 3


def test_crash_and_requeue_happened(scenario):
    flaky = scenario.workers[0]
    assert flaky.crashed
    assert scenario.server.requeued_after_failure >= 1


def test_checkpoint_handoff_shortened_resumed_command(scenario):
    finished = dict(scenario.controller.finished)
    resumed = [steps for steps in finished.values() if steps < 5000]
    assert resumed, "the requeued command restarted from scratch"
    # the dead worker got through 2 x 1000-step segments, so the
    # finisher only had 3000 steps left
    assert min(resumed) == 3000


def test_partition_forced_retries(scenario):
    assert scenario.network.messages_dropped > 0
    assert scenario.network.retries_total > 0


def test_invariants_green(scenario):
    Invariants(scenario.runner).assert_ok()


def test_example_main_runs_and_reports(capsys):
    sys.path.insert(0, EXAMPLES_DIR)
    try:
        import failure_recovery
    finally:
        sys.path.remove(EXAMPLES_DIR)
    failure_recovery.main()
    out = capsys.readouterr().out
    assert "resumed from a dead worker's checkpoint" in out
    assert "recovery invariants: all green" in out
