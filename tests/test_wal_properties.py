"""Seeded property tests for the write-ahead journal (crash shapes).

The WAL's crash-consistency contract, exercised byte by byte:

* **Torn tail** — a crash mid-append leaves the final record cut
  short at an arbitrary byte.  Reopening must recover every earlier
  record, repair the file and accept fresh appends, for *every*
  possible cut offset of the final record.
* **Mid-log corruption** is a different animal: flipped bits in a
  non-final segment mean the disk is lying, and recovery must refuse
  (raise ``JournalCorruptionError``) rather than silently drop data.
* **Segment rotation / compaction** never reuses segment numbers, and
  snapshot + remaining log always recovers to exactly the live
  mirrored state.

Pure stdlib ``random.Random`` with fixed seeds, so failures replay.
"""

import random

import pytest

from repro.core.command import Command
from repro.server.wal import (
    SEGMENT_MAGIC,
    JournalState,
    ProjectJournal,
    WriteAheadLog,
)
from repro.util.errors import ConfigurationError, JournalCorruptionError

HEADER_SIZE = 8  # length (4B) + crc32 (4B), see wal._RECORD_HEADER


def command(k):
    return Command(f"c{k}", "p", "mdrun", {"k": k})


# ------------------------------------------------------------- torn tails


@pytest.mark.parametrize("seed", range(3))
def test_torn_tail_at_every_byte_recovers_last_full_record(tmp_path, seed):
    """Truncate the final record at *every* byte offset: recovery must
    land on the last fully written record and stay appendable."""
    rng = random.Random(seed)
    log = WriteAheadLog(tmp_path / "src", fsync=False)
    sizes = []
    for k in range(6):
        log.append({"type": "op", "k": k, "pad": "x" * rng.randint(0, 30)})
        sizes.append(log.segments()[-1].stat().st_size)
    log.close()
    segment = log.segments()[-1]
    pristine = segment.read_bytes()
    assert sizes[-1] == len(pristine)

    tail_start = sizes[-2]  # first byte of the final record's header
    for cut in range(tail_start, len(pristine)):
        scratch = tmp_path / f"cut{cut}"
        scratch.mkdir()
        (scratch / segment.name).write_bytes(pristine[:cut])
        reopened = WriteAheadLog(scratch, fsync=False)
        assert [r["k"] for r in reopened.records()] == list(range(5))
        assert reopened.next_seq == 5
        # the torn bytes are physically gone; appends continue the log
        reopened.append({"type": "op", "k": 99})
        assert [r["k"] for r in reopened.records()] == [0, 1, 2, 3, 4, 99]
        reopened.close()

    # sanity: the untruncated log still holds all six
    assert [
        r["k"] for r in WriteAheadLog(tmp_path / "src", fsync=False).records()
    ] == list(range(6))


@pytest.mark.parametrize("seed", range(5))
def test_bit_flip_in_final_record_payload_truncates_it(tmp_path, seed):
    rng = random.Random(seed)
    log = WriteAheadLog(tmp_path, fsync=False)
    sizes = []
    for k in range(4):
        log.append({"type": "op", "k": k, "pad": "y" * 20})
        sizes.append(log.segments()[-1].stat().st_size)
    log.close()
    segment = log.segments()[-1]
    blob = bytearray(segment.read_bytes())
    # flip one payload byte of the final record (skip its header so the
    # corruption is a CRC mismatch, not a bogus length)
    victim = rng.randrange(sizes[-2] + HEADER_SIZE, sizes[-1])
    blob[victim] ^= 0xFF
    segment.write_bytes(bytes(blob))
    reopened = WriteAheadLog(tmp_path, fsync=False)
    assert [r["k"] for r in reopened.records()] == [0, 1, 2]
    assert reopened.next_seq == 3
    reopened.close()


def test_headerless_trailing_segment_is_dropped(tmp_path):
    log = WriteAheadLog(tmp_path, fsync=False)
    log.append({"type": "op", "k": 0})
    log.close()
    # a crash after creating the next segment but before its magic
    (tmp_path / "wal-00000001.log").write_bytes(SEGMENT_MAGIC[:3])
    reopened = WriteAheadLog(tmp_path, fsync=False)
    assert [r["k"] for r in reopened.records()] == [0]
    assert len(reopened.segments()) == 1
    reopened.close()


# ----------------------------------------------------- mid-log corruption


def _multi_segment_log(tmp_path, n=30):
    log = WriteAheadLog(tmp_path, segment_bytes=256, fsync=False)
    for k in range(n):
        log.append({"type": "op", "k": k, "pad": "z" * 24})
    log.close()
    assert len(log.segments()) >= 3
    return log


def test_corrupt_record_in_non_final_segment_refuses_to_load(tmp_path):
    log = _multi_segment_log(tmp_path)
    first = log.segments()[0]
    blob = bytearray(first.read_bytes())
    blob[len(SEGMENT_MAGIC) + HEADER_SIZE + 2] ^= 0xFF
    first.write_bytes(bytes(blob))
    with pytest.raises(JournalCorruptionError):
        WriteAheadLog(tmp_path, segment_bytes=256, fsync=False)


def test_bad_magic_in_non_final_segment_refuses_to_load(tmp_path):
    log = _multi_segment_log(tmp_path)
    first = log.segments()[0]
    blob = bytearray(first.read_bytes())
    blob[0] ^= 0xFF
    first.write_bytes(bytes(blob))
    with pytest.raises(JournalCorruptionError):
        WriteAheadLog(tmp_path, segment_bytes=256, fsync=False)


# ------------------------------------------------- rotation and compaction


def test_rotation_preserves_order_and_numbering_is_monotone(tmp_path):
    log = _multi_segment_log(tmp_path)
    reopened = WriteAheadLog(tmp_path, segment_bytes=256, fsync=False)
    assert [r["k"] for r in reopened.records()] == list(range(30))
    old_indices = [
        WriteAheadLog._segment_index(p) for p in reopened.segments()
    ]
    assert old_indices == sorted(old_indices)
    reopened.truncate_all()
    assert reopened.segments() == []
    reopened.append({"type": "op", "k": 100})
    new_index = WriteAheadLog._segment_index(reopened.segments()[0])
    assert new_index > max(old_indices)  # compaction never reuses numbers
    reopened.close()


def test_segment_bytes_must_fit_a_header(tmp_path):
    with pytest.raises(ConfigurationError):
        WriteAheadLog(tmp_path, segment_bytes=4)


# ------------------------------------------------------- project journal


@pytest.mark.parametrize("seed", range(4))
def test_recover_always_equals_live_mirror(tmp_path, seed):
    """Whatever the snapshot cadence, what a restart reads from disk is
    exactly the state the writer was mirroring in memory."""
    rng = random.Random(seed)
    journal = ProjectJournal(
        tmp_path,
        segment_bytes=1 << 12,
        snapshot_every=rng.choice([1, 2, 3, None]),
        fsync=False,
    )
    for k in range(10):
        cmd = command(k)
        journal.record_issued([cmd])
        worker = f"w{k % 2}"
        journal.record_assigned(worker, [cmd.command_id])
        if rng.random() < 0.5:
            journal.record_checkpoint(
                worker, cmd.command_id, {"step": k * 100}
            )
        if rng.random() < 0.3:
            journal.record_requeued(worker, [cmd.command_id])
            journal.record_assigned(worker, [cmd.command_id])
        journal.record_result(cmd, {"value": k})
    recovered = journal.recover()
    live = journal.state
    assert [c.command_id for c, _ in recovered.results] == [
        c.command_id for c, _ in live.results
    ]
    assert [r for _, r in recovered.results] == [r for _, r in live.results]
    assert recovered.completed_ids == live.completed_ids
    assert recovered.issued_ids == live.issued_ids
    assert recovered.checkpoints == live.checkpoints
    assert recovered.leases == live.leases
    assert recovered.requeues == live.requeues
    journal.close()


def test_sequence_continues_past_snapshot_after_reopen(tmp_path):
    """Post-compaction appends must sequence past the snapshot, or a
    later recovery would skip them as already-covered."""
    journal = ProjectJournal(tmp_path, snapshot_every=2, fsync=False)
    journal.record_result(command(0), {"k": 0})
    journal.record_result(command(1), {"k": 1})
    assert journal.snapshots_written == 1
    assert journal.wal.segments() == []  # compacted away
    journal.close()

    reopened = ProjectJournal(tmp_path, snapshot_every=2, fsync=False)
    reopened.record_result(command(9), {"k": 9})
    reopened.close()

    final = ProjectJournal(tmp_path, snapshot_every=2, fsync=False)
    assert [c.command_id for c, _ in final.recover().results] == [
        "c0", "c1", "c9",
    ]
    final.close()


def test_torn_tail_behind_a_snapshot_loses_only_the_torn_record(tmp_path):
    journal = ProjectJournal(tmp_path, snapshot_every=2, fsync=False)
    for k in range(3):  # snapshot covers c0+c1; c2 lives in the log
        journal.record_result(command(k), {"k": k})
    journal.close()
    segments = sorted((tmp_path / "wal").glob("wal-*.log"))
    assert segments
    blob = segments[-1].read_bytes()
    segments[-1].write_bytes(blob[: len(blob) - 3])
    recovered = ProjectJournal(
        tmp_path, snapshot_every=2, fsync=False
    ).recover()
    assert [c.command_id for c, _ in recovered.results] == ["c0", "c1"]


def test_interrupted_snapshot_temp_file_is_swept(tmp_path):
    journal = ProjectJournal(tmp_path, snapshot_every=None, fsync=False)
    journal.record_result(command(0), {"k": 0})
    journal.close()
    (tmp_path / ".snapshot-00000007.tmp").write_bytes(b"half-written junk")
    reopened = ProjectJournal(tmp_path, snapshot_every=None, fsync=False)
    assert not list(tmp_path.glob(".*.tmp"))
    assert len(reopened.recover().results) == 1
    reopened.close()


def test_duplicate_result_records_apply_idempotently(tmp_path):
    journal = ProjectJournal(tmp_path, snapshot_every=None, fsync=False)
    journal.record_result(command(0), {"k": 0})
    journal.record_result(command(0), {"k": 0})  # retried transition
    assert journal.results_applied == 1
    assert len(journal.recover().results) == 1
    journal.close()


def test_journal_state_payload_roundtrip():
    state = JournalState()
    state.apply({"type": "issued", "command_ids": ["c0", "c1"]})
    state.apply({"type": "assigned", "worker": "w0", "command_ids": ["c0"]})
    state.apply(
        {
            "type": "checkpoint",
            "worker": "w0",
            "command": "c0",
            "checkpoint": {"step": 100},
        }
    )
    state.apply(
        {
            "type": "result",
            "command": command(1).to_payload(),
            "result": {"k": 1},
        }
    )
    clone = JournalState.from_payload(state.to_payload())
    assert clone.completed_ids == state.completed_ids
    assert clone.issued_ids == state.issued_ids
    assert clone.checkpoints == state.checkpoints
    assert clone.leases == state.leases
    assert clone.lease_holder("c0") == "w0"


def test_unknown_record_type_is_corruption():
    with pytest.raises(JournalCorruptionError):
        JournalState().apply({"type": "mystery"})
