"""Tests for the periodic LJ fluid."""

import numpy as np
import pytest

from repro.md import LangevinIntegrator, Simulation, VelocityVerletIntegrator
from repro.md.models.lj_fluid import (
    lattice_positions,
    lj_fluid_state,
    lj_fluid_system,
    radial_distribution,
    wrap_positions,
)
from repro.util.errors import ConfigurationError


def test_lattice_fills_box():
    pos = lattice_positions(27, 3.0)
    assert pos.shape == (27, 3)
    assert pos.min() > 0 and pos.max() < 3.0


def test_lattice_validation():
    with pytest.raises(ConfigurationError):
        lattice_positions(0, 1.0)


def test_fluid_density_sets_box():
    system, box = lj_fluid_system(n_particles=64, density=0.5, sigma=0.34)
    volume = float(np.prod(box))
    rho_star = 64 * 0.34**3 / volume
    assert rho_star == pytest.approx(0.5, rel=1e-10)


def test_fluid_validation():
    with pytest.raises(ConfigurationError):
        lj_fluid_system(n_particles=1)
    with pytest.raises(ConfigurationError):
        lj_fluid_system(density=-1.0)


def test_minimum_image_energy_translation_invariant():
    """Shifting all particles across the boundary leaves E unchanged."""
    system, box = lj_fluid_system(n_particles=27, density=0.4)
    state = lj_fluid_state(system, box, rng=0)
    e0 = system.potential_energy(state.positions)
    shifted = state.positions + 0.37 * box  # crosses the boundary
    e1 = system.potential_energy(shifted)
    assert e1 == pytest.approx(e0, rel=1e-10)


def test_nve_energy_conservation_with_pbc():
    system, box = lj_fluid_system(n_particles=27, density=0.3)
    state = lj_fluid_state(system, box, temperature=120.0, rng=1)
    sim = Simulation(system, VelocityVerletIntegrator(0.002), state)
    e0 = sim.total_energy()
    sim.run(2000)
    assert sim.total_energy() == pytest.approx(e0, rel=2e-3)


def test_fluid_melts_from_lattice():
    """Langevin dynamics destroys the initial lattice order."""
    system, box = lj_fluid_system(n_particles=64, density=0.5)
    state = lj_fluid_state(system, box, temperature=300.0, rng=2)
    start = state.positions.copy()
    sim = Simulation(
        system, LangevinIntegrator(0.002, 300.0, friction=2.0, rng=3), state
    )
    sim.run(3000)
    displacement = np.linalg.norm(sim.state.positions - start, axis=1)
    assert displacement.mean() > 0.1  # particles diffused off their sites


def test_wrap_positions_in_box():
    box = np.array([2.0, 2.0, 2.0])
    pos = np.array([[2.5, -0.5, 1.0]])
    wrapped = wrap_positions(pos, box)
    np.testing.assert_allclose(wrapped, [[0.5, 1.5, 1.0]])


def test_rdf_ideal_gas_flat():
    """Random (ideal) configurations give g(r) ~ 1."""
    rng = np.random.default_rng(0)
    box = np.full(3, 4.0)
    frames = rng.random((8, 200, 3)) * box
    r, g = radial_distribution(frames, box, n_bins=20)
    # away from r=0 the profile is flat around 1
    assert np.abs(g[5:] - 1.0).mean() < 0.15


def test_rdf_liquid_first_peak():
    """An equilibrated LJ fluid shows the contact peak near 1.1 sigma."""
    sigma = 0.34
    system, box = lj_fluid_system(n_particles=125, density=0.7, sigma=sigma)
    state = lj_fluid_state(system, box, temperature=150.0, rng=4)
    sim = Simulation(
        system,
        LangevinIntegrator(0.002, 150.0, friction=2.0, rng=5),
        state,
        report_interval=200,
    )
    sim.run(4000)
    frames = wrap_positions(sim.trajectory.frames[5:], box)
    r, g = radial_distribution(frames, box, n_bins=40)
    peak_r = r[np.argmax(g)]
    assert peak_r == pytest.approx(2 ** (1 / 6) * sigma, rel=0.15)
    assert g.max() > 1.5  # clear liquid structure


def test_rdf_validation():
    with pytest.raises(ConfigurationError):
        radial_distribution(np.zeros((1, 5, 3)), np.full(3, 2.0), n_bins=1)


def test_virial_pressure_ideal_gas_limit():
    """At very low density the pressure approaches rho kT."""
    from repro.md.models.lj_fluid import virial_pressure
    from repro.util.units import KB

    system, box = lj_fluid_system(n_particles=27, density=0.01)
    state = lj_fluid_state(system, box, temperature=300.0, rng=7)
    p = virial_pressure(system, state.positions, box, 300.0)
    ideal = 27 * KB * 300.0 / float(np.prod(box))
    assert p == pytest.approx(ideal, rel=0.1)


def test_virial_pressure_attraction_lowers_pressure():
    """In the attractive regime P falls below the ideal value."""
    from repro.md.models.lj_fluid import virial_pressure
    from repro.md import LangevinIntegrator, Simulation
    from repro.util.units import KB

    system, box = lj_fluid_system(n_particles=64, density=0.5, epsilon=2.0)
    state = lj_fluid_state(system, box, temperature=120.0, rng=8)
    sim = Simulation(
        system, LangevinIntegrator(0.002, 120.0, friction=2.0, rng=9), state
    )
    sim.run(2000)  # equilibrate off the lattice
    p = virial_pressure(system, sim.state.positions, box, 120.0)
    ideal = 64 * KB * 120.0 / float(np.prod(box))
    assert p < ideal
