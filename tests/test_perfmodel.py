"""Tests for the performance model and scheduler simulation."""

import numpy as np
import pytest

from repro.perfmodel import (
    MDPerformanceModel,
    ProjectSpec,
    VILLIN_MODEL,
    analytic_project_time,
    ensemble_bandwidth,
    parallelism_hierarchy,
    simulate_project,
    sweep_total_cores,
)
from repro.perfmodel.bandwidth import single_simulation_mpi_bandwidth
from repro.perfmodel.scheduler_sim import (
    analytic_result,
    reference_time_single_core,
)
from repro.util.errors import ConfigurationError


# ----------------------------------------------------------- MD perf model


def test_efficiency_one_core_is_unity():
    assert VILLIN_MODEL.efficiency(1) == pytest.approx(1.0)


def test_efficiency_monotonically_decreasing():
    effs = [VILLIN_MODEL.efficiency(k) for k in (1, 12, 24, 48, 96, 192)]
    assert all(a > b for a, b in zip(effs, effs[1:]))


def test_rate_monotonically_increasing_below_wall():
    rates = [VILLIN_MODEL.rate(k) for k in (1, 12, 24, 48, 96)]
    assert all(a < b for a, b in zip(rates, rates[1:]))


def test_rate_saturates_at_max_cores():
    assert VILLIN_MODEL.rate(VILLIN_MODEL.max_cores) == VILLIN_MODEL.rate(
        VILLIN_MODEL.max_cores * 10
    )


def test_villin_calibration_anchors():
    """The paper's efficiency anchors for 24- and 96-core simulations."""
    assert VILLIN_MODEL.efficiency(24) == pytest.approx(0.68, abs=0.03)
    assert VILLIN_MODEL.efficiency(96) == pytest.approx(0.53, abs=0.03)


def test_hours_for():
    model = MDPerformanceModel(rate_1core=1.0)  # 1 ns/hour
    assert model.hours_for(10.0, 1) == pytest.approx(10.0)


def test_model_validation():
    with pytest.raises(ConfigurationError):
        MDPerformanceModel(rate_1core=0.0)
    with pytest.raises(ConfigurationError):
        VILLIN_MODEL.rate(0)
    with pytest.raises(ConfigurationError):
        VILLIN_MODEL.hours_for(-1.0, 4)


def test_rescaled_model_bigger_system_slower_per_core():
    big = VILLIN_MODEL.rescaled(10 * VILLIN_MODEL.n_atoms)
    assert big.rate_1core == pytest.approx(VILLIN_MODEL.rate_1core / 10)
    # but it scales to proportionally more cores
    assert big.max_cores == 10 * VILLIN_MODEL.max_cores
    assert big.efficiency(96) > VILLIN_MODEL.efficiency(96)


def test_rescaled_validation():
    with pytest.raises(ConfigurationError):
        VILLIN_MODEL.rescaled(0)


# ------------------------------------------------------------- spec/analytic


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ProjectSpec(total_cores=10, cores_per_sim=20)
    with pytest.raises(ConfigurationError):
        ProjectSpec(ns_per_command=0.0)
    with pytest.raises(ConfigurationError):
        ProjectSpec(n_generations=0)


def test_spec_derived_quantities():
    spec = ProjectSpec(total_cores=100, cores_per_sim=24)
    assert spec.n_workers == 4
    assert spec.total_ns == 225 * 3 * 50.0


def test_reference_time_matches_paper():
    spec = ProjectSpec(total_cores=1, cores_per_sim=1)
    assert reference_time_single_core(spec) == pytest.approx(1.1e5, rel=0.01)


def test_analytic_time_paper_anchor_5000_cores():
    """Paper: the real project ran ~30 h of wallclock at ~5,000 cores."""
    hours = analytic_project_time(ProjectSpec(total_cores=5000, cores_per_sim=24))
    assert hours == pytest.approx(30.0, rel=0.15)


def test_analytic_time_paper_anchor_20000_cores():
    """Paper: 'using 20,000 cores the time to solution would have been
    just over 10 h' at 53 % efficiency."""
    spec = ProjectSpec(total_cores=20000, cores_per_sim=96)
    hours = analytic_project_time(spec)
    assert hours == pytest.approx(10.5, rel=0.1)
    assert analytic_result(spec).efficiency == pytest.approx(0.53, abs=0.05)


def test_time_to_solution_plateaus_beyond_command_limit():
    """Fig. 8: beyond n_commands simultaneous simulations, more cores
    stop helping."""
    k = 24
    at_limit = analytic_project_time(
        ProjectSpec(total_cores=225 * k, cores_per_sim=k)
    )
    beyond = analytic_project_time(
        ProjectSpec(total_cores=4 * 225 * k, cores_per_sim=k)
    )
    assert beyond == pytest.approx(at_limit, rel=0.01)


def test_more_cores_per_sim_extends_scaling():
    """Fig. 8: at huge core counts, bigger per-sim parallelisation wins."""
    n = 50000
    t24 = analytic_project_time(ProjectSpec(total_cores=n, cores_per_sim=24))
    t96 = analytic_project_time(ProjectSpec(total_cores=n, cores_per_sim=96))
    assert t96 < t24


def test_fewer_cores_per_sim_more_efficient_at_small_scale():
    """Fig. 7: below the command ceiling, small tasks are more efficient."""
    n = 960
    e12 = analytic_result(ProjectSpec(total_cores=n, cores_per_sim=12)).efficiency
    e96 = analytic_result(ProjectSpec(total_cores=n, cores_per_sim=96)).efficiency
    assert e12 > e96


def test_efficiency_near_one_at_small_counts():
    """Fig. 7: near-linear strong scaling at low core counts."""
    eff = analytic_result(ProjectSpec(total_cores=12, cores_per_sim=1)).efficiency
    assert eff > 0.9


# ----------------------------------------------------------------- DES


def test_des_close_to_analytic():
    for n, k in [(2400, 24), (5000, 24), (20000, 96)]:
        spec = ProjectSpec(total_cores=n, cores_per_sim=k)
        des = simulate_project(spec)
        analytic = analytic_project_time(spec)
        assert des.hours == pytest.approx(analytic, rel=0.2)
        assert des.hours >= analytic * 0.99  # analytic is a lower bound


def test_des_generation_count():
    spec = ProjectSpec(
        total_cores=500, cores_per_sim=10, n_generations=4, n_commands=20
    )
    result = simulate_project(spec)
    assert len(result.generation_hours) == 4
    assert result.hours == pytest.approx(sum(result.generation_hours), rel=1e-6)


def test_des_utilization_high_when_saturated():
    spec = ProjectSpec(total_cores=1000, cores_per_sim=10, n_commands=225)
    result = simulate_project(spec)
    assert result.worker_utilization > 0.8


def test_des_single_worker_serialises():
    spec = ProjectSpec(
        total_cores=1,
        cores_per_sim=1,
        n_commands=5,
        n_generations=1,
        ns_per_command=50.0,
    )
    result = simulate_project(spec)
    expected = 5 * 50.0 / spec.md_model.rate(1) + spec.cluster_overhead_hours
    assert result.hours == pytest.approx(expected, rel=0.01)


def test_sweep_skips_infeasible_counts():
    results = sweep_total_cores([1, 10, 100, 1000], cores_per_sim=24)
    assert len(results) == 2  # 100 and 1000 only
    assert all(r.spec.total_cores >= 24 for r in results)


def test_sweep_efficiency_decreases_beyond_ceiling():
    counts = [240, 2400, 24000, 240000]
    results = sweep_total_cores(counts, cores_per_sim=24)
    effs = [r.efficiency for r in results]
    assert effs[-1] < effs[0]
    # time-to-solution is non-increasing in cores
    hours = [r.hours for r in results]
    assert all(a >= b - 1e-9 for a, b in zip(hours, hours[1:]))


# -------------------------------------------------------------- bandwidth


def test_ensemble_bandwidth_paper_scale():
    """Paper: 'the average bandwidth used for ensemble synchronization
    typically does not exceed 0.1 MB/s' at the real run's scale."""
    bw = ensemble_bandwidth(ProjectSpec(total_cores=5000, cores_per_sim=24))
    assert 0.01 < bw < 0.15


def test_ensemble_bandwidth_grows_with_cores():
    bws = [
        ensemble_bandwidth(ProjectSpec(total_cores=n, cores_per_sim=24))
        for n in (240, 2400, 5400)
    ]
    assert bws[0] < bws[1] < bws[2]


def test_mpi_bandwidth_paper_values():
    """Paper: 500-2900 MB/s for 24-96 core simulations."""
    assert single_simulation_mpi_bandwidth(24) == pytest.approx(500.0)
    assert single_simulation_mpi_bandwidth(96) == pytest.approx(2900.0)
    assert single_simulation_mpi_bandwidth(1) == 0.0


def test_mpi_bandwidth_validation():
    with pytest.raises(ConfigurationError):
        single_simulation_mpi_bandwidth(0)


def test_hierarchy_table():
    levels = parallelism_hierarchy()
    assert len(levels) == 5
    names = [level.level for level in levels]
    assert names[0] == "SIMD kernels"
    assert "ensemble (SSL)" in names


# ------------------------------------------------------- heterogeneous


def _pools_paper():
    """The paper's deployment: Infiniband (72 nodes) + Cray (120 nodes)."""
    from repro.perfmodel.scheduler_sim import ResourcePool

    return [
        ResourcePool("infiniband", total_cores=72 * 24, cores_per_sim=24),
        ResourcePool("cray", total_cores=120 * 24, cores_per_sim=24),
    ]


def test_heterogeneous_matches_homogeneous_when_identical():
    from repro.perfmodel.scheduler_sim import (
        ResourcePool,
        analytic_heterogeneous_time,
    )

    pools = [
        ResourcePool("a", total_cores=2400, cores_per_sim=24),
        ResourcePool("b", total_cores=2600, cores_per_sim=24),
    ]
    combined = analytic_project_time(
        ProjectSpec(total_cores=5000, cores_per_sim=24)
    )
    hetero = analytic_heterogeneous_time(pools)
    assert hetero == pytest.approx(combined, rel=0.02)


def test_heterogeneous_paper_deployment_generation_time():
    """Paper: successive generations took 10-11 h on the two machines."""
    from repro.perfmodel.scheduler_sim import analytic_heterogeneous_time

    hours = analytic_heterogeneous_time(_pools_paper(), n_generations=10)
    per_generation = hours / 10.0
    assert 10.0 <= per_generation <= 12.5
    # and the whole project lands near the paper's ~100 h
    assert hours == pytest.approx(100.0, rel=0.2)


def test_heterogeneous_faster_pool_helps():
    from repro.perfmodel.scheduler_sim import (
        ResourcePool,
        analytic_heterogeneous_time,
    )

    slow = [ResourcePool("s", 2400, 24, rate_multiplier=1.0)]
    boosted = slow + [ResourcePool("f", 2400, 24, rate_multiplier=2.0)]
    assert analytic_heterogeneous_time(boosted) < analytic_heterogeneous_time(slow)


def test_heterogeneous_fastest_first_when_saturated():
    """With more workers than commands, only the fastest pools matter."""
    from repro.perfmodel.scheduler_sim import (
        ResourcePool,
        analytic_heterogeneous_time,
    )

    fast = ResourcePool("fast", 225 * 24, 24, rate_multiplier=2.0)
    slow = ResourcePool("slow", 225 * 24, 24, rate_multiplier=0.5)
    both = analytic_heterogeneous_time([fast, slow])
    fast_only = analytic_heterogeneous_time([fast])
    assert both == pytest.approx(fast_only, rel=1e-9)


def test_heterogeneous_validation():
    from repro.perfmodel.scheduler_sim import (
        ResourcePool,
        analytic_heterogeneous_time,
    )

    with pytest.raises(ConfigurationError):
        analytic_heterogeneous_time([])
    with pytest.raises(ConfigurationError):
        ResourcePool("x", total_cores=0, cores_per_sim=1)
    with pytest.raises(ConfigurationError):
        ResourcePool("x", total_cores=10, cores_per_sim=24)
