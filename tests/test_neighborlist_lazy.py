"""Lazy Verlet neighbour lists: bit-exactness, thresholds, sharing.

The contract under test (module docstring of
:mod:`repro.md.neighborlist`): a cached candidate list reused while no
atom has moved more than ``skin/2`` produces forces *bit-identical* to
rebuilding every step — and to ``AllPairs`` — because candidates come
out in canonical order and every kernel filters ``r < cutoff`` before
accumulating.
"""

import numpy as np
import pytest

from repro.md.engine import BatchedMDTask, MDEngine, MDTask
from repro.md.forcefield.nonbonded import LennardJonesForce
from repro.md.models.lj_fluid import lj_fluid_state, lj_fluid_system
from repro.md.neighborlist import AllPairs, SharedNeighborList, VerletList
from repro.util.errors import ConfigurationError

MODEL_PARAMS = {"n_particles": 27}
VERLET_PARAMS = {"n_particles": 27, "neighborlist": "verlet", "skin": 0.12}


def _fluid(neighborlist="all-pairs", skin=0.12):
    system, box = lj_fluid_system(
        n_particles=27, neighborlist=neighborlist, skin=skin
    )
    return system, box


def _positions(box, rng):
    system, _ = _fluid()
    return lj_fluid_state(system, box, rng=rng).positions


def test_verlet_matches_allpairs_bitwise():
    ap_system, box = _fluid("all-pairs")
    vl_system, _ = _fluid("verlet")
    positions = _positions(box, rng=3)
    e_ap, f_ap = ap_system.energy_forces(positions)
    e_vl, f_vl = vl_system.energy_forces(positions)
    assert e_ap == e_vl
    assert np.array_equal(f_ap, f_vl)


def test_lazy_reuse_is_bit_identical_along_a_walk():
    """Property: lazy reuse == rebuild-every-step, over a random walk.

    Displacements are kept under ``skin/2`` so the lazy list actually
    reuses its cache (asserted via the build counter), while the
    ``skin=0`` twin rebuilds on any movement — the strictest reference.
    """
    lazy_system, box = _fluid("verlet", skin=0.12)
    eager_system, _ = _fluid("verlet", skin=0.0)
    lazy_provider = lazy_system.forces[0].pair_provider
    eager_provider = eager_system.forces[0].pair_provider

    rng = np.random.default_rng(11)
    positions = _positions(box, rng=5)
    n_steps = 12
    for _ in range(n_steps):
        positions = positions + rng.normal(scale=0.004, size=positions.shape)
        e_lazy, f_lazy = lazy_system.energy_forces(positions)
        e_eager, f_eager = eager_system.energy_forces(positions)
        assert e_lazy == e_eager
        assert np.array_equal(f_lazy, f_eager)

    assert eager_provider.n_builds == n_steps
    assert lazy_provider.n_builds < n_steps
    assert lazy_provider.n_reuses > 0


def test_crossing_the_skin_threshold_triggers_a_rebuild():
    nl = VerletList(cutoff=1.0, skin=0.4)
    positions = np.array([[0.0, 0, 0], [0.5, 0, 0], [3.0, 0, 0]])
    nl.pairs(positions)
    assert (nl.n_builds, nl.n_reuses) == (1, 0)

    nudged = positions.copy()
    nudged[2, 0] += 0.19  # below skin/2 = 0.2: cache stays valid
    nl.pairs(nudged)
    assert (nl.n_builds, nl.n_reuses) == (1, 1)

    nudged[2, 0] = positions[2, 0] + 0.21  # past skin/2: must rebuild
    nl.pairs(nudged)
    assert (nl.n_builds, nl.n_reuses) == (2, 1)


def test_skin_zero_rebuilds_on_any_movement():
    nl = VerletList(cutoff=1.0, skin=0.0)
    positions = np.zeros((2, 3))
    positions[1, 0] = 0.8
    nl.pairs(positions)
    nl.pairs(positions + 1e-9)
    assert nl.n_builds == 2


def test_invalidate_drops_the_cache():
    nl = VerletList(cutoff=1.0, skin=0.5)
    positions = np.array([[0.0, 0, 0], [0.9, 0, 0]])
    nl.pairs(positions)
    nl.invalidate()
    nl.pairs(positions)
    assert nl.n_builds == 2


def test_shared_list_keeps_independent_per_replica_caches():
    shared = SharedNeighborList(cutoff=1.0, skin=0.4)
    base = np.array([[0.0, 0, 0], [0.7, 0, 0], [2.5, 0, 0]])
    shared.replica_pairs(0, base)
    shared.replica_pairs(7, base + 0.01)
    assert shared.n_builds == 2

    # Reuse replica 0's cache; replica 7 untouched.
    shared.replica_pairs(0, base + 0.05)
    assert (shared.n_builds, shared.n_reuses) == (2, 1)

    # Only the replica that moved past skin/2 rebuilds.
    moved = base.copy()
    moved[2, 0] += 0.5
    shared.replica_pairs(7, moved)
    assert shared.n_builds == 3

    # The serial-path list is yet another independent cache.
    shared.pairs(base)
    assert shared.n_builds == 4


def test_shared_list_replica_ids_survive_gaps():
    """Replica keys are ids, not row indices: id 5 without ids 0-4."""
    shared = SharedNeighborList(cutoff=1.0, skin=0.3)
    positions = np.array([[0.0, 0, 0], [0.6, 0, 0]])
    i, j = shared.replica_pairs(5, positions)
    assert len(i) == 1 and (i[0], j[0]) == (0, 1)
    assert shared.n_builds == 1


def test_unknown_neighborlist_name_rejected():
    with pytest.raises(ConfigurationError):
        lj_fluid_system(n_particles=27, neighborlist="octree")


def test_engine_verlet_run_matches_allpairs_bitwise():
    """Full engine runs: lazy verlet frames == all-pairs frames."""
    def _task(params):
        return MDTask(
            model="lj-fluid",
            n_steps=120,
            report_interval=20,
            seed=9,
            model_params=params,
            task_id="nl",
        )

    engine = MDEngine()
    reference = engine.run(_task(MODEL_PARAMS))
    lazy = engine.run(_task(VERLET_PARAMS))
    assert np.array_equal(reference.frames, lazy.frames)
    assert np.array_equal(
        np.asarray(reference.checkpoint["positions"]),
        np.asarray(lazy.checkpoint["positions"]),
    )


def test_batched_verlet_matches_serial_bitwise():
    """The shared manager under the batched kernel == serial replicas."""
    tasks = [
        MDTask(
            model="lj-fluid",
            n_steps=80,
            report_interval=20,
            seed=20 + r,
            model_params=VERLET_PARAMS,
            dispatch="batched",
            task_id=f"nl/r{r}",
        )
        for r in range(4)
    ]
    engine = MDEngine()
    serial = [engine.run(task) for task in tasks]
    batched = engine.run_batched(BatchedMDTask.from_tasks(tasks, batch_id="b"))
    assert batched.dispatch == "batched"
    for serial_result, batched_result in zip(serial, batched.results):
        assert np.array_equal(serial_result.frames, batched_result.frames)
