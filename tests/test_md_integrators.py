"""Integrator correctness: conservation, thermostats, determinism."""

import numpy as np
import pytest

from repro.md import (
    LangevinIntegrator,
    NoseHooverIntegrator,
    Simulation,
    VelocityVerletIntegrator,
)
from repro.md.models.doublewell import double_well_initial_state, double_well_system
from repro.md.models.villin import build_villin
from repro.md.system import State, System
from repro.md.forcefield.bonded import HarmonicBondForce
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream
from repro.util.units import KB


def _harmonic_dimer():
    """Two atoms joined by a spring — analytically tractable."""
    system = System(
        masses=[1.0, 1.0],
        forces=[HarmonicBondForce([[0, 1]], [1.0], [100.0])],
        dim=3,
    )
    positions = np.array([[0.0, 0.0, 0.0], [1.2, 0.0, 0.0]])  # stretched
    velocities = np.zeros((2, 3))
    return system, State(positions, velocities)


def test_verlet_conserves_energy():
    system, state = _harmonic_dimer()
    integrator = VelocityVerletIntegrator(timestep=0.002)
    sim = Simulation(system, integrator, state)
    e0 = sim.total_energy()
    sim.run(5000)
    assert sim.total_energy() == pytest.approx(e0, rel=1e-4)


def test_verlet_energy_drift_small_on_villin():
    model = build_villin("fast")
    state = model.native_state(rng=0, temperature=100.0)
    sim = Simulation(model.system, VelocityVerletIntegrator(0.005), state)
    e0 = sim.total_energy()
    sim.run(2000)
    drift = abs(sim.total_energy() - e0) / abs(e0)
    assert drift < 1e-3


def test_verlet_oscillation_period():
    """Spring period T = 2 pi sqrt(mu/k) with reduced mass mu = 1/2."""
    system, state = _harmonic_dimer()
    integrator = VelocityVerletIntegrator(timestep=0.001)
    sim = Simulation(system, integrator, state, report_interval=1)
    sim.run(2000)
    separations = np.linalg.norm(
        sim.trajectory.frames[:, 1] - sim.trajectory.frames[:, 0], axis=1
    )
    # count zero crossings of (r - r0)
    signs = np.sign(separations - 1.0)
    crossings = np.sum(signs[1:] != signs[:-1])
    expected_period = 2 * np.pi * np.sqrt(0.5 / 100.0)
    total_time = sim.trajectory.times[-1] - sim.trajectory.times[0]
    expected_crossings = 2 * total_time / expected_period
    assert crossings == pytest.approx(expected_crossings, rel=0.05)


def test_langevin_reaches_target_temperature():
    model = build_villin("fast")
    state = model.native_state(rng=1, temperature=100.0)  # start cold
    integrator = LangevinIntegrator(0.02, 300.0, friction=5.0, rng=4)
    sim = Simulation(model.system, integrator, state)
    sim.run(2000)  # equilibrate
    temps = []
    for _ in range(50):
        sim.run(100)
        temps.append(model.system.instantaneous_temperature(sim.state.velocities))
    assert np.mean(temps) == pytest.approx(300.0, rel=0.1)


def test_langevin_velocity_distribution_width():
    """Single free particle velocities sample the Maxwell distribution."""
    system = System(masses=[2.0], forces=[], dim=3)
    state = State(np.zeros((1, 3)), np.zeros((1, 3)))
    integrator = LangevinIntegrator(0.05, 300.0, friction=2.0, rng=9)
    sim = Simulation(system, integrator, state)
    sim.run(200)
    samples = []
    for _ in range(3000):
        sim.run(5)
        samples.append(sim.state.velocities[0, 0])
    expected_sigma = np.sqrt(KB * 300.0 / 2.0)
    assert np.std(samples) == pytest.approx(expected_sigma, rel=0.1)


def test_langevin_deterministic_given_seed():
    model = build_villin("fast")

    def run_once():
        state = model.native_state(rng=2, temperature=300.0)
        sim = Simulation(
            model.system, LangevinIntegrator(0.02, 300.0, rng=7), state
        )
        sim.run(500)
        return sim.state.positions.copy()

    np.testing.assert_array_equal(run_once(), run_once())


def test_langevin_different_seeds_diverge():
    model = build_villin("fast")

    def run_once(seed):
        state = model.native_state(rng=2, temperature=300.0)
        sim = Simulation(
            model.system, LangevinIntegrator(0.02, 300.0, rng=seed), state
        )
        sim.run(200)
        return sim.state.positions.copy()

    assert not np.array_equal(run_once(1), run_once(2))


def test_nose_hoover_controls_temperature():
    model = build_villin("fast")
    state = model.native_state(rng=3, temperature=300.0)
    integrator = NoseHooverIntegrator(0.01, 300.0, oscillation_period=0.5)
    sim = Simulation(model.system, integrator, state)
    sim.run(2000)
    temps = []
    for _ in range(60):
        sim.run(50)
        temps.append(model.system.instantaneous_temperature(sim.state.velocities))
    assert np.mean(temps) == pytest.approx(300.0, rel=0.12)


def test_nose_hoover_is_deterministic():
    model = build_villin("fast")

    def run_once():
        state = model.native_state(rng=5, temperature=300.0)
        sim = Simulation(
            model.system, NoseHooverIntegrator(0.01, 300.0), state
        )
        sim.run(300)
        return sim.state.positions.copy()

    np.testing.assert_array_equal(run_once(), run_once())


def test_nose_hoover_thermostat_state_roundtrip():
    integ = NoseHooverIntegrator(0.01, 300.0)
    integ.thermostat_state = 0.25
    assert integ.thermostat_state == 0.25


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        VelocityVerletIntegrator(timestep=0.0)
    with pytest.raises(ConfigurationError):
        LangevinIntegrator(0.01, -5.0)
    with pytest.raises(ConfigurationError):
        LangevinIntegrator(0.01, 300.0, friction=0.0)
    with pytest.raises(ConfigurationError):
        NoseHooverIntegrator(0.01, 0.0)
    with pytest.raises(ConfigurationError):
        NoseHooverIntegrator(0.01, 300.0, oscillation_period=-1.0)


def test_double_well_hopping_at_high_temperature():
    """Langevin dynamics crosses the barrier when kT ~ barrier."""
    barrier = 2.0
    system = double_well_system(barrier=barrier, width=0.5)
    state = double_well_initial_state(side=-1, rng=1, width=0.5)
    integrator = LangevinIntegrator(0.01, 600.0, friction=2.0, rng=3)
    sim = Simulation(system, integrator, state, report_interval=10)
    sim.run(40000)
    xs = sim.trajectory.frames[:, 0, 0]
    assert xs.min() < -0.25 and xs.max() > 0.25, "never crossed the barrier"


def test_maxwell_boltzmann_velocities_have_zero_momentum():
    model = build_villin("fast")
    v = model.system.maxwell_boltzmann_velocities(300.0, RandomStream(0))
    momentum = (model.system.masses[:, None] * v).sum(axis=0)
    np.testing.assert_allclose(momentum, 0.0, atol=1e-9)


def test_maxwell_boltzmann_temperature_scale():
    model = build_villin("full")
    temps = [
        model.system.instantaneous_temperature(
            model.system.maxwell_boltzmann_velocities(250.0, rng)
        )
        for rng in RandomStream(1).spawn(40)
    ]
    assert np.mean(temps) == pytest.approx(250.0, rel=0.05)
