"""Bit-identity contract of the batched ensemble kernel.

The batched kernel is only allowed to change wall-clock time: every
per-replica observable — positions, velocities, trajectory frames, RNG
state, checkpoint payloads — must be byte-for-byte what R serial engine
runs with the same seeds produce, including across an abort /
checkpoint / restore cycle.  These tests are the acceptance gate for
ISSUE 5's tentpole.
"""

import numpy as np
import pytest

from repro.md.batched import BatchedSimulation, make_batched_integrator
from repro.md.engine import (
    BatchedMDResult,
    BatchedMDTask,
    MDEngine,
    MDTask,
    resolve_model,
)
from repro.util.errors import ConfigurationError
from repro.util.serialization import encode_message

R = 8
N_STEPS = 250
MODEL = "double-well"


def make_tasks(model=MODEL, n_steps=N_STEPS, integrator="langevin", **kw):
    return [
        MDTask(
            model=model,
            n_steps=n_steps,
            report_interval=50,
            integrator=integrator,
            seed=10 + r,
            task_id=f"t{r}",
            **kw,
        )
        for r in range(R)
    ]


def checkpoint_bytes(payload):
    """Canonical bytes of a checkpoint payload (ndarray-safe compare)."""
    return encode_message(payload)


def assert_results_identical(serial, batched):
    assert len(serial) == len(batched)
    for expect, got in zip(serial, batched):
        assert got.task_id == expect.task_id
        np.testing.assert_array_equal(got.frames, expect.frames)
        np.testing.assert_array_equal(got.times, expect.times)
        assert got.steps_completed == expect.steps_completed
        assert got.completed == expect.completed
        assert got.final_potential_energy == expect.final_potential_energy
        assert checkpoint_bytes(got.checkpoint) == checkpoint_bytes(
            expect.checkpoint
        )


@pytest.mark.parametrize("model", ["double-well", "muller-brown", "villin-fast"])
def test_batched_bit_identical_to_serial(model):
    engine = MDEngine(segment_steps=100)
    tasks = make_tasks(model=model)
    serial = [engine.run(task) for task in tasks]
    batched = engine.run_batched(BatchedMDTask.from_tasks(tasks))
    assert_results_identical(serial, batched.results)


def test_batched_verlet_bit_identical():
    engine = MDEngine(segment_steps=100)
    tasks = make_tasks(integrator="verlet")
    serial = [engine.run(task) for task in tasks]
    batched = engine.run_batched(BatchedMDTask.from_tasks(tasks))
    assert_results_identical(serial, batched.results)


def test_batched_nose_hoover_serial_fallback():
    """No batched Nosé–Hoover form; the kernel's fallback still matches."""
    engine = MDEngine(segment_steps=100)
    tasks = make_tasks(integrator="nose-hoover")
    serial = [engine.run(task) for task in tasks]
    batched = engine.run_batched(BatchedMDTask.from_tasks(tasks))
    assert_results_identical(serial, batched.results)


def test_batched_identity_across_checkpoint_restore():
    """Abort mid-run, resume each path from its checkpoint: still equal."""
    engine = MDEngine(segment_steps=40)
    tasks = make_tasks()

    serial_partial = [engine.run(t, abort_after_steps=90) for t in tasks]
    batched_partial = engine.run_batched(
        BatchedMDTask.from_tasks(tasks), abort_after_steps=90
    )
    assert_results_identical(serial_partial, batched_partial.results)
    assert not any(r.completed for r in batched_partial.results)

    resumed_tasks = [
        MDTask(
            **{
                **task.__dict__,
                "checkpoint": partial.checkpoint,
            }
        )
        for task, partial in zip(tasks, serial_partial)
    ]
    serial_final = [engine.run(t) for t in resumed_tasks]
    batched_final = engine.run_batched(BatchedMDTask.from_tasks(resumed_tasks))
    assert_results_identical(serial_final, batched_final.results)
    assert all(r.completed for r in batched_final.results)

    # the resumed runs also equal an uninterrupted straight-through run
    straight = [engine.run(t) for t in tasks]
    for interrupted, uninterrupted in zip(serial_final, straight):
        assert checkpoint_bytes(interrupted.checkpoint) == checkpoint_bytes(
            uninterrupted.checkpoint
        )


def test_batched_rng_streams_independent_of_batch_shape():
    """Replica r's stream is a function of its seed, not the batch."""
    engine = MDEngine(segment_steps=100)
    tasks = make_tasks()
    full = engine.run_batched(BatchedMDTask.from_tasks(tasks))
    halves = [
        engine.run_batched(BatchedMDTask.from_tasks(tasks[:4])),
        engine.run_batched(BatchedMDTask.from_tasks(tasks[4:])),
    ]
    assert_results_identical(
        full.results, halves[0].results + halves[1].results
    )


def test_batched_early_exit_masks():
    """Replicas with unequal remaining work finish at their own targets."""
    engine = MDEngine(segment_steps=60)
    tasks = make_tasks()
    partial = engine.run_batched(
        BatchedMDTask.from_tasks(tasks), abort_after_steps=100
    )
    resumed = [
        MDTask(**{**task.__dict__, "checkpoint": result.checkpoint})
        for task, result in zip(tasks, partial.results)
    ]
    # one replica already finished separately: zero remaining steps
    done = MDEngine().run(resumed[0])
    resumed[0] = MDTask(**{**resumed[0].__dict__, "checkpoint": done.checkpoint})
    batched = engine.run_batched(BatchedMDTask.from_tasks(resumed))
    assert batched.results[0].steps_completed == 0
    assert all(r.completed for r in batched.results)
    serial = [MDEngine(segment_steps=60).run(t) for t in resumed]
    assert_results_identical(serial, batched.results)


def test_batched_task_payload_roundtrip():
    btask = BatchedMDTask.from_tasks(make_tasks(), batch_id="b1")
    clone = BatchedMDTask.from_payload(btask.to_payload())
    assert clone.seeds == btask.seeds
    assert clone.task_ids == btask.task_ids
    assert clone.batch_id == "b1"
    result = MDEngine(segment_steps=100).run_batched(clone)
    roundtrip = BatchedMDResult.from_payload(result.to_payload())
    assert_results_identical(result.results, roundtrip.results)


def test_batched_task_rejects_incompatible_members():
    tasks = make_tasks()
    tasks[3] = MDTask(**{**tasks[3].__dict__, "n_steps": N_STEPS + 1})
    with pytest.raises(ConfigurationError):
        BatchedMDTask.from_tasks(tasks)


def test_batched_simulation_checkpoints_match_serial_simulation():
    """The kernel's own checkpoints equal the serial Simulation's."""
    tasks = make_tasks()[:4]
    built = resolve_model(MODEL, {})
    integrator = make_batched_integrator(
        "langevin", 0.02, 300.0, 1.0, [t.seed for t in tasks]
    )
    batched = BatchedSimulation(
        built.system,
        integrator,
        [built.state_builder(t) for t in tasks],
        report_interval=50,
    )
    batched.run_to(np.full(len(tasks), 120))
    for r, task in enumerate(tasks):
        serial = MDEngine(segment_steps=120).run(
            MDTask(**{**task.__dict__, "n_steps": 120})
        )
        assert checkpoint_bytes(
            batched.checkpoint(r).to_payload()
        ) == checkpoint_bytes(serial.checkpoint)
