"""Fair-share scheduler unit tests: quotas, weights, aging, backpressure.

The edge cases the multi-tenant plane stands on: a zero-quota tenant
never dispatches a single command; a single unconstrained tenant gets
byte-for-byte the classic ``build_workload`` behaviour; backpressure
releases deferred submissions deterministically (tenant name order,
FIFO within a tenant); and the quota ledger is exact under speculation
clones and duplicate releases.
"""

import pytest

from repro.core.command import Command
from repro.server.fairshare import (
    DEFAULT_POLICY,
    FairSharePolicy,
    FairShareScheduler,
    TenantPolicy,
)
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.util.errors import ConfigurationError


def cmd(tenant, cid, priority=0, cores=1):
    return Command(
        command_id=cid,
        project_id=tenant,
        executable="mdrun",
        payload={},
        priority=priority,
        min_cores=cores,
        preferred_cores=cores,
    )


def caps(cores=1, batch=1):
    return WorkerCapabilities(
        worker="w0", platform="smp", cores=cores,
        executables=["mdrun"], batch_capacity=batch,
    )


def fill(queue, commands):
    for c in commands:
        queue.push(c)


def build(scheduler, queue, capabilities, now=0.0, queued_at=None):
    return scheduler.build(
        queue, capabilities, now=now, queued_at=queued_at or {}
    )


# -- policy validation -----------------------------------------------------

def test_policy_validation():
    with pytest.raises(ConfigurationError):
        TenantPolicy(quota=-1)
    with pytest.raises(ConfigurationError):
        TenantPolicy(weight=0.0)
    with pytest.raises(ConfigurationError):
        TenantPolicy(max_queued=0)
    with pytest.raises(ConfigurationError):
        FairSharePolicy(max_wait_seconds=0.0)
    policy = FairSharePolicy(tenants={"a": TenantPolicy(quota=3)})
    assert policy.for_tenant("a").quota == 3
    assert policy.for_tenant("stranger") == DEFAULT_POLICY


# -- zero quota ------------------------------------------------------------

def test_zero_quota_tenant_never_dispatches():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"banned": TenantPolicy(quota=0)})
    )
    queue = CommandQueue()
    fill(queue, [cmd("banned", f"c{i}") for i in range(4)])
    fill(queue, [cmd("ok", "c0")])
    workload = build(scheduler, queue, caps(cores=8))
    assert [c.project_id for c, _ in workload] == ["ok"]
    # the banned tenant's commands stay queued, quota ledger untouched
    assert all(c.project_id == "banned" for c in queue.commands())
    assert scheduler.check_ledger() == []
    # even across repeated builds nothing ever leaks out
    for _ in range(5):
        assert build(scheduler, queue, caps(cores=8)) == []
    assert scheduler.ledgers.get("banned") is None or (
        scheduler.ledgers["banned"].dispatched == 0
    )


# -- single-tenant parity --------------------------------------------------

def _snapshot(workload):
    return [(c.command_id, cores) for c, cores in workload]


@pytest.mark.parametrize("cores,batch", [(1, 1), (4, 1), (4, 4)])
def test_single_default_tenant_matches_build_workload(cores, batch):
    commands = [cmd("solo", f"c{i}", priority=i % 3) for i in range(8)]
    plain_queue, fair_queue = CommandQueue(), CommandQueue()
    fill(plain_queue, [cmd("solo", c.command_id, priority=c.priority) for c in commands])
    fill(fair_queue, commands)
    scheduler = FairShareScheduler()
    # drain both queues through repeated builds: identical workloads
    while True:
        expected = build_workload(plain_queue, caps(cores=cores, batch=batch))
        got = build(scheduler, fair_queue, caps(cores=cores, batch=batch))
        assert _snapshot(got) == _snapshot(expected)
        if not expected:
            break
    # parity includes exhaustion — and the ledger still balanced
    assert len(plain_queue) == len(fair_queue) == 0
    assert scheduler.ledgers["solo"].dispatched == 8
    assert scheduler.check_ledger() == []


def test_single_tenant_with_explicit_policy_leaves_fast_path():
    # an explicit quota must be enforced even when only one tenant queues
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"solo": TenantPolicy(quota=2)})
    )
    queue = CommandQueue()
    fill(queue, [cmd("solo", f"c{i}") for i in range(5)])
    workload = build(scheduler, queue, caps(cores=8))
    assert len(workload) == 2
    assert scheduler.ledgers["solo"].peak_in_flight == 2


# -- weighted fairness -----------------------------------------------------

def test_weighted_deficit_interleaves_tenants():
    scheduler = FairShareScheduler(FairSharePolicy())
    queue = CommandQueue()
    fill(queue, [cmd("a", f"a{i}") for i in range(2)])
    fill(queue, [cmd("b", f"b{i}") for i in range(2)])
    workload = build(scheduler, queue, caps(cores=4))
    assert [c.command_id for c, _ in workload] == ["a0", "b0", "a1", "b1"]


def test_heavier_tenant_gets_proportional_share():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"big": TenantPolicy(weight=2.0)})
    )
    queue = CommandQueue()
    fill(queue, [cmd("big", f"g{i}") for i in range(6)])
    fill(queue, [cmd("small", f"s{i}") for i in range(6)])
    workload = build(scheduler, queue, caps(cores=6))
    picked = [c.project_id for c, _ in workload]
    assert picked.count("big") == 4 and picked.count("small") == 2


# -- quota ledger exactness ------------------------------------------------

def test_ledger_is_idempotent_for_speculation_clones():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(quota=1)})
    )
    queue = CommandQueue()
    original = cmd("a", "c0")
    queue.push(original)
    workload = build(scheduler, queue, caps())
    assert len(workload) == 1
    # a speculative clone is the same logical command: a second
    # dispatch neither double-counts nor trips the quota...
    clone = cmd("a", "c0")
    assert scheduler._admits(clone)
    assert scheduler._note_dispatch(clone) is False
    assert scheduler.ledgers["a"].dispatched == 1
    # ...and only the first release credits the ledger
    assert scheduler.release(original) is True
    assert scheduler.release(clone) is False
    assert scheduler.ledgers["a"].released == 1
    assert scheduler.check_ledger() == []


def test_release_of_unknown_command_is_a_noop():
    scheduler = FairShareScheduler()
    assert scheduler.release(cmd("ghost", "c0")) is False
    assert scheduler.check_ledger() == []


def test_quota_frees_up_after_release():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(quota=1)})
    )
    queue = CommandQueue()
    fill(queue, [cmd("a", "c0"), cmd("a", "c1")])
    first = build(scheduler, queue, caps(cores=4))
    assert [c.command_id for c, _ in first] == ["c0"]
    assert build(scheduler, queue, caps(cores=4)) == []  # quota full
    scheduler.release(first[0][0])
    second = build(scheduler, queue, caps(cores=4))
    assert [c.command_id for c, _ in second] == ["c1"]
    assert scheduler.ledgers["a"].peak_in_flight == 1
    assert scheduler.check_ledger() == []


# -- backpressure ----------------------------------------------------------

def test_backpressure_defers_beyond_max_queued():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(max_queued=2)})
    )
    queue = CommandQueue()
    accepted, deferred = [], []
    for i in range(5):
        c = cmd("a", f"c{i}")
        if scheduler.should_defer(c, queue):
            scheduler.defer(c)
            deferred.append(c.command_id)
        else:
            queue.push(c)
            accepted.append(c.command_id)
    assert accepted == ["c0", "c1"]
    assert deferred == ["c2", "c3", "c4"]
    assert scheduler.ledgers["a"].deferred_total == 3


def test_backpressure_release_is_deterministic_and_fifo():
    scheduler = FairShareScheduler(
        FairSharePolicy(
            tenants={
                "a": TenantPolicy(max_queued=1),
                "b": TenantPolicy(max_queued=1),
            }
        )
    )
    queue = CommandQueue()
    # interleave submissions: b first, then a — drain order must still
    # be tenant-name order (a before b), FIFO within each tenant
    for tenant, cid in [("b", "b0"), ("b", "b1"), ("b", "b2"),
                        ("a", "a0"), ("a", "a1"), ("a", "a2")]:
        c = cmd(tenant, cid)
        if scheduler.should_defer(c, queue):
            scheduler.defer(c)
        else:
            queue.push(c)
    assert {c.command_id for c in queue.commands()} == {"a0", "b0"}
    # queues drain completely -> every deferred command releases
    workload = build(scheduler, queue, caps(cores=2))
    assert len(workload) == 2
    released = scheduler.drain(queue)
    assert [c.command_id for c in released] == ["a1", "b1"]
    for c in released:
        queue.push(c)
    # a second identical run from the same state reproduces exactly
    assert [c.command_id for c in scheduler.drain(queue)] == []
    workload = build(scheduler, queue, caps(cores=2))
    assert [c.command_id for c in scheduler.drain(queue)] == ["a2", "b2"]


def test_pending_deferral_forces_fifo_for_later_submissions():
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(max_queued=3)})
    )
    queue = CommandQueue()
    for i in range(4):
        c = cmd("a", f"c{i}")
        if scheduler.should_defer(c, queue):
            scheduler.defer(c)
        else:
            queue.push(c)
    # c3 deferred; now the queue drains to 1 slot below the limit, but
    # a NEW submission must still defer behind c3 (FIFO)
    queue.pop_matching(lambda c: True)
    late = cmd("a", "late")
    assert scheduler.should_defer(late, queue) is True
    scheduler.defer(late)
    released = scheduler.drain(queue)
    assert [c.command_id for c in released] == ["c3"]


# -- aging -----------------------------------------------------------------

def test_aged_command_preempts_deficit_order():
    scheduler = FairShareScheduler(FairSharePolicy(max_wait_seconds=100.0))
    queue = CommandQueue()
    fill(queue, [cmd("fresh", f"f{i}") for i in range(2)])
    old = cmd("starving", "old0")
    queue.push(old)
    queued_at = {c.scoped_id: 0.0 for c in queue.commands()}
    queued_at[old.scoped_id] = -500.0  # waited 500s longer
    workload = scheduler.build(
        queue, caps(cores=1), now=50.0, queued_at=queued_at
    )
    # nothing aged yet at t=50 for the fresh ones, but old0 has: it
    # must come first even though "fresh" has the smaller deficit name
    assert workload[0][0].command_id == "old0"
    assert scheduler.aging_violations == 0
    assert scheduler.pop_violations() == []


def test_aging_self_check_reports_bypassed_commands():
    scheduler = FairShareScheduler(FairSharePolicy(max_wait_seconds=10.0))
    queue = CommandQueue()
    first, second = cmd("a", "c0"), cmd("a", "c1")
    fill(queue, [first, second])
    queued_at = {first.scoped_id: 0.0, second.scoped_id: 0.0}
    # one core: c1 (also aged) is necessarily left behind — that is
    # fine (no capacity), not a violation
    workload = scheduler.build(
        queue, caps(cores=1), now=100.0, queued_at=queued_at
    )
    assert len(workload) == 1
    assert scheduler.aging_violations == 0
