"""Tests for free-energy estimation: BAR, EXP, harmonic systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fep.bar import (
    bar_error,
    bar_free_energy,
    bar_with_error,
    exp_free_energy,
)
from repro.fep.sampling import run_fep_window, sample_window
from repro.fep.systems import (
    HarmonicWindow,
    harmonic_free_energy_difference,
    window_ladder,
)
from repro.util.errors import ConfigurationError, EstimationError
from repro.util.rng import RandomStream


def harmonic_work_samples(a, b, n, kt=1.0, seed=0):
    """Forward/reverse work for a pair of harmonic windows."""
    rng_f, rng_r = RandomStream(seed).spawn(2)
    x_a = a.sample(n, kt, rng_f)
    x_b = b.sample(n, kt, rng_r)
    w_f = b.energy(x_a) - a.energy(x_a)
    w_r = a.energy(x_b) - b.energy(x_b)
    return w_f, w_r


# -------------------------------------------------------------- systems


def test_window_validation():
    with pytest.raises(ConfigurationError):
        HarmonicWindow(k=-1.0)


def test_window_energy():
    w = HarmonicWindow(k=2.0, x0=1.0)
    assert w.energy(np.array([2.0]))[0] == pytest.approx(1.0)


def test_window_free_energy_scaling():
    """dF between two windows is kT/2 ln(k2/k1), independent of centres."""
    kt = 2.5
    a = HarmonicWindow(k=1.0, x0=0.0)
    b = HarmonicWindow(k=4.0, x0=3.0)
    assert harmonic_free_energy_difference(a, b, kt) == pytest.approx(
        0.5 * kt * np.log(4.0)
    )


def test_window_sampling_distribution():
    w = HarmonicWindow(k=4.0, x0=2.0)
    samples = w.sample(20000, kt=1.0, rng=RandomStream(0))
    assert samples.mean() == pytest.approx(2.0, abs=0.02)
    assert samples.std() == pytest.approx(0.5, rel=0.05)  # sqrt(kt/k)


def test_window_interpolation_endpoints():
    a, b = HarmonicWindow(1.0, 0.0), HarmonicWindow(9.0, 1.0)
    assert HarmonicWindow.interpolate(a, b, 0.0) == a
    assert HarmonicWindow.interpolate(a, b, 1.0) == b
    mid = HarmonicWindow.interpolate(a, b, 0.5)
    assert mid.k == pytest.approx(3.0)  # geometric mean
    assert mid.x0 == pytest.approx(0.5)


def test_window_interpolation_validation():
    a, b = HarmonicWindow(1.0), HarmonicWindow(2.0)
    with pytest.raises(ConfigurationError):
        HarmonicWindow.interpolate(a, b, 1.5)


def test_window_ladder():
    ladder = window_ladder(HarmonicWindow(1.0), HarmonicWindow(16.0), 5)
    assert len(ladder) == 5
    ks = [w.k for w in ladder]
    np.testing.assert_allclose(ks, [1, 2, 4, 8, 16], rtol=1e-12)
    with pytest.raises(ConfigurationError):
        window_ladder(HarmonicWindow(1.0), HarmonicWindow(2.0), 1)


# ------------------------------------------------------------------ BAR


def test_bar_recovers_harmonic_df():
    kt = 1.0
    a, b = HarmonicWindow(k=1.0), HarmonicWindow(k=4.0)
    w_f, w_r = harmonic_work_samples(a, b, 20000, kt=kt, seed=1)
    df = bar_free_energy(w_f, w_r, kt=kt)
    exact = harmonic_free_energy_difference(a, b, kt)
    assert df == pytest.approx(exact, abs=0.02)


def test_bar_zero_for_identical_states():
    a = HarmonicWindow(k=2.0)
    w_f, w_r = harmonic_work_samples(a, a, 5000, seed=2)
    assert bar_free_energy(w_f, w_r) == pytest.approx(0.0, abs=0.05)


def test_bar_antisymmetric():
    a, b = HarmonicWindow(k=1.0), HarmonicWindow(k=3.0)
    w_f, w_r = harmonic_work_samples(a, b, 10000, seed=3)
    df_fwd = bar_free_energy(w_f, w_r)
    df_rev = bar_free_energy(w_r, w_f)
    assert df_fwd == pytest.approx(-df_rev, abs=1e-6)


def test_bar_beats_exp_averaging():
    """BAR error vs exact should not exceed one-sided EXP's by much;
    with poor overlap EXP is badly biased while BAR stays close."""
    kt = 1.0
    a, b = HarmonicWindow(k=1.0), HarmonicWindow(k=50.0)  # poor overlap
    exact = harmonic_free_energy_difference(a, b, kt)
    w_f, w_r = harmonic_work_samples(a, b, 3000, kt=kt, seed=4)
    bar = bar_free_energy(w_f, w_r, kt=kt)
    exp = exp_free_energy(w_f, kt=kt)
    assert abs(bar - exact) < abs(exp - exact)


def test_bar_error_positive_and_shrinks():
    a, b = HarmonicWindow(k=1.0), HarmonicWindow(k=4.0)
    w_f_small, w_r_small = harmonic_work_samples(a, b, 200, seed=5)
    w_f_big, w_r_big = harmonic_work_samples(a, b, 20000, seed=5)
    _, err_small = bar_with_error(w_f_small, w_r_small)
    _, err_big = bar_with_error(w_f_big, w_r_big)
    assert err_small > 0 and err_big > 0
    assert err_big < err_small


def test_bar_error_calibrated():
    """Repeated estimates scatter consistently with the reported error."""
    kt = 1.0
    a, b = HarmonicWindow(k=1.0), HarmonicWindow(k=4.0)
    estimates, errors = [], []
    for seed in range(20):
        w_f, w_r = harmonic_work_samples(a, b, 500, kt=kt, seed=seed)
        df, err = bar_with_error(w_f, w_r, kt=kt)
        estimates.append(df)
        errors.append(err)
    scatter = np.std(estimates)
    mean_err = np.mean(errors)
    assert 0.4 < scatter / mean_err < 2.5


def test_bar_validation():
    with pytest.raises(EstimationError):
        bar_free_energy(np.array([]), np.array([1.0]))
    with pytest.raises(EstimationError):
        bar_free_energy(np.array([1.0]), np.array([1.0]), kt=-1.0)
    with pytest.raises(EstimationError):
        bar_free_energy(np.array([np.nan]), np.array([1.0]))


def test_exp_free_energy_simple():
    # all work values equal w -> dF = w
    assert exp_free_energy(np.full(100, 2.5)) == pytest.approx(2.5)


def test_exp_validation():
    with pytest.raises(EstimationError):
        exp_free_energy(np.array([1.0]), kt=0.0)


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.5, max_value=8.0),
    st.floats(min_value=0.5, max_value=8.0),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_bar_harmonic_consistency(k_a, k_b, seed):
    kt = 1.0
    a, b = HarmonicWindow(k=k_a), HarmonicWindow(k=k_b)
    w_f, w_r = harmonic_work_samples(a, b, 4000, kt=kt, seed=seed)
    df = bar_free_energy(w_f, w_r, kt=kt)
    exact = harmonic_free_energy_difference(a, b, kt)
    err = bar_error(w_f, w_r, df, kt=kt)
    assert abs(df - exact) < max(6.0 * err, 0.05)


# --------------------------------------------------------------- sampling


def test_sample_window_md_matches_exact_distribution():
    w = HarmonicWindow(k=4.0, x0=1.0)
    samples = sample_window(w, 800, kt=1.0, seed=3, method="md")
    assert samples.mean() == pytest.approx(1.0, abs=0.1)
    assert samples.std() == pytest.approx(0.5, rel=0.25)


def test_sample_window_unknown_method():
    with pytest.raises(ConfigurationError):
        sample_window(HarmonicWindow(1.0), 10, 1.0, 0, method="magic")


def test_run_fep_window_payload():
    payload = {
        "k": 1.0,
        "x0": 0.0,
        "k_next": 2.0,
        "x0_next": 0.0,
        "k_prev": 0.5,
        "x0_prev": 0.0,
        "n_samples": 100,
        "kt": 1.0,
        "seed": 7,
        "window_index": 3,
    }
    out = run_fep_window(payload)
    assert out["window_index"] == 3
    assert len(out["work_to_next"]) == 100
    assert len(out["work_to_prev"]) == 100
    # stiffer neighbour costs energy on average; softer neighbour gains
    assert out["work_to_next"].mean() > 0
    assert out["work_to_prev"].mean() < 0
