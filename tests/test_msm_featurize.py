"""Tests for trajectory featurisation."""

import numpy as np
import pytest

from repro.md.models.villin import build_villin
from repro.msm.cluster import KCentersClustering
from repro.msm.featurize import (
    ContactFeaturizer,
    DihedralFeaturizer,
    FeatureUnion,
    PairwiseDistanceFeaturizer,
    villin_featurizer,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@pytest.fixture(scope="module")
def villin():
    return build_villin("fast")


def test_distance_featurizer_values():
    pairs = np.array([[0, 1], [0, 2]])
    coords = np.array([[[0.0, 0, 0], [3.0, 0, 0], [0.0, 4.0, 0]]])
    feat = PairwiseDistanceFeaturizer(pairs).transform(coords)
    np.testing.assert_allclose(feat, [[3.0, 4.0]])


def test_distance_featurizer_shape(villin):
    pairs = villin.go_force.pairs[:10]
    frames = np.stack([villin.native, villin.native * 1.1])
    feat = PairwiseDistanceFeaturizer(pairs).transform(frames)
    assert feat.shape == (2, 10)


def test_contact_featurizer_native_is_all_ones(villin):
    feat = ContactFeaturizer(
        villin.go_force.pairs, villin.go_force.r0
    ).transform(villin.native)
    assert feat.shape == (1, len(villin.go_force.pairs))
    assert np.all(feat > 0.95)


def test_contact_featurizer_extended_is_near_zero(villin):
    extended = villin.extended_state(rng=0).positions
    feat = ContactFeaturizer(
        villin.go_force.pairs, villin.go_force.r0
    ).transform(extended)
    assert feat.mean() < 0.1


def test_contact_featurizer_monotone_in_distance():
    featurizer = ContactFeaturizer(np.array([[0, 1]]), np.array([0.5]))
    close = featurizer.transform(
        np.array([[[0.0, 0, 0], [0.45, 0, 0]]])
    )[0, 0]
    far = featurizer.transform(
        np.array([[[0.0, 0, 0], [0.9, 0, 0]]])
    )[0, 0]
    assert close > 0.9 > 0.1 > far


def test_dihedral_featurizer_unit_circle(villin):
    quads = villin.topology.dihedrals
    feat = DihedralFeaturizer(quads).transform(villin.native)
    cos_part = feat[0, 0::2]
    sin_part = feat[0, 1::2]
    np.testing.assert_allclose(cos_part**2 + sin_part**2, 1.0, atol=1e-12)


def test_feature_union_concatenates(villin):
    union = FeatureUnion(
        [
            PairwiseDistanceFeaturizer(villin.go_force.pairs[:5]),
            DihedralFeaturizer(villin.topology.dihedrals[:3]),
        ]
    )
    assert union.n_features == 5 + 6
    feat = union.transform(villin.native)
    assert feat.shape == (1, 11)


def test_villin_featurizer_separates_folded_from_unfolded(villin):
    featurizer = villin_featurizer(villin)
    native_feat = featurizer.transform(villin.native)
    ext_feat = featurizer.transform(villin.extended_state(rng=1).positions)
    assert np.linalg.norm(native_feat - ext_feat) > 1.0


def test_feature_space_clustering_separates_states(villin):
    """K-centers in feature space puts folded and unfolded frames in
    different clusters."""
    rng = RandomStream(2)
    folded = villin.native[None] + rng.normal(
        scale=0.01, size=(10, villin.n_residues, 3)
    )
    unfolded = np.stack(
        [villin.extended_state(rng=10 + k).positions for k in range(10)]
    )
    frames = np.concatenate([folded, unfolded])
    features = villin_featurizer(villin).transform(frames)
    result = KCentersClustering(n_clusters=2, seed=0).fit(features)
    folded_labels = set(result.assignments[:10].tolist())
    unfolded_labels = set(result.assignments[10:].tolist())
    assert folded_labels.isdisjoint(unfolded_labels)


def test_validation():
    with pytest.raises(ConfigurationError):
        PairwiseDistanceFeaturizer(np.zeros((0, 2)))
    with pytest.raises(ConfigurationError):
        ContactFeaturizer(np.array([[0, 1]]), np.array([0.5, 0.6]))
    with pytest.raises(ConfigurationError):
        ContactFeaturizer(np.array([[0, 1]]), np.array([0.5]), tolerance=0.0)
    with pytest.raises(ConfigurationError):
        DihedralFeaturizer(np.zeros((0, 4)))
    with pytest.raises(ConfigurationError):
        FeatureUnion([])
    with pytest.raises(ConfigurationError):
        PairwiseDistanceFeaturizer(np.array([[0, 1]])).transform(np.zeros(5))
