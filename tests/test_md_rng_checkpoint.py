"""Tests for RNG-state checkpointing: stochastic runs resume identically."""

import numpy as np
import pytest

from repro.md import Checkpoint, LangevinIntegrator, MDEngine, MDTask, Simulation
from repro.md.models.villin import build_villin
from repro.util.serialization import decode_message, encode_message


def test_langevin_rng_state_roundtrip():
    integ = LangevinIntegrator(0.02, 300.0, rng=5)
    state = integ.rng_state
    draws_a = integ.rng.generator.standard_normal(10)
    integ.rng_state = state
    draws_b = integ.rng.generator.standard_normal(10)
    np.testing.assert_array_equal(draws_a, draws_b)


def test_langevin_checkpoint_resume_bitwise():
    """Split Langevin run equals continuous run exactly — the property
    that makes failure recovery reproducible."""
    model = build_villin("fast")

    def fresh():
        state = model.native_state(rng=1, temperature=300.0)
        return Simulation(
            model.system, LangevinIntegrator(0.02, 300.0, rng=2), state
        )

    continuous = fresh()
    continuous.run(400)

    split = fresh()
    split.run(150)
    chk = split.checkpoint()
    resumed = fresh()  # fresh integrator with a different phase...
    resumed.restore(chk)  # ...overwritten by the checkpointed rng state
    resumed.run(250)
    np.testing.assert_allclose(
        resumed.state.positions, continuous.state.positions, atol=1e-12
    )


def test_rng_state_survives_wire_format():
    model = build_villin("fast")
    sim = Simulation(
        model.system,
        LangevinIntegrator(0.02, 300.0, rng=3),
        model.native_state(rng=4),
    )
    sim.run(50)
    chk = sim.checkpoint()
    payload = decode_message(encode_message(chk.to_payload()))
    restored = Checkpoint.from_payload(payload)
    assert restored.rng_state == chk.rng_state


def test_engine_langevin_recovery_bitwise():
    """Cross-worker recovery: resumed run matches the uninterrupted one."""

    def task(checkpoint=None):
        return MDTask(
            model="villin-fast", n_steps=500, integrator="langevin",
            seed=7, checkpoint=checkpoint,
        )

    engine = MDEngine(segment_steps=100)
    continuous = engine.run(task())
    partial = engine.run(task(), abort_after_steps=200)
    finished = engine.run(task(checkpoint=partial.checkpoint))
    np.testing.assert_allclose(
        finished.checkpoint["positions"],
        continuous.checkpoint["positions"],
        atol=1e-12,
    )
    np.testing.assert_allclose(
        finished.checkpoint["velocities"],
        continuous.checkpoint["velocities"],
        atol=1e-12,
    )


def test_checkpoint_without_rng_state_still_restores():
    model = build_villin("fast")
    sim = Simulation(
        model.system,
        LangevinIntegrator(0.02, 300.0, rng=3),
        model.native_state(rng=4),
    )
    chk = sim.checkpoint()
    chk.rng_state = None
    sim.restore(chk)  # must not raise
    sim.run(10)
