"""Tests for the sweep harness, its report and the CLI verb."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.lab.sweep import (
    SweepConfig,
    SweepResult,
    _compare_cell,
    render_report,
    run_sweep,
)
from repro.util.errors import ConfigurationError

#: Small enough to run in a couple of seconds, big enough to exercise
#: several generations of the full stack per cell.
TINY = dict(
    schemes=("uniform", "min-counts"),
    steps_per_command=(200,),
    n_trajectories=(4,),
    total_steps=4800,
)


# ------------------------------------------------------------- config


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SweepConfig(schemes=())
    with pytest.raises(ConfigurationError):
        SweepConfig(schemes=("uniform",), baseline="uncertainty")
    with pytest.raises(ConfigurationError):
        SweepConfig(steps_per_command=(0,))
    with pytest.raises(ConfigurationError):
        SweepConfig(n_trajectories=(0,))
    with pytest.raises(ConfigurationError):
        SweepConfig(total_steps=0)
    with pytest.raises(ConfigurationError):
        SweepConfig(schemes=("magic",))


def test_config_normalises_legacy_scheme_names():
    with pytest.warns(DeprecationWarning):
        config = SweepConfig(schemes=("even", "adaptive"), baseline="even")
    assert config.schemes == ("uniform", "uncertainty")
    assert config.baseline == "uniform"


def test_generations_respect_the_budget():
    config = SweepConfig(**TINY)
    assert config.generations_for(200, 4) == 6
    assert config.generations_for(10**6, 1) == 2  # floor of two


# ---------------------------------------------------------- the sweep


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(SweepConfig(seed=1, **TINY))


def test_sweep_runs_every_cell(tiny_sweep):
    assert len(tiny_sweep.cells) == 2
    for cell in tiny_sweep.cells:
        assert cell["status"] == "complete"
        assert cell["n_generations"] == 6
        assert cell["simulated_steps"] == 4800
        assert len(cell["history"]) == cell["n_generations"]
    assert {c["scheme"] for c in tiny_sweep.cells} == {"uniform", "min-counts"}


def test_sweep_is_deterministic(tiny_sweep):
    again = run_sweep(SweepConfig(seed=1, **TINY))
    assert again.to_json() == tiny_sweep.to_json()


def test_sweep_json_is_strict_and_loadable(tiny_sweep):
    payload = json.loads(tiny_sweep.to_json())
    assert payload["kind"] == "adaptive-strategy-sweep"
    assert payload["version"] == 1
    assert payload["config"]["schemes"] == ["uniform", "min-counts"]
    # no NaN/inf anywhere: json.dumps with allow_nan=False round-trips
    json.dumps(payload, allow_nan=False)


def test_capped_time_and_speedup_helpers(tiny_sweep):
    config = tiny_sweep.config
    for scheme in config.schemes:
        capped = tiny_sweep.capped_time(scheme)
        assert 0 < capped <= config.total_steps
    assert tiny_sweep.speedup("uniform") is None  # baseline has no entry
    with pytest.raises(ConfigurationError):
        tiny_sweep.capped_time("uniform", steps=999)


# ----------------------------------------------- comparisons + report


def _result_with_times(times):
    config = SweepConfig(schemes=tuple(times), **{
        k: v for k, v in TINY.items() if k != "schemes"
    })
    cells = [
        {
            "scheme": scheme,
            "steps_per_command": 200,
            "n_trajectories": 4,
            "n_generations": 6,
            "simulated_steps": 4800,
            "status": "complete",
            "time_to_threshold": tt,
            "final": {"stationary_tv": 0.2},
            "history": [],
        }
        for scheme, tt in times.items()
    ]
    comparisons = [_compare_cell(config, cells, 200, 4)]
    return SweepResult(config=config, cells=cells, comparisons=comparisons)


def test_compare_cell_scoring():
    result = _result_with_times(
        {"uniform": 4000.0, "min-counts": 2000.0, "uncertainty": None}
    )
    comparison = result.comparisons[0]
    assert comparison["winner"] == "min-counts"
    assert comparison["speedup_vs_baseline"]["min-counts"] == 2.0
    # censored scheme: scored at the budget cap -> an upper bound
    assert comparison["speedup_vs_baseline"]["uncertainty"] == pytest.approx(
        4000.0 / 4800.0
    )


def test_compare_cell_censored_baseline():
    result = _result_with_times({"uniform": None, "uncertainty": 2400.0})
    comparison = result.comparisons[0]
    # baseline censored: the ratio is a lower bound, never inf/None
    assert comparison["speedup_vs_baseline"]["uncertainty"] == 2.0
    both = _result_with_times({"uniform": None, "uncertainty": None})
    assert both.comparisons[0]["speedup_vs_baseline"]["uncertainty"] is None
    assert both.comparisons[0]["winner"] is None


def test_report_renders_and_annotates_bounds():
    report = render_report(
        _result_with_times({"uniform": None, "uncertainty": 2400.0})
    )
    assert "# Adaptive-strategy sweep report" in report
    assert "Which scheme wins where" in report
    assert ">=2.00x" in report  # censored-baseline bound annotated
    assert "never" in report

    report = render_report(
        _result_with_times({"uniform": 4000.0, "uncertainty": None})
    )
    assert "<=0.83x" in report


def test_report_of_real_sweep(tiny_sweep):
    report = render_report(tiny_sweep)
    for scheme in tiny_sweep.config.schemes:
        assert f"`{scheme}`" in report
    assert "markov-ala20" in report


# ---------------------------------------------------------------- CLI


def test_cli_lab_sweep_writes_artifacts(tmp_path, capsys):
    json_path = tmp_path / "bench.json"
    report_path = tmp_path / "report.md"
    code = cli_main([
        "lab", "sweep",
        "--schemes", "uniform", "min-counts",
        "--steps-per-command", "200",
        "--trajs", "4",
        "--total-steps", "2400",
        "--seed", "7",
        "--json-out", str(json_path),
        "--out", str(report_path),
    ])
    assert code == 0
    payload = json.loads(json_path.read_text())
    assert payload["config"]["seed"] == 7
    assert payload["config"]["total_steps"] == 2400
    assert "# Adaptive-strategy sweep report" in report_path.read_text()
    assert "[lab]" in capsys.readouterr().out
