"""Tests for adaptive-sampling weights, validation tools and the MSM facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msm.adaptive import (
    allocate_starts,
    even_weights,
    mincounts_weights,
    uncertainty_weights,
    weighted_counts_weights,
)
from repro.msm.model import MarkovStateModel
from repro.msm.validation import (
    chapman_kolmogorov,
    implied_timescale_scan,
    markovian_lag,
)
from repro.util.errors import ConfigurationError, EstimationError
from repro.util.rng import RandomStream


def markov_chain_dtraj(T, n_steps, seed=0, start=0):
    rng = np.random.default_rng(seed)
    states = np.empty(n_steps, dtype=int)
    s = start
    for t in range(n_steps):
        states[t] = s
        s = rng.choice(len(T), p=T[s])
    return states


# -------------------------------------------------------------- weights


def test_even_weights_uniform_over_visited():
    C = np.array([[5, 1, 0], [2, 3, 0], [0, 0, 0]])
    w = even_weights(C)
    np.testing.assert_allclose(w, [0.5, 0.5, 0.0])


def test_even_weights_rejects_empty():
    with pytest.raises(EstimationError):
        even_weights(np.zeros((3, 3)))


def test_mincounts_prefers_rare_states():
    C = np.array([[100, 1], [1, 2]])
    w = mincounts_weights(C)
    assert w[1] > w[0]
    assert w.sum() == pytest.approx(1.0)


def test_uncertainty_weights_prefer_undersampled_rows():
    # state 0 heavily sampled, state 1 sparsely sampled, same split
    C = np.array([[500, 500], [5, 5]])
    w = uncertainty_weights(C)
    assert w[1] > w[0]
    assert w.sum() == pytest.approx(1.0)


def test_uncertainty_weights_deterministic_rows_low():
    # state 0 always goes to itself (no uncertainty after many counts);
    # state 1 is a coin flip with the same number of counts
    C = np.array([[1000, 0], [500, 500]])
    w = uncertainty_weights(C)
    assert w[1] > w[0]


def test_uncertainty_weights_destination_only_state_max():
    """A state seen only as a destination is maximally uncertain."""
    C = np.array([[5, 5, 2], [5, 5, 0], [0, 0, 0]])
    w = uncertainty_weights(C)
    assert w[2] == pytest.approx(w.max())


def test_weights_reject_nonsquare():
    for fn in (even_weights, mincounts_weights, uncertainty_weights):
        with pytest.raises(EstimationError):
            fn(np.ones((2, 3)))


def test_allocate_starts_exact_total():
    w = np.array([0.5, 0.3, 0.2])
    alloc = allocate_starts(w, 10, rng=0)
    assert alloc.sum() == 10
    assert alloc[0] == 5 and alloc[1] == 3 and alloc[2] == 2


def test_allocate_starts_rounding():
    w = np.array([1.0, 1.0, 1.0])
    alloc = allocate_starts(w, 10, rng=0)
    assert alloc.sum() == 10
    assert set(alloc.tolist()) <= {3, 4}


def test_allocate_starts_zero_trajectories():
    assert allocate_starts(np.array([1.0]), 0).sum() == 0


def test_allocate_starts_validation():
    with pytest.raises(ConfigurationError):
        allocate_starts(np.array([-1.0, 2.0]), 5)
    with pytest.raises(ConfigurationError):
        allocate_starts(np.array([1.0]), -2)
    with pytest.raises(ConfigurationError):
        allocate_starts(np.array([np.nan, 1.0]), 5)


def test_allocate_starts_all_zero_falls_back_to_uniform():
    alloc = allocate_starts(np.zeros(4), 8, rng=0)
    assert alloc.sum() == 8
    assert set(alloc.tolist()) == {2}


@settings(max_examples=40)
@given(
    st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_allocation_exact_and_proportional(weights, n, seed):
    w = np.asarray(weights)
    alloc = allocate_starts(w, n, rng=seed)
    assert alloc.sum() == n
    assert np.all(alloc >= 0)
    # never deviates from the real-valued quota by 1 or more
    quota = w / w.sum() * n
    assert np.all(np.abs(alloc - quota) < 1.0 + 1e-9)


# ------------------------------------------- weight-function properties

_count_matrices = st.integers(min_value=2, max_value=7).flatmap(
    lambda k: st.lists(
        st.lists(st.integers(min_value=0, max_value=50), min_size=k, max_size=k),
        min_size=k,
        max_size=k,
    )
).map(np.asarray).filter(lambda c: (c.sum(axis=0) + c.sum(axis=1)).max() > 0)

_weight_functions = [
    even_weights,
    mincounts_weights,
    uncertainty_weights,
    lambda c: weighted_counts_weights(c, n=0.5),
    lambda c: weighted_counts_weights(c, n=2.0),
]


@settings(max_examples=40)
@given(_count_matrices, st.integers(min_value=0, max_value=4))
def test_property_weights_normalised_on_visited_support(counts, which):
    w = _weight_functions[which](counts.astype(float))
    visited = (counts.sum(axis=0) + counts.sum(axis=1)) > 0
    assert np.all(w >= 0)
    assert w.sum() == pytest.approx(1.0)
    # support restricted to visited states
    assert not np.any(w[~visited] > 0)


@settings(max_examples=40)
@given(_count_matrices)
def test_property_weighted_counts_monotone_in_exponent(counts):
    counts = counts.astype(float)
    visits = counts.sum(axis=0) + counts.sum(axis=1)
    visited = np.flatnonzero(visits > 0)
    rare = visited[np.argmin(visits[visited])]
    popular = visited[np.argmax(visits[visited])]
    ratios = []
    for n in (0.0, 0.5, 1.0, 2.0, 4.0):
        w = weighted_counts_weights(counts, n=n)
        ratios.append(w[rare] / w[popular])
    # concentrating harder on the least-visited state as n grows
    assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))


def test_weighted_counts_endpoints_match_named_schemes():
    counts = np.array([[5.0, 1.0, 0.0], [2.0, 8.0, 0.0], [0.0, 0.0, 0.0]])
    np.testing.assert_allclose(
        weighted_counts_weights(counts, n=0.0), even_weights(counts)
    )
    np.testing.assert_allclose(
        weighted_counts_weights(counts, n=1.0), mincounts_weights(counts)
    )
    with pytest.raises(ConfigurationError):
        weighted_counts_weights(counts, n=-0.5)


# ------------------------------------------------------------ validation


def test_implied_timescale_scan_flat_for_markovian_chain():
    """Data generated by a true Markov chain plateaus immediately."""
    T = np.array([[0.95, 0.05], [0.1, 0.9]])
    dtrajs = [markov_chain_dtraj(T, 30000, seed=k) for k in range(3)]
    scan = implied_timescale_scan(dtrajs, 2, lags=[1, 2, 4], frame_time=1.0, k=1)
    t1, t2, t4 = scan[1][0], scan[2][0], scan[4][0]
    assert t1 == pytest.approx(t2, rel=0.15)
    assert t1 == pytest.approx(t4, rel=0.2)
    assert markovian_lag(scan) == 1


def test_implied_timescale_scan_empty_lags():
    with pytest.raises(EstimationError):
        implied_timescale_scan([np.array([0, 1])], 2, lags=[])


def test_markovian_lag_needs_two():
    with pytest.raises(EstimationError):
        markovian_lag({1: np.array([5.0])})


def test_chapman_kolmogorov_small_for_markov_chain():
    T = np.array([[0.9, 0.1], [0.2, 0.8]])
    dtrajs = [markov_chain_dtraj(T, 50000, seed=k) for k in range(2)]
    ck = chapman_kolmogorov(dtrajs, 2, lag=1, factors=(2, 3))
    assert ck[2] < 0.05
    assert ck[3] < 0.05


def test_chapman_kolmogorov_validation():
    with pytest.raises(EstimationError):
        chapman_kolmogorov([np.array([0, 1, 0])], 2, lag=0)
    with pytest.raises(EstimationError):
        chapman_kolmogorov([np.array([0, 1, 0, 1])], 2, lag=1, factors=(1,))


# ------------------------------------------------------------ MSM facade


def test_msm_fit_two_state():
    T_true = np.array([[0.9, 0.1], [0.2, 0.8]])
    dtrajs = [markov_chain_dtraj(T_true, 20000, seed=3)]
    msm = MarkovStateModel(lag=1).fit(dtrajs)
    np.testing.assert_allclose(msm.transition_matrix, T_true, atol=0.03)
    np.testing.assert_allclose(
        msm.stationary_distribution(), [2 / 3, 1 / 3], atol=0.05
    )


def test_msm_equilibrium_state_prediction():
    T_true = np.array([[0.9, 0.1], [0.02, 0.98]])  # state 1 dominates
    dtrajs = [markov_chain_dtraj(T_true, 20000, seed=4)]
    msm = MarkovStateModel(lag=1).fit(dtrajs)
    assert msm.equilibrium_state() == 1


def test_msm_trims_disconnected_states():
    # state 2 never appears
    dtrajs = [np.array([0, 1, 0, 1, 0, 1])]
    msm = MarkovStateModel(lag=1).fit(dtrajs, n_states=3)
    assert msm.n_states == 2
    np.testing.assert_array_equal(msm.active_set, [0, 1])
    np.testing.assert_array_equal(msm.map_to_active([0, 2]), [0, -1])


def test_msm_reversible_mode():
    T_true = np.array([[0.9, 0.1], [0.2, 0.8]])
    dtrajs = [markov_chain_dtraj(T_true, 20000, seed=5)]
    msm = MarkovStateModel(lag=1, reversible=True).fit(dtrajs)
    from repro.msm.estimation import detailed_balance_violation

    assert (
        detailed_balance_violation(
            msm.transition_matrix, msm.stationary_distribution()
        )
        < 1e-8
    )


def test_msm_lag_time_units():
    msm = MarkovStateModel(lag=4, frame_time=0.5)
    assert msm.lag_time == 2.0


def test_msm_requires_fit():
    with pytest.raises(EstimationError):
        MarkovStateModel().stationary_distribution()


def test_msm_invalid_params():
    with pytest.raises(EstimationError):
        MarkovStateModel(lag=0)
    with pytest.raises(EstimationError):
        MarkovStateModel(frame_time=0.0)


def test_msm_timescale_recovery():
    p, q = 0.05, 0.1
    T_true = np.array([[1 - p, p], [q, 1 - q]])
    dtrajs = [markov_chain_dtraj(T_true, 60000, seed=6)]
    msm = MarkovStateModel(lag=1, frame_time=2.0).fit(dtrajs)
    expected = -2.0 / np.log(1 - p - q)
    assert msm.timescales(1)[0] == pytest.approx(expected, rel=0.15)


def test_msm_mfpt_positive():
    T_true = np.array([[0.9, 0.1], [0.2, 0.8]])
    dtrajs = [markov_chain_dtraj(T_true, 20000, seed=7)]
    msm = MarkovStateModel(lag=1).fit(dtrajs)
    m = msm.mfpt(np.array([False, True]))
    assert m[0] > 0 and m[1] == 0


# ------------------------------------------------------------ bootstrap


def test_bootstrap_timescales_recovers_truth():
    from repro.msm.validation import bootstrap_timescales

    T = np.array([[0.95, 0.05], [0.1, 0.9]])
    dtrajs = [markov_chain_dtraj(T, 4000, seed=k) for k in range(8)]
    mean, std = bootstrap_timescales(
        dtrajs, 2, lag=1, k=1, n_bootstrap=30, rng=0
    )
    expected = -1.0 / np.log(1 - 0.05 - 0.1)
    assert mean[0] == pytest.approx(expected, rel=0.3)
    assert std[0] > 0
    # true value within a few bootstrap sigmas
    assert abs(mean[0] - expected) < 4 * std[0] + 1.0


def test_bootstrap_timescales_error_shrinks_with_data():
    from repro.msm.validation import bootstrap_timescales

    T = np.array([[0.95, 0.05], [0.1, 0.9]])
    short = [markov_chain_dtraj(T, 500, seed=k) for k in range(6)]
    long = [markov_chain_dtraj(T, 20000, seed=k) for k in range(6)]
    _, std_short = bootstrap_timescales(short, 2, lag=1, k=1, rng=1)
    _, std_long = bootstrap_timescales(long, 2, lag=1, k=1, rng=1)
    assert std_long[0] < std_short[0]


def test_bootstrap_timescales_validation():
    from repro.msm.validation import bootstrap_timescales
    from repro.util.errors import EstimationError

    with pytest.raises(EstimationError):
        bootstrap_timescales([np.array([0, 1])], 2, lag=1)
    with pytest.raises(EstimationError):
        bootstrap_timescales(
            [np.array([0, 1]), np.array([1, 0])], 2, lag=1, n_bootstrap=1
        )
