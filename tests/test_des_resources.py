"""Tests for DES resources, stores and monitors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Monitor, PriorityStore, Resource, Store
from repro.des.resources import filtered_get
from repro.des.monitor import TimeWeightedMonitor


def run_jobs(capacity, jobs):
    """Run (amount, duration) jobs against one resource; return finish log."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    log = []

    def job(env, name, amount, duration):
        yield res.request(amount)
        yield env.timeout(duration)
        res.release(amount)
        log.append((name, env.now))

    for i, (amount, duration) in enumerate(jobs):
        env.process(job(env, i, amount, duration))
    env.run()
    return log, res


def test_resource_serialises_when_full():
    log, _ = run_jobs(1, [(1, 5), (1, 5)])
    assert log == [(0, 5.0), (1, 10.0)]


def test_resource_parallel_when_capacity_allows():
    log, _ = run_jobs(2, [(1, 5), (1, 5)])
    assert log == [(0, 5.0), (1, 5.0)]


def test_resource_multi_unit_request():
    # job0 takes all 4 cores for 10; job1 (2 cores) must wait.
    log, _ = run_jobs(4, [(4, 10), (2, 5)])
    assert log == [(0, 10.0), (1, 15.0)]


def test_resource_fifo_no_overtake():
    # Head-of-line big request blocks later small ones (no starvation).
    log, _ = run_jobs(4, [(3, 10), (4, 1), (1, 1)])
    assert log[0] == (0, 10.0)
    assert log[1] == (1, 11.0)
    assert log[2] == (2, 12.0)


def test_resource_released_fully():
    _, res = run_jobs(3, [(2, 4), (3, 1), (1, 2)])
    assert res.in_use == 0
    assert res.available == 3


def test_resource_request_exceeding_capacity_rejected():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(3)


def test_resource_over_release_rejected():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.release(1)


def test_resource_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        yield store.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(9)
        store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [9.0]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    for p in [5, 1, 3]:
        store.put((p, f"cmd{p}"))
    got = []

    def consumer(env):
        while len(got) < 3:
            item = yield store.get()
            got.append(item[0])

    env.process(consumer(env))
    env.run()
    assert got == [1, 3, 5]


def test_priority_store_len_and_items():
    env = Environment()
    store = PriorityStore(env)
    store.put((2, "b"))
    store.put((1, "a"))
    assert len(store) == 2
    assert store.items[0][0] == 1


def test_filtered_get_plain_store():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    assert filtered_get(store, lambda x: x % 2 == 1) == 1
    assert len(store) == 4


def test_filtered_get_priority_store_keeps_heap():
    env = Environment()
    store = PriorityStore(env)
    for p in [4, 2, 6, 1]:
        store.put((p, "x"))
    assert filtered_get(store, lambda item: item[0] > 3) == (4, "x")
    assert store.items == [(1, "x"), (2, "x"), (6, "x")]


def test_filtered_get_no_match_returns_none():
    env = Environment()
    store = Store(env)
    store.put(2)
    assert filtered_get(store, lambda x: x > 10) is None
    assert len(store) == 1


def test_monitor_mean_max():
    m = Monitor("queue")
    for t, v in [(0, 1), (1, 3), (2, 5)]:
        m.record(t, v)
    assert m.mean() == pytest.approx(3.0)
    assert m.maximum() == pytest.approx(5.0)
    assert len(m) == 3


def test_monitor_empty_raises():
    with pytest.raises(ValueError):
        Monitor().mean()


def test_time_weighted_monitor():
    m = TimeWeightedMonitor("util")
    m.record(0, 0.0)   # 0 for 10 units
    m.record(10, 1.0)  # 1 for 10 units
    assert m.time_average(until=20) == pytest.approx(0.5)


def test_time_weighted_monitor_until_in_past_rejected():
    m = TimeWeightedMonitor()
    m.record(5, 1.0)
    with pytest.raises(ValueError):
        m.time_average(until=1.0)


@settings(max_examples=30)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),
            st.floats(min_value=0.1, max_value=10),
        ),
        min_size=1,
        max_size=15,
    ),
)
def test_property_resource_conservation(capacity, jobs):
    """All jobs complete and capacity is fully restored afterwards."""
    jobs = [(min(a, capacity), d) for a, d in jobs]
    log, res = run_jobs(capacity, jobs)
    assert len(log) == len(jobs)
    assert res.in_use == 0
    assert res.queue_length == 0
