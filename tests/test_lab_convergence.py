"""Tests for the ConvergenceChecker and time-to-threshold scoring."""

import numpy as np
import pytest

from repro.lab.convergence import (
    ConvergenceChecker,
    ConvergenceReport,
    time_to_threshold,
)
from repro.md.models.markov_chain import alanine_chain_spec
from repro.util.errors import ConfigurationError


def _exact_trajectory(spec, n_steps, seed=0, start=None):
    """Sample one trajectory of embedding frames from the exact chain."""
    rng = np.random.default_rng(seed)
    state = spec.default_start if start is None else start
    frames = [spec.position_of(state)]
    for _ in range(n_steps):
        state = spec.sample_next(state, rng.random())
        frames.append(spec.position_of(state))
    return np.stack(frames)


# ---------------------------------------------------- time_to_threshold


def test_time_to_threshold_interpolates_the_crossing():
    history = [
        {"simulated_steps": 100, "stationary_tv": 0.8},
        {"simulated_steps": 200, "stationary_tv": 0.6},
        {"simulated_steps": 300, "stationary_tv": 0.2},
    ]
    # crossing 0.4 happens midway between 0.6@200 and 0.2@300
    assert time_to_threshold(history, threshold=0.4) == pytest.approx(250.0)
    # already under threshold at the first record: no interpolation
    assert time_to_threshold(history, threshold=0.9) == 100.0
    assert time_to_threshold(history, threshold=0.05) is None
    assert time_to_threshold([], threshold=0.5) is None
    with pytest.raises(ConfigurationError):
        time_to_threshold(history, threshold=0.0)


def test_report_wraps_history():
    history = [
        {"simulated_steps": 100, "stationary_tv": 0.5},
        {"simulated_steps": 200, "stationary_tv": 0.1},
    ]
    report = ConvergenceReport(history=history)
    np.testing.assert_allclose(report.metric("stationary_tv"), [0.5, 0.1])
    assert report.time_to_threshold(threshold=0.3) is not None
    assert report.final()["simulated_steps"] == 200
    assert ConvergenceReport().final() == {}


# ---------------------------------------------------------- the checker


def test_checker_converges_on_exact_data():
    spec = alanine_chain_spec(n_states=8, barrier=1.5, tilt=0.5)
    checker = ConvergenceChecker(spec)
    trajs = [
        _exact_trajectory(spec, 20000, seed=s, start=s % spec.n_states)
        for s in range(4)
    ]
    record = checker.evaluate(
        trajs, lag_frames=2, frame_stride=1, generation=0,
        simulated_steps=80000,
    )
    assert record["n_states_discovered"] == spec.n_states
    assert record["discovered_fraction"] == 1.0
    assert record["stationary_tv"] < 0.05
    assert record["timescale_rel_error"] < 0.35
    assert record["frobenius_error"] < 0.2
    assert record["timescale_true"] == pytest.approx(checker.truth_timescale)
    assert checker.history == [record]
    assert checker.report().final() == record


def test_checker_error_shrinks_with_more_data():
    spec = alanine_chain_spec(n_states=8, barrier=1.5, tilt=0.5)
    checker = ConvergenceChecker(spec)
    short = checker.evaluate(
        [_exact_trajectory(spec, 300, seed=1)], lag_frames=2,
        generation=0, simulated_steps=300,
    )
    long = checker.evaluate(
        [_exact_trajectory(spec, 30000, seed=1)], lag_frames=2,
        generation=1, simulated_steps=30000,
    )
    assert long["stationary_tv"] < short["stationary_tv"]
    assert long["frobenius_error"] < short["frobenius_error"]


def test_checker_worst_case_scores_on_no_data():
    spec = alanine_chain_spec(n_states=8)
    checker = ConvergenceChecker(spec)
    record = checker.evaluate([], lag_frames=2, generation=0)
    assert record["n_states_discovered"] == 0
    assert record["stationary_tv"] == 1.0
    assert record["timescale_rel_error"] == 1.0
    assert np.isnan(record["timescale_estimate"])


def test_checker_penalises_undiscovered_mass():
    spec = alanine_chain_spec()
    checker = ConvergenceChecker(spec)
    # a trajectory stuck in the shallow start basin never sees the
    # deep basins, which hold most of the stationary mass
    stuck = np.repeat(spec.position_of(0), 50, axis=0)
    record = checker.evaluate([stuck], lag_frames=1, generation=0)
    assert record["n_states_discovered"] <= 2
    assert record["stationary_tv"] > 0.8


def test_frame_stride_scales_the_lag():
    spec = alanine_chain_spec(n_states=8, barrier=1.5, tilt=0.5)
    traj = _exact_trajectory(spec, 20000, seed=2)
    # frames recorded every step, compared at lag 4...
    a = ConvergenceChecker(spec).evaluate(
        [traj], lag_frames=4, frame_stride=1, generation=0
    )
    # ...must match frames recorded every 2 steps compared at lag 2
    b = ConvergenceChecker(spec).evaluate(
        [traj[::2]], lag_frames=2, frame_stride=2, generation=0
    )
    assert a["timescale_true"] == b["timescale_true"]
    # same effective step lag, so similar estimates (different sample)
    assert abs(a["timescale_estimate"] - b["timescale_estimate"]) < (
        0.5 * a["timescale_estimate"]
    )
