"""Tests for structured logging."""

import io

from repro.util.logging import Level, Logger, LogRecord, stderr_logger


def test_records_capture_clock():
    times = iter([1.0, 2.0, 3.0])
    logger = Logger(clock=lambda: next(times))
    logger.info("a")
    logger.info("b")
    assert [r.time for r in logger.records] == [1.0, 2.0]


def test_level_threshold():
    logger = Logger(level=Level.WARNING)
    assert logger.debug("nope") is None
    assert logger.info("nope") is None
    assert logger.warning("yes") is not None
    assert logger.error("yes") is not None
    assert len(logger.records) == 2


def test_fields_recorded():
    logger = Logger()
    record = logger.info("queued", command="gen0_r1", cores=24)
    assert record.fields == {"command": "gen0_r1", "cores": 24}
    assert "gen0_r1" in str(record)


def test_child_logger_shares_sink():
    root = Logger(component="server")
    queue_logger = root.child("queue")
    queue_logger.info("pushed")
    assert len(root.records) == 1
    assert root.records[0].component == "server.queue"


def test_filter_by_component_prefix():
    root = Logger(component="srv")
    root.child("queue").info("a")
    root.child("match").info("b")
    root.info("c")
    assert len(root.filter(component="srv.queue")) == 1
    assert len(root.filter(component="srv")) == 3


def test_filter_by_level():
    logger = Logger(level=Level.DEBUG)
    logger.debug("d")
    logger.error("e")
    assert len(logger.filter(level=Level.ERROR)) == 1


def test_stream_echo():
    stream = io.StringIO()
    logger = Logger(stream=stream)
    logger.info("hello", key="value")
    text = stream.getvalue()
    assert "hello" in text and "key=value" in text


def test_stderr_logger_constructs():
    logger = stderr_logger("x", level=Level.ERROR)
    assert logger.component == "x"
    assert logger.level == Level.ERROR


def test_record_str_format():
    record = LogRecord(12.0, Level.WARNING, "net", "slow link")
    text = str(record)
    assert "WARNING" in text and "net" in text and "slow link" in text
