"""End-to-end chaos runs: the paper's recovery story under injected faults.

The acceptance scenario injects a worker crash mid-segment *and* a
link partition, and the failure_recovery swarm must still complete
with every recovery invariant green.  Each scenario is exercised
across several fixed seeds (plus ``CHAOS_SEED`` from the environment,
so CI's chaos matrix can widen coverage), and re-running a seed must
reproduce the identical event transcript.
"""

import os

import pytest

from repro.core.events import EventKind
from repro.core.project import ProjectStatus
from repro.net.protocol import MessageType
from repro.testing import FaultPlan, Invariants, run_swarm_under_faults

SEEDS = sorted({0, 1, 2, int(os.environ.get("CHAOS_SEED", "0"))})


def crash_and_partition(plan: FaultPlan) -> None:
    """The acceptance fault mix: dead worker + flapping uplink."""
    plan.crash_worker("w0", at_segment=2)
    plan.partition("srv", "w1", after_index=8, until_index=14)


# ------------------------------------------------------------- acceptance


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_plus_partition_completes_with_invariants_green(seed):
    scenario = run_swarm_under_faults(
        configure=crash_and_partition, seed=seed
    )
    runner = scenario.runner
    project = runner._projects["swarm"]
    assert project.status is ProjectStatus.COMPLETE
    assert scenario.workers[0].crashed
    assert scenario.server.requeued_after_failure >= 1
    Invariants(runner).assert_ok()


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_reproduces_identical_event_log(seed):
    first = run_swarm_under_faults(configure=crash_and_partition, seed=seed)
    second = run_swarm_under_faults(configure=crash_and_partition, seed=seed)
    assert first.transcript == second.transcript
    assert first.chaos == second.chaos
    assert sorted(first.controller.finished) == sorted(
        second.controller.finished
    )


def test_crashed_workers_command_resumes_from_checkpoint():
    scenario = run_swarm_under_faults(configure=crash_and_partition, seed=0)
    finished = dict(scenario.controller.finished)
    # the command the dead worker started was NOT restarted from zero:
    # the finishing worker executed only the remaining steps
    resumed = [s for s in finished.values() if s < 5000]
    assert resumed, "no command resumed from a checkpoint"
    requeues = scenario.runner.events.filter(kind=EventKind.COMMAND_REQUEUED)
    assert any(r.details.get("has_checkpoint") for r in requeues)


@pytest.mark.parametrize("seed", SEEDS)
def test_probabilistic_heartbeat_drops_survived(seed):
    def configure(plan):
        plan.drop(
            message_type=MessageType.HEARTBEAT, probability=0.3, count=6
        )

    scenario = run_swarm_under_faults(configure=configure, seed=seed)
    assert scenario.runner._projects["swarm"].status is ProjectStatus.COMPLETE
    Invariants(scenario.runner).assert_ok()


# --------------------------------------------- exactly-once under duplicates


def test_duplicated_results_complete_exactly_once():
    def configure(plan):
        plan.duplicate(message_type=MessageType.COMMAND_RESULT)

    scenario = run_swarm_under_faults(configure=configure, seed=5)
    server = scenario.server
    assert server.duplicates_dropped >= 1
    Invariants(scenario.runner).assert_ok()
    completed = scenario.runner.events.filter(
        kind=EventKind.COMMAND_COMPLETED
    )
    assert len(completed) == 3  # one per command despite duplication


def test_false_death_then_late_result_deduplicated():
    """A worker whose uplink goes deaf is falsely declared dead; its
    command is requeued and finished by a peer.  When the original
    worker's parked result finally arrives it must be dropped, not
    double-completed."""

    def configure(plan):
        plan.drop(src="w1", message_type=MessageType.HEARTBEAT)
        plan.drop(src="w1", message_type=MessageType.COMMAND_RESULT, count=8)

    scenario = run_swarm_under_faults(configure=configure, seed=11)
    runner = scenario.runner
    assert runner._projects["swarm"].status is ProjectStatus.COMPLETE
    assert scenario.server.duplicates_dropped == 1
    dead = runner.events.filter(kind=EventKind.WORKER_DEAD)
    assert [r.details["worker"] for r in dead] == ["w1"]
    dropped = runner.events.filter(kind=EventKind.DUPLICATE_RESULT_DROPPED)
    assert len(dropped) == 1
    Invariants(runner).assert_ok()


# ---------------------------------------------------------- revive semantics


def test_partition_heals_and_worker_revives():
    """A long partition gets the worker declared dead; once the link
    heals its heartbeat revives it — logged exactly once per outage."""

    def configure(plan):
        plan.partition("srv", "w1", after_index=6, until_index=40)

    scenario = run_swarm_under_faults(configure=configure, seed=2)
    runner = scenario.runner
    events = runner.events
    dead = [
        r
        for r in events.filter(kind=EventKind.WORKER_DEAD)
        if r.details["worker"] == "w1"
    ]
    revived = [
        r
        for r in events.filter(kind=EventKind.WORKER_REVIVED)
        if r.details["worker"] == "w1"
    ]
    assert len(dead) == 1
    assert len(revived) == 1
    ordered = events.all()
    assert ordered.index(revived[0]) > ordered.index(dead[0])
    Invariants(runner).assert_ok()


# --------------------------------------------------------------- degradation


def test_slow_worker_takes_more_segments_but_finishes():
    def configure(plan):
        plan.slow_worker("w0", factor=0.5)

    scenario = run_swarm_under_faults(configure=configure, seed=4)
    assert scenario.workers[0].throttle == 0.5
    Invariants(scenario.runner).assert_ok()
    # half-size segments means more checkpoint heartbeats per command
    slow_segments = [r.segments for r in scenario.workers[0].history]
    assert all(s >= 9 for s in slow_segments)  # 5000 steps / 500-step segments


def test_retry_traffic_visible_after_chaos_run():
    scenario = run_swarm_under_faults(configure=crash_and_partition, seed=0)
    rows = {row["link"]: row for row in scenario.network.traffic_report()}
    retry_rows = [k for k in rows if k.startswith("endpoint:")]
    assert retry_rows, "retries should surface in the traffic report"
    assert scenario.network.retries_total > 0
