"""Tests for energy minimisation."""

import numpy as np
import pytest

from repro.md.minimize import fire_minimize, steepest_descent
from repro.md.models.villin import build_villin
from repro.md.system import System
from repro.md.forcefield.bonded import HarmonicBondForce
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@pytest.fixture(scope="module")
def villin():
    return build_villin("fast")


def perturbed(villin, scale=0.05, seed=0):
    rng = RandomStream(seed)
    return villin.native + rng.normal(scale=scale, size=villin.native.shape)


def test_sd_reduces_energy(villin):
    start = perturbed(villin)
    e_start = villin.system.potential_energy(start)
    result = steepest_descent(villin.system, start, tolerance=50.0)
    assert result.energy < e_start
    assert result.max_force < 50.0
    assert result.converged


def test_sd_recovers_native_basin(villin):
    start = perturbed(villin, scale=0.03, seed=1)
    result = steepest_descent(
        villin.system, start, tolerance=5.0, max_steps=5000
    )
    e_native = villin.system.potential_energy(villin.native)
    # relaxed energy close to the native minimum
    assert result.energy < e_native + 20.0


def test_sd_dimer_exact():
    system = System(
        masses=[1.0, 1.0],
        forces=[HarmonicBondForce([[0, 1]], [1.0], [100.0])],
    )
    start = np.array([[0.0, 0.0, 0.0], [1.4, 0.0, 0.0]])
    result = steepest_descent(system, start, tolerance=1e-4, max_steps=5000)
    d = np.linalg.norm(result.positions[1] - result.positions[0])
    assert d == pytest.approx(1.0, abs=1e-4)
    assert result.converged


def test_sd_does_not_mutate_input(villin):
    start = perturbed(villin)
    snapshot = start.copy()
    steepest_descent(villin.system, start, tolerance=100.0, max_steps=50)
    np.testing.assert_array_equal(start, snapshot)


def test_sd_invalid_params(villin):
    with pytest.raises(ConfigurationError):
        steepest_descent(villin.system, villin.native, tolerance=0.0)


def test_fire_reduces_energy(villin):
    start = perturbed(villin, seed=2)
    e_start = villin.system.potential_energy(start)
    result = fire_minimize(villin.system, start, tolerance=50.0)
    assert result.energy < e_start
    assert result.converged


def test_fire_at_least_as_deep_as_sd(villin):
    start = perturbed(villin, seed=3)
    sd = steepest_descent(villin.system, start, tolerance=10.0, max_steps=800)
    fire = fire_minimize(villin.system, start, tolerance=10.0, max_steps=800)
    assert fire.energy <= sd.energy + 5.0


def test_fire_invalid_params(villin):
    with pytest.raises(ConfigurationError):
        fire_minimize(villin.system, villin.native, dt_start=0.05, dt_max=0.01)


def test_already_minimal_converges_immediately(villin):
    result = steepest_descent(villin.system, villin.native, tolerance=1.0)
    assert result.converged
    assert result.n_steps == 0
