"""Tests for the monitoring dashboard."""

import pytest

from repro.core import Project, ProjectRunner
from repro.core.monitoring import render_html, render_text, status_snapshot
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

from tests.test_core_controllers import OneShotController


@pytest.fixture()
def finished_runner():
    net = Network(seed=0)
    server = CopernicusServer("srv", net)
    worker = Worker("w0", net, server="srv", platform=SMPPlatform(cores=2))
    net.connect("srv", "w0")
    worker.announce(0.0)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("demo"), OneShotController(n_commands=2))
    runner.run()
    return runner


def test_snapshot_structure(finished_runner):
    snap = status_snapshot(finished_runner)
    assert snap["projects"][0]["project"] == "demo"
    assert snap["projects"][0]["status"] == "complete"
    assert snap["servers"][0]["name"] == "srv"
    assert snap["total_bytes"] > 0
    assert snap["messages"] > 0


def test_snapshot_worker_liveness(finished_runner):
    snap = status_snapshot(finished_runner)
    assert snap["servers"][0]["workers"] == {"w0": True}


def test_render_text_contains_key_facts(finished_runner):
    text = render_text(status_snapshot(finished_runner))
    assert "demo" in text
    assert "srv" in text
    assert "workers alive" in text
    assert "bytes" in text


def test_render_html_is_wellformed(finished_runner):
    page = render_html(status_snapshot(finished_runner))
    assert page.startswith("<!doctype html>")
    assert "<title>Copernicus status</title>" in page
    assert "demo" in page
    assert page.count("<table>") == 2


def test_render_html_escapes(finished_runner):
    snap = status_snapshot(finished_runner)
    snap["projects"][0]["project"] = "<script>alert(1)</script>"
    page = render_html(snap)
    assert "<script>alert" not in page
