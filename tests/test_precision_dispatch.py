"""The redesigned precision/dispatch API.

Three layers under test:

- **Validation**: unknown ``precision=``/``dispatch=`` values raise a
  typed :class:`ConfigurationError` at every entry point, and
  ``"float32"`` is rejected wherever bit-identity is contractually
  required (resume checkpoints, batched stacks, coalesced commands).
- **Dispatch policy**: ``"auto"`` resolves against the measured
  crossover, the chosen mode is recorded in
  :class:`~repro.md.engine.BatchedMDResult`, and forced serial vs
  forced batched stay bit-identical (the policy is purely speed).
- **Float32 tolerances**: the opt-in fast path meets the documented
  force-error and energy-drift bounds of :mod:`repro.md.precision`
  (tolerance tests — deliberately *not* bit-identity tests; see
  TESTING.md).
"""

import numpy as np
import pytest

from repro import api
from repro.api import Ensemble, Project
from repro.core.command import Command
from repro.md.dispatch import (
    BATCH_DISPATCH_MIN_REPLICAS,
    MAX_AUTO_BATCH,
    resolve_dispatch,
)
from repro.md.engine import BatchedMDResult, BatchedMDTask, MDEngine, MDTask
from repro.md.precision import (
    FLOAT32_ENERGY_DRIFT_KT,
    FLOAT32_FORCE_RTOL,
    FusedForceEvaluator,
)
from repro.md.simulation import Simulation
from repro.util.errors import ConfigurationError
from repro.util.units import KB
from repro.worker.coalesce import coalesce_key

MODEL = "double-well"
STEPS = 60


def _task(seed=0, **kwargs):
    kwargs.setdefault("model", MODEL)
    kwargs.setdefault("n_steps", STEPS)
    kwargs.setdefault("report_interval", 20)
    return MDTask(seed=seed, task_id=f"t{seed}", **kwargs)


def _command(task):
    return Command(
        command_id=task.task_id,
        project_id="p",
        executable="mdrun",
        payload=task.to_payload(),
    )


# -- validation ---------------------------------------------------------------


def test_unknown_precision_and_dispatch_rejected_everywhere():
    with pytest.raises(ConfigurationError):
        _task(precision="float16")
    with pytest.raises(ConfigurationError):
        _task(dispatch="vectorised")
    with pytest.raises(ConfigurationError):
        Simulation.configure(model=MODEL, steps=10, precision="double")
    with pytest.raises(ConfigurationError):
        Simulation.configure(model=MODEL, steps=10, dispatch="gpu")
    with pytest.raises(ConfigurationError):
        Ensemble(model=MODEL, precision="float16")
    with pytest.raises(ConfigurationError):
        Ensemble(model=MODEL, dispatch="sometimes")


def test_float32_cannot_resume_from_a_checkpoint():
    checkpoint = {
        "positions": [[0.0]],
        "velocities": [[0.0]],
        "time": 0.0,
        "step": 0,
    }
    _task(checkpoint=checkpoint)  # float64 resume is fine
    with pytest.raises(ConfigurationError, match="checkpoint"):
        _task(precision="float32", checkpoint=checkpoint)


def test_batched_stack_rejects_float32():
    tasks = [_task(seed=r, precision="float32") for r in range(2)]
    with pytest.raises(ConfigurationError, match="float32"):
        BatchedMDTask.from_tasks(tasks, batch_id="b")


def test_coalesce_refuses_float32_and_forced_serial():
    assert coalesce_key(_command(_task())) is not None
    assert coalesce_key(_command(_task(precision="float32"))) is None
    assert coalesce_key(_command(_task(dispatch="serial"))) is None
    # dispatch participates in the key: auto and batched don't merge
    assert coalesce_key(_command(_task())) != coalesce_key(
        _command(_task(dispatch="batched"))
    )


def test_payloads_round_trip_and_default():
    task = _task(precision="float32", dispatch="serial")
    restored = MDTask.from_payload(task.to_payload())
    assert (restored.precision, restored.dispatch) == ("float32", "serial")

    legacy = task.to_payload()
    del legacy["precision"], legacy["dispatch"]
    restored = MDTask.from_payload(legacy)
    assert (restored.precision, restored.dispatch) == ("float64", "auto")

    btask = BatchedMDTask.from_tasks(
        [_task(seed=r, dispatch="batched") for r in range(2)], batch_id="b"
    )
    assert BatchedMDTask.from_payload(btask.to_payload()).dispatch == "batched"


# -- dispatch policy ----------------------------------------------------------


def test_resolve_dispatch_follows_the_measured_crossover():
    for n in range(1, BATCH_DISPATCH_MIN_REPLICAS):
        assert resolve_dispatch("auto", n) == "serial"
    assert resolve_dispatch("auto", BATCH_DISPATCH_MIN_REPLICAS) == "batched"
    assert resolve_dispatch("serial", 64) == "serial"
    assert resolve_dispatch("batched", 1) == "batched"


def test_auto_dispatch_mode_is_recorded_in_the_result():
    engine = MDEngine()
    small = BatchedMDTask.from_tasks([_task(seed=0)], batch_id="small")
    large = BatchedMDTask.from_tasks(
        [_task(seed=r) for r in range(8)], batch_id="large"
    )
    small_result = engine.run_batched(small)
    large_result = engine.run_batched(large)
    assert small_result.dispatch == "serial"
    assert large_result.dispatch == "batched"
    # observability survives the wire
    restored = BatchedMDResult.from_payload(small_result.to_payload())
    assert restored.dispatch == "serial"


def test_forced_serial_and_forced_batched_are_bit_identical():
    engine = MDEngine()
    serial = engine.run_batched(
        BatchedMDTask.from_tasks(
            [_task(seed=r, dispatch="serial") for r in range(4)], batch_id="s"
        )
    )
    batched = engine.run_batched(
        BatchedMDTask.from_tasks(
            [_task(seed=r, dispatch="batched") for r in range(4)], batch_id="b"
        )
    )
    assert (serial.dispatch, batched.dispatch) == ("serial", "batched")
    for serial_result, batched_result in zip(serial.results, batched.results):
        assert np.array_equal(serial_result.frames, batched_result.frames)


# -- the facades --------------------------------------------------------------


def test_ensemble_threads_precision_and_dispatch_into_tasks():
    ensemble = Ensemble(
        model=MODEL, n_replicas=2, steps=STEPS,
        precision="float32", dispatch="serial",
    )
    for task in ensemble.tasks():
        assert (task.precision, task.dispatch) == ("float32", "serial")
    for command in ensemble.commands("p"):
        assert command.payload["precision"] == "float32"
        assert coalesce_key(command) is None


def test_project_run_restamps_ensembles():
    project = Project(
        "p", ensembles=[Ensemble(model=MODEL, n_replicas=2, steps=STEPS)]
    )
    outcome = project.run(max_cycles=2000, dispatch="serial")
    assert outcome.status == "complete"
    assert all(e.dispatch == "serial" for e in project.ensembles)
    with pytest.raises(ConfigurationError):
        project.run(precision="float128")


def test_project_run_float32_end_to_end():
    ensemble = Ensemble(
        model=MODEL, n_replicas=2, steps=STEPS, precision="float32"
    )
    outcome = Project("p32", ensembles=[ensemble]).run(max_cycles=2000)
    assert outcome.status == "complete"
    assert len(outcome.ensemble_results(ensemble)) == 2


def test_custom_controller_projects_default_to_the_full_batch_cap():
    class _NullController:
        def on_project_start(self, project):
            return []

        def on_command_finished(self, project, command, result):
            return []

        def is_complete(self, project):
            return True

    project = Project("c", controller=_NullController())
    assert project._auto_batch_capacity() == MAX_AUTO_BATCH


def test_simulation_configure_float32_runs_in_single_precision():
    simulation = Simulation.configure(
        model="lj-fluid",
        integrator="verlet",
        steps=20,
        precision="float32",
        model_params={"n_particles": 27},
    )
    assert simulation.precision == "float32"
    assert simulation.state.positions.dtype == np.float32
    simulation.run()
    assert simulation.state.positions.dtype == np.float32
    assert simulation.state.velocities.dtype == np.float32


def test_fused_evaluator_double_buffers_previous_forces():
    simulation = Simulation.configure(
        model="lj-fluid",
        integrator="verlet",
        steps=1,
        precision="float32",
        model_params={"n_particles": 27},
    )
    evaluator = simulation.system
    assert isinstance(evaluator, FusedForceEvaluator)
    positions = simulation.state.positions
    _, first = evaluator.energy_forces(positions)
    held = first.copy()
    evaluator.energy_forces(positions + np.float32(0.01))
    # The call in between must not clobber the previously returned
    # buffer — integrators hold it across the in-step force refresh.
    assert np.array_equal(first, held)


# -- float32 tolerance bounds -------------------------------------------------


def _configured(model, precision, model_params=None):
    return Simulation.configure(
        model=model,
        integrator="verlet",
        steps=500,
        report_interval=0,
        precision=precision,
        model_params=model_params or {},
    )


@pytest.mark.parametrize(
    "model,model_params",
    [("villin-fast", {}), ("lj-fluid", {"n_particles": 64})],
)
def test_float32_forces_meet_the_documented_bound(model, model_params):
    ref = _configured(model, "float64", model_params)
    fast = _configured(model, "float32", model_params)
    _, f64 = ref.system.energy_forces(ref.state.positions)
    _, f32 = fast.system.energy_forces(fast.state.positions)
    error = np.linalg.norm(f32.astype(np.float64) - f64)
    scale = np.linalg.norm(f64)
    assert scale > 0
    assert error / scale < FLOAT32_FORCE_RTOL


@pytest.mark.parametrize(
    "model,model_params",
    [("villin-fast", {}), ("lj-fluid", {"n_particles": 64})],
)
def test_float32_energy_drift_meets_the_documented_bound(model, model_params):
    def drift_kt(precision):
        simulation = _configured(model, precision, model_params)
        start = simulation.total_energy()
        simulation.run()
        end = simulation.total_energy()
        per_particle = abs(end - start) / simulation.system.n_atoms
        return per_particle / (KB * 300.0)

    assert drift_kt("float32") <= drift_kt("float64") + FLOAT32_ENERGY_DRIFT_KT
