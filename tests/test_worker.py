"""Tests for workers: platforms, executables, execution, crash recovery."""

import numpy as np
import pytest

from repro.core.command import Command
from repro.md.engine import MDTask
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import (
    ExecutableRegistry,
    MPISimPlatform,
    SMPPlatform,
    Worker,
    default_registry,
    run_executable,
)
from repro.util.errors import ConfigurationError


# --------------------------------------------------------------- platform


def test_smp_platform_detect_explicit():
    info = SMPPlatform(cores=8).detect()
    assert info.cores == 8
    assert info.nodes == 1
    assert info.name == "smp"


def test_smp_platform_autodetect():
    info = SMPPlatform().detect()
    assert info.cores >= 1


def test_smp_platform_invalid():
    with pytest.raises(ConfigurationError):
        SMPPlatform(cores=0)


def test_mpi_platform_detect():
    info = MPISimPlatform(nodes=4, cores_per_node=24).detect()
    assert info.cores == 96
    assert info.nodes == 4
    assert info.interconnect == "infiniband"


def test_mpi_platform_invalid():
    with pytest.raises(ConfigurationError):
        MPISimPlatform(nodes=0, cores_per_node=4)


# ------------------------------------------------------------- executables


def test_default_registry_has_builtin_executables():
    registry = default_registry()
    assert "mdrun" in registry.names
    assert "fepsample" in registry.names


def test_registry_subset():
    registry = ExecutableRegistry(["mdrun"])
    assert registry.names == ["mdrun"]
    with pytest.raises(ConfigurationError):
        registry.run("fepsample", {})


def test_registry_unknown_name():
    with pytest.raises(ConfigurationError):
        ExecutableRegistry(["notathing"])


def test_run_executable_unknown():
    with pytest.raises(ConfigurationError):
        run_executable("ghost", {})


def test_mdrun_executable_runs():
    task = MDTask(model="muller-brown", n_steps=200, seed=0, task_id="t")
    result, completed = run_executable("mdrun", task.to_payload())
    assert completed
    assert result["steps_completed"] == 200


def test_mdrun_executable_abort_returns_checkpoint():
    task = MDTask(model="muller-brown", n_steps=1000, seed=0, task_id="t")
    result, completed = run_executable("mdrun", task.to_payload(), 300)
    assert not completed
    assert result["checkpoint"]["step"] == 300


def test_fepsample_executable_runs():
    payload = {"k": 1.0, "k_next": 2.0, "n_samples": 50, "kt": 1.0, "seed": 1}
    result, completed = run_executable("fepsample", payload)
    assert completed
    assert len(result["work_to_next"]) == 50


# ----------------------------------------------------------------- worker


def make_rig(cores=2, segment_steps=300):
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=10.0)
    worker = Worker(
        "w0",
        net,
        server="srv",
        platform=SMPPlatform(cores=cores),
        segment_steps=segment_steps,
    )
    net.connect("srv", "w0")
    return net, server, worker


def submit_md(server, cid="c0", n_steps=600, model="muller-brown"):
    results = []
    if not server.hosts("p"):
        server.host_project("p", lambda c, r: results.append((c.command_id, r)))
    task = MDTask(model=model, n_steps=n_steps, seed=1, task_id=cid)
    server.submit_commands(
        [Command(command_id=cid, project_id="p", executable="mdrun", payload=task.to_payload())]
    )
    return results


def test_worker_announce_registers_capabilities():
    net, server, worker = make_rig(cores=4)
    worker.announce(0.0)
    assert server.worker_caps["w0"].cores == 4
    assert "mdrun" in server.worker_caps["w0"].executables


def test_worker_full_cycle_completes_command():
    net, server, worker = make_rig()
    results = submit_md(server)
    worker.announce(0.0)
    assert worker.work_once(now=1.0) == 1
    assert len(results) == 1
    assert results[0][1]["completed"]
    assert results[0][1]["steps_completed"] == 600


def test_worker_segments_merge_frames():
    """Frames from checkpointed segments form one continuous trajectory."""
    net, server, worker = make_rig(segment_steps=200)
    results = submit_md(server, n_steps=600)
    worker.announce(0.0)
    worker.work_once(now=1.0)
    result = results[0][1]
    times = np.asarray(result["times"])
    assert np.all(np.diff(times) > 0), "duplicate or unordered frames"
    # report interval 100, 600 steps -> frames at 0,100,...,600
    assert len(times) == 7
    assert result["steps_completed"] == 600


def test_worker_heartbeats_during_segments():
    net, server, worker = make_rig(segment_steps=200)
    submit_md(server, n_steps=600)
    worker.announce(0.0)
    worker.work_once(now=3.0)
    assert server.monitor.is_alive("w0")


def test_worker_crash_hook_kills_mid_command():
    net, server, worker = make_rig(segment_steps=200)
    results = submit_md(server, n_steps=1000)
    worker.announce(0.0)
    worker.set_crash_hook(lambda cid, segment: segment == 2)
    done = worker.work_once(now=1.0)
    assert done == 0
    assert worker.crashed
    assert results == []
    # but checkpoints were heartbeaten before death
    chk = server.monitor.checkpoint_for("w0", "p::c0")
    assert chk is not None and chk["step"] == 400


def test_crashed_worker_command_recovered_by_second_worker():
    """The paper's recovery path: another client continues from the
    checkpoint after the first worker dies."""
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=10.0)
    w0 = Worker("w0", net, server="srv", platform=SMPPlatform(cores=1), segment_steps=200)
    w1 = Worker("w1", net, server="srv", platform=SMPPlatform(cores=1), segment_steps=200)
    net.connect("srv", "w0")
    net.connect("srv", "w1")
    results = []
    server.host_project("p", lambda c, r: results.append(r))
    task = MDTask(model="muller-brown", n_steps=1000, seed=2, task_id="c0")
    server.submit_commands(
        [Command("c0", "p", "mdrun", task.to_payload())]
    )
    w0.announce(0.0)
    w1.announce(0.0)
    w0.set_crash_hook(lambda cid, seg: seg == 2)  # dies at step 400
    assert w0.work_once(now=1.0) == 0
    # w0 silent; w1 stays alive; failure detected after 2x interval
    w1.heartbeat(20.0)
    dead = server.check_liveness(now=25.0)
    assert dead == ["w0"]
    # w1 picks the command up and finishes from step 400
    assert w1.work_once(now=26.0) == 1
    assert len(results) == 1
    assert results[0]["completed"]
    assert results[0]["checkpoint"]["step"] == 1000
    # only the remaining 600 steps were redone by w1
    assert results[0]["steps_completed"] == 600


def test_worker_multiple_commands_in_workload():
    net, server, worker = make_rig(cores=2)
    results = submit_md(server, "c0")
    submit_md(server, "c1")
    worker.announce(0.0)
    assert worker.work_once(now=1.0) == 2
    assert {r[0] for r in results} == {"c0", "c1"}


def test_crashed_worker_requests_nothing():
    net, server, worker = make_rig()
    submit_md(server)
    worker.announce(0.0)
    worker.crash()
    assert worker.request_workload() == []
    assert worker.work_once(now=1.0) == 0


def test_worker_invalid_segment_steps():
    net = Network(seed=0)
    CopernicusServer("srv", net)
    with pytest.raises(ConfigurationError):
        Worker("w", net, server="srv", segment_steps=0)
