"""Tests for the command-line client."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_info_lists_inventory():
    code, text = run_cli(["info"])
    assert code == 0
    assert "villin-fast" in text
    assert "mdrun" in text
    assert "fepsample" in text


def test_scaling_table():
    code, text = run_cli(
        ["scaling", "--cores", "5000", "20000", "--cores-per-sim", "24", "96"]
    )
    assert code == 0
    assert "5000" in text and "20000" in text
    # the 20k/96 row carries the ~53% efficiency anchor
    for line in text.splitlines():
        if line.strip().startswith("20000") and " 96 " in line:
            assert "0.5" in line


def test_demo_fep_runs():
    code, text = run_cli(
        ["demo-fep", "--windows", "3", "--samples", "800",
         "--target-error", "0.1"]
    )
    assert code == 0
    assert "dF =" in text


def test_demo_msm_runs_muller_brown():
    code, text = run_cli(
        [
            "demo-msm",
            "--model", "muller-brown",
            "--starts", "2",
            "--trajs", "2",
            "--steps", "800",
            "--generations", "2",
        ]
    )
    assert code == 0
    assert "final MSM" in text
    assert "complete" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_demo_recovery_runs():
    code, text = run_cli(["demo-recovery", "--commands", "2", "--steps", "2000"])
    assert code == 0
    assert "requeued after failures: " in text
    assert "resumed from dead worker's checkpoint" in text


def test_demo_umbrella_runs():
    code, text = run_cli(["demo-umbrella", "--windows", "9", "--samples", "800"])
    assert code == 0
    assert "WHAM basin dF" in text


def test_obs_metrics_prometheus_dump():
    code, text = run_cli(["obs", "metrics", "--scenario", "swarm"])
    assert code == 0
    assert "# TYPE repro_net_messages_total counter" in text
    assert "repro_server_commands_submitted_total" in text


def test_obs_metrics_jsonl(tmp_path):
    import json

    path = tmp_path / "metrics.jsonl"
    code, text = run_cli(
        ["obs", "metrics", "--format", "jsonl", "--out", str(path)]
    )
    assert code == 0
    lines = path.read_text().strip().splitlines()
    assert all(json.loads(line)["name"] for line in lines)


def test_obs_trace_validates_and_writes(tmp_path):
    import json

    from repro.obs import validate_chrome_trace

    path = tmp_path / "trace.json"
    code, _ = run_cli(
        ["obs", "trace", "--scenario", "straggler", "--out", str(path)]
    )
    assert code == 0
    trace = json.loads(path.read_text())
    assert validate_chrome_trace(trace) == []
    assert any(e["name"] == "worker.execute" for e in trace["traceEvents"])


def test_obs_timeline_report():
    code, text = run_cli(["obs", "timeline", "--scenario", "straggler"])
    assert code == 0
    assert "command lifecycle timeline" in text
    assert "critical path" in text
    assert "[speculated]" in text
