"""Consistent-hash ring properties: uniformity and minimal churn.

The two promises that make a hash ring worth having over ``hash(key)
% n``: keys spread evenly across shards (within a tolerance set by the
virtual-node count), and membership changes strand almost no keys —
a join or leave moves only the ~K/n keys adjacent to the changed
node's points, everyone else keeps their shard.
"""

import pytest

from repro.net.sharding import DEFAULT_REPLICAS, HashRing, ShardRouter, stable_hash
from repro.util.errors import ConfigurationError, UnknownShardError

KEYS = [f"project-{i}" for i in range(2000)]


def test_stable_hash_is_process_independent():
    # literal expectation pins the BLAKE2b layout: any change to the
    # hash breaks every deployed shard placement
    assert stable_hash("tenant-a") == stable_hash("tenant-a")
    assert stable_hash("tenant-a") != stable_hash("tenant-b")
    assert 0 <= stable_hash("x") < 2**64


def test_routing_is_deterministic_across_instances():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s0", "s1", "s2"])
    assert a.assignments(KEYS) == b.assignments(KEYS)


def test_insertion_order_does_not_change_routing():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s2", "s0", "s1"])
    assert a.assignments(KEYS) == b.assignments(KEYS)


@pytest.mark.parametrize("n_nodes", [2, 3, 5, 8])
def test_load_is_uniform_within_tolerance(n_nodes):
    ring = HashRing([f"s{i}" for i in range(n_nodes)])
    load = ring.load(KEYS)
    expected = len(KEYS) / n_nodes
    # 64 virtual nodes holds every shard within ~half-to-double of
    # fair share for realistic shard counts; a plain (non-virtual)
    # ring routinely lands 5x off
    for node, count in load.items():
        assert count > expected * 0.5, (node, load)
        assert count < expected * 2.0, (node, load)


def test_every_node_owns_some_keys():
    ring = HashRing([f"s{i}" for i in range(6)])
    load = ring.load(KEYS)
    assert all(count > 0 for count in load.values()), load


@pytest.mark.parametrize("n_nodes", [3, 5, 10])
def test_join_moves_at_most_k_over_n_keys(n_nodes):
    before = HashRing([f"s{i}" for i in range(n_nodes)])
    old = before.assignments(KEYS)
    before.add("joiner")
    new = before.assignments(KEYS)
    moved = [k for k in KEYS if old[k] != new[k]]
    # the joiner takes ~K/(n+1); allow 2x for hash variance
    assert len(moved) <= 2 * len(KEYS) / (n_nodes + 1), len(moved)
    # every moved key moved TO the joiner — nobody else reshuffles
    assert all(new[k] == "joiner" for k in moved)


@pytest.mark.parametrize("n_nodes", [3, 5, 10])
def test_leave_moves_only_the_leavers_keys(n_nodes):
    ring = HashRing([f"s{i}" for i in range(n_nodes)])
    old = ring.assignments(KEYS)
    ring.remove("s0")
    new = ring.assignments(KEYS)
    for key in KEYS:
        if old[key] == "s0":
            assert new[key] != "s0"
        else:
            # survivors keep every key they had
            assert new[key] == old[key], key


def test_join_then_leave_restores_the_original_layout():
    ring = HashRing(["s0", "s1", "s2"])
    old = ring.assignments(KEYS)
    ring.add("transient")
    ring.remove("transient")
    assert ring.assignments(KEYS) == old


def test_replicas_tighten_the_spread():
    coarse = HashRing(["s0", "s1", "s2", "s3"], replicas=1)
    fine = HashRing(["s0", "s1", "s2", "s3"], replicas=DEFAULT_REPLICAS)

    def spread(ring):
        load = ring.load(KEYS)
        return max(load.values()) - min(load.values())

    assert spread(fine) < spread(coarse)


def test_ring_rejects_bad_membership():
    ring = HashRing(["s0"])
    with pytest.raises(ConfigurationError):
        ring.add("s0")  # duplicate
    with pytest.raises(ConfigurationError):
        ring.add("")
    with pytest.raises(ConfigurationError):
        ring.remove("ghost")
    with pytest.raises(ConfigurationError):
        HashRing(["s0"], replicas=0)
    empty = HashRing([])
    with pytest.raises(ConfigurationError):
        empty.node_for("anything")


def test_router_routes_and_plans():
    router = ShardRouter(["shard0", "shard1", "shard2"])
    assert router.route("alice") in router.shards
    plan = router.plan(["alice", "bob", "cara"])
    assert set(plan) == {"alice", "bob", "cara"}
    assert all(shard in router.shards for shard in plan.values())
    # routing is just the ring lookup — stable per project
    assert router.route("alice") == plan["alice"]


def test_router_rejects_empty_inputs():
    with pytest.raises(ConfigurationError):
        ShardRouter([])
    router = ShardRouter(["shard0"])
    with pytest.raises(ConfigurationError):
        router.route("")


def test_ring_remove_unknown_node_raises_typed_error():
    # the typed error subclasses ConfigurationError, so pre-existing
    # catch sites keep working while failover code can distinguish
    assert issubclass(UnknownShardError, ConfigurationError)
    ring = HashRing(["s0", "s1"])
    with pytest.raises(UnknownShardError):
        ring.remove("ghost")
    ring.remove("s1")
    with pytest.raises(UnknownShardError):
        ring.remove("s1")  # the ring itself is strict; no membership log


def test_router_double_remove_is_idempotent_unknown_is_typed():
    router = ShardRouter(["shard0", "shard1", "shard2"])
    router.remove_shard("shard1")
    assert "shard1" not in router.shards
    # a former member: removing again is a failover-safe no-op
    router.remove_shard("shard1")
    # a name that never was a member: typed refusal
    with pytest.raises(UnknownShardError):
        router.remove_shard("ghost")
    # re-adding re-arms strictness for the next removal cycle
    router.add_shard("shard1")
    assert "shard1" in router.shards
    router.remove_shard("shard1")
    router.remove_shard("shard1")
    assert sorted(router.shards) == ["shard0", "shard2"]
