"""Invariants 10-12 must be red on doctored multi-tenant histories.

Same philosophy as ``test_invariants.py``: a checker is only trusted
if it catches fabricated violations.  Each test here doctors exactly
one tenant-isolation / quota-ledger / aging promise and asserts the
checker names it.  Also covers the identity-scoping behaviour: a log
spanning projects must key commands by (project, command), so two
tenants reusing ``cmd0`` neither alias nor false-positive.
"""

from repro.core.command import Command
from repro.core.events import EventKind, EventLog
from repro.core.project import Project
from repro.server.fairshare import (
    FairSharePolicy,
    FairShareScheduler,
    TenantPolicy,
)
from repro.testing import Invariants


class FakeQueue:
    def __init__(self, commands=()):
        self._commands = list(commands)

    def commands(self):
        return list(self._commands)


class FakeServer:
    def __init__(self):
        self.name = "srv"
        self.queue = FakeQueue()
        self.assignments = {}
        self.requeued_after_failure = 0


class FakeRunner:
    def __init__(self, events=None, servers=None, projects=None):
        self.events = events or EventLog()
        self._servers = servers if servers is not None else [FakeServer()]
        self._projects = projects or {}


def cmd(tenant, cid):
    return Command(
        command_id=cid, project_id=tenant, executable="mdrun", payload={}
    )


def issue(log, pid, ids, t=0.0):
    log.record(t, EventKind.COMMANDS_ISSUED, pid, count=len(ids), ids=ids)


def complete(log, pid, cid, t=1.0):
    log.record(t, EventKind.COMMAND_COMPLETED, pid, command=cid)


# -- identity scoping ------------------------------------------------------

def test_two_tenants_sharing_a_command_id_do_not_false_positive():
    log = EventLog()
    issue(log, "p1", ["cmd0"])
    issue(log, "p2", ["cmd0"])
    complete(log, "p1", "cmd0")
    complete(log, "p2", "cmd0")
    # one completion each: NOT a double completion, nothing lost
    assert Invariants(FakeRunner(events=log)).check() == []


def test_scoped_in_flight_commands_are_not_lost():
    log = EventLog()
    issue(log, "p1", ["cmd0"])
    issue(log, "p2", ["cmd0"])
    complete(log, "p1", "cmd0")
    server = FakeServer()
    # the multi-tenant server keys assignments by scoped id and the
    # checker must read the command objects, not the keys
    server.assignments = {"w0": {"p2::cmd0": cmd("p2", "cmd0")}}
    assert Invariants(FakeRunner(events=log, servers=[server])).check() == []


def test_cross_tenant_loss_is_still_detected():
    log = EventLog()
    issue(log, "p1", ["cmd0"])
    issue(log, "p2", ["cmd0"])
    complete(log, "p1", "cmd0")  # p2's copy vanished
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("lost" in v and "p2::cmd0" in v for v in violations)


def test_deferred_commands_count_as_queued_not_lost():
    log = EventLog()
    issue(log, "p1", ["cmd0"])
    issue(log, "p2", ["cmd0"])
    complete(log, "p1", "cmd0")
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"p2": TenantPolicy(max_queued=1)})
    )
    scheduler.defer(cmd("p2", "cmd0"))
    server.fairshare = scheduler
    runner = FakeRunner(events=log, servers=[server])
    violations = [v for v in Invariants(runner).check() if "lost" in v]
    assert violations == []


# -- invariant 10: tenant isolation ---------------------------------------

def test_completion_delivered_to_wrong_tenant_detected():
    log = EventLog()
    issue(log, "p1", ["c0"])
    issue(log, "p2", ["other"])
    complete(log, "p2", "c0")  # p1's command completed under p2
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("cross-tenant leak" in v for v in violations)


def test_foreign_results_in_project_log_detected():
    log = EventLog()
    issue(log, "p1", ["c0"])
    issue(log, "p2", ["x0"])
    complete(log, "p1", "c0")
    complete(log, "p2", "x0")
    p1 = Project("p1", issued=1, completed=1)
    p1.results_log.append(("c0", {}))
    p1.results_log.append(("x0", {}))  # leaked payload from p2
    runner = FakeRunner(
        events=log, projects={"p1": p1, "p2": Project("p2", issued=1, completed=1)}
    )
    violations = Invariants(runner).check()
    assert any("never issued" in v and "x0" in v for v in violations)


def test_queued_work_for_unknown_tenant_detected():
    log = EventLog()
    issue(log, "p1", ["c0"])
    complete(log, "p1", "c0")
    server = FakeServer()
    server.queue = FakeQueue([cmd("stranger", "s0")])
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("unknown tenant 'stranger'" in v for v in violations)


def test_assigned_work_for_unknown_tenant_detected():
    log = EventLog()
    issue(log, "p1", ["c0"])
    complete(log, "p1", "c0")
    server = FakeServer()
    server.assignments = {"w0": {"stranger::s0": cmd("stranger", "s0")}}
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("unknown tenant 'stranger'" in v for v in violations)


# -- invariant 11: exact quota accounting ---------------------------------

def test_ledger_imbalance_detected():
    server = FakeServer()
    scheduler = FairShareScheduler()
    scheduler._note_dispatch(cmd("a", "c0"))
    scheduler.ledgers["a"].released = 1  # credit without a release
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(servers=[server])).check()
    assert any("ledger balance" in v for v in violations)


def test_quota_overrun_detected():
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(quota=1)})
    )
    # doctored history: two dispatches recorded against a quota of 1
    scheduler._note_dispatch(cmd("a", "c0"))
    scheduler._note_dispatch(cmd("a", "c1"))
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(servers=[server])).check()
    assert any("over quota" in v for v in violations)


def test_zero_quota_dispatch_detected():
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"banned": TenantPolicy(quota=0)})
    )
    scheduler._note_dispatch(cmd("banned", "c0"))
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(servers=[server])).check()
    assert any("zero-quota" in v for v in violations)


def test_deferral_ledger_event_mismatch_detected():
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(max_queued=1)})
    )
    scheduler.defer(cmd("a", "c0"))  # ledger says 1, log says 0
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(servers=[server])).check()
    assert any("deferrals but the event log records 0" in v for v in violations)


def test_release_event_mismatch_detected():
    log = EventLog()
    log.record(0.0, EventKind.ADMISSION_DEFERRED, "a", command="c0")
    log.record(1.0, EventKind.ADMISSION_RELEASED, "a", command="c0")
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(max_queued=1)})
    )
    scheduler.defer(cmd("a", "c0"))  # still pending, but the log
    server.fairshare = scheduler     # claims it was released
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("released deferrals" in v for v in violations)


def test_consistent_deferral_history_is_green():
    log = EventLog()
    log.record(0.0, EventKind.ADMISSION_DEFERRED, "a", command="c0")
    server = FakeServer()
    scheduler = FairShareScheduler(
        FairSharePolicy(tenants={"a": TenantPolicy(max_queued=1)})
    )
    scheduler.defer(cmd("a", "c0"))
    server.fairshare = scheduler
    assert Invariants(FakeRunner(events=log, servers=[server])).check() == []


# -- invariant 12: starvation-free aging ----------------------------------

def test_aging_violation_event_is_reported():
    log = EventLog()
    log.record(
        9.0, EventKind.AGING_VIOLATED, "starved",
        command="c0", server="srv", waited=4000.0,
    )
    server = FakeServer()
    scheduler = FairShareScheduler()
    scheduler.aging_violations = 1
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("bypassed after waiting" in v for v in violations)


def test_aging_counter_event_mismatch_detected():
    server = FakeServer()
    scheduler = FairShareScheduler()
    scheduler.aging_violations = 2  # counters claim bypasses the log lacks
    server.fairshare = scheduler
    violations = Invariants(FakeRunner(servers=[server])).check()
    assert any("aging violations" in v for v in violations)


def test_runner_without_fairshare_skips_tenancy_checks():
    # plain single-tenant doubles: invariants 10-12 have nothing to
    # check and stay silent
    log = EventLog()
    issue(log, "p", ["c0"])
    complete(log, "p", "c0")
    assert Invariants(FakeRunner(events=log)).check() == []
