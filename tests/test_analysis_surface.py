"""Tests for free-energy surface estimation."""

import numpy as np
import pytest

from repro.analysis.surface import FreeEnergySurface, free_energy_surface
from repro.md import LangevinIntegrator, Simulation
from repro.md.models.muller_brown import MINIMA, muller_brown_initial_state, muller_brown_system
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


def test_1d_gaussian_surface_quadratic():
    """Gaussian samples give a parabolic free energy: F = x^2/(2 sig^2)."""
    rng = RandomStream(0)
    sigma = 0.5
    samples = rng.normal(scale=sigma, size=200000)
    surface = free_energy_surface(samples, bins=41, ranges=((-1.5, 1.5),))
    (centers,) = surface.centers
    expected = centers**2 / (2 * sigma**2)
    expected -= expected.min()
    finite = np.isfinite(surface.free_energy)
    rmse = np.sqrt(np.mean((surface.free_energy[finite] - expected[finite]) ** 2))
    assert rmse < 0.1


def test_minimum_location_1d():
    rng = RandomStream(1)
    samples = rng.normal(loc=2.0, scale=0.3, size=50000)
    surface = free_energy_surface(samples, bins=30)
    assert surface.minimum_location()[0] == pytest.approx(2.0, abs=0.1)


def test_weights_shift_minimum():
    """Reweighting moves the apparent minimum."""
    rng = RandomStream(2)
    samples = np.concatenate([
        rng.normal(loc=-1.0, scale=0.2, size=5000),
        rng.normal(loc=1.0, scale=0.2, size=5000),
    ])
    # upweight the right basin 10x
    weights = np.where(samples > 0, 10.0, 1.0)
    surface = free_energy_surface(samples, weights=weights, bins=40)
    assert surface.minimum_location()[0] > 0


def test_2d_muller_brown_minima_recovered():
    """Sampling the Muller-Brown surface recovers its deep minima."""
    system = muller_brown_system(scale=0.05)
    state = muller_brown_initial_state(minimum=1, temperature=300.0, rng=3)
    sim = Simulation(
        system,
        LangevinIntegrator(0.01, 300.0, friction=2.0, rng=4),
        state,
        report_interval=5,
    )
    sim.run(60000)
    points = sim.trajectory.frames[:, 0, :]
    surface = free_energy_surface(points, bins=30)
    x_min, y_min = surface.minimum_location()
    # the global minimum lands near one of the two deep MB minima
    d = np.linalg.norm(MINIMA[:2] - np.array([x_min, y_min]), axis=1)
    assert d.min() < 0.35


def test_barrier_between_two_basins():
    rng = RandomStream(5)
    samples = np.concatenate([
        rng.normal(loc=-1.0, scale=0.2, size=20000),
        rng.normal(loc=1.0, scale=0.2, size=20000),
        rng.uniform(-1, 1, size=500),   # thin barrier sampling
    ])
    surface = free_energy_surface(samples, bins=50)
    barrier = surface.barrier_between((-1.0,), (1.0,))
    assert barrier > 1.0


def test_validation():
    with pytest.raises(ConfigurationError):
        free_energy_surface(np.zeros((0,)))
    with pytest.raises(ConfigurationError):
        free_energy_surface(np.zeros((5, 3)))
    with pytest.raises(ConfigurationError):
        free_energy_surface(np.zeros(5), weights=np.ones(3))
    with pytest.raises(ConfigurationError):
        free_energy_surface(np.zeros(5), weights=-np.ones(5))
    with pytest.raises(ConfigurationError):
        free_energy_surface(np.zeros(5), bins=1)
