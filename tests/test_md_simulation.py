"""Tests for the simulation driver, trajectories, checkpointing, engine."""

import numpy as np
import pytest

from repro.md import (
    Checkpoint,
    LangevinIntegrator,
    MDEngine,
    MDResult,
    MDTask,
    NoseHooverIntegrator,
    Simulation,
    Trajectory,
)
from repro.md.models.villin import build_villin
from repro.util.errors import ConfigurationError
from repro.util.serialization import decode_message, encode_message


@pytest.fixture(scope="module")
def villin_fast():
    return build_villin("fast")


def _make_sim(model, seed=0, report=50):
    state = model.native_state(rng=seed, temperature=300.0)
    return Simulation(
        model.system,
        LangevinIntegrator(0.02, 300.0, rng=seed + 100),
        state,
        report_interval=report,
    )


def test_simulation_records_frames(villin_fast):
    sim = _make_sim(villin_fast)
    sim.run(500)
    # initial frame + every 50 steps
    assert len(sim.trajectory) == 11
    assert sim.trajectory.times[0] == 0.0
    assert sim.trajectory.times[-1] == pytest.approx(500 * 0.02)


def test_simulation_negative_steps_rejected(villin_fast):
    sim = _make_sim(villin_fast)
    with pytest.raises(ConfigurationError):
        sim.run(-1)


def test_simulation_observers_called(villin_fast):
    sim = _make_sim(villin_fast, report=100)
    seen = []
    sim.add_observer(lambda state: seen.append(state.step))
    sim.run(300)
    assert seen == [0, 100, 200, 300]


def test_simulation_shape_mismatch_rejected(villin_fast):
    from repro.md.system import State

    bad_state = State(np.zeros((3, 3)), np.zeros((3, 3)))
    with pytest.raises(ConfigurationError):
        Simulation(villin_fast.system, LangevinIntegrator(0.02, 300.0), bad_state)


def test_checkpoint_resume_bitwise_for_deterministic_integrator(villin_fast):
    """Nosé-Hoover is deterministic: split run == continuous run exactly."""
    model = villin_fast

    def fresh_sim():
        state = model.native_state(rng=1, temperature=300.0)
        return Simulation(
            model.system, NoseHooverIntegrator(0.01, 300.0), state
        )

    continuous = fresh_sim()
    continuous.run(400)

    split = fresh_sim()
    split.run(150)
    chk = split.checkpoint()
    resumed = fresh_sim()
    resumed.restore(chk)
    resumed.run(250)

    np.testing.assert_allclose(
        resumed.state.positions, continuous.state.positions, atol=1e-10
    )
    assert resumed.state.step == continuous.state.step


def test_checkpoint_payload_roundtrip(villin_fast):
    sim = _make_sim(villin_fast)
    sim.run(100)
    chk = sim.checkpoint()
    payload = decode_message(encode_message(chk.to_payload()))
    restored = Checkpoint.from_payload(payload)
    np.testing.assert_array_equal(restored.positions, chk.positions)
    np.testing.assert_array_equal(restored.velocities, chk.velocities)
    assert restored.step == chk.step
    assert restored.time == chk.time


def test_restore_rejects_wrong_geometry(villin_fast):
    sim = _make_sim(villin_fast)
    bad = Checkpoint(
        positions=np.zeros((3, 3)),
        velocities=np.zeros((3, 3)),
        time=0.0,
        step=0,
    )
    with pytest.raises(ConfigurationError):
        sim.restore(bad)


def test_trajectory_append_and_frames():
    traj = Trajectory()
    for k in range(5):
        traj.append(np.full((2, 3), float(k)), time=k * 1.0)
    assert len(traj) == 5
    assert traj.frames.shape == (5, 2, 3)
    np.testing.assert_array_equal(traj.frames[3], np.full((2, 3), 3.0))


def test_trajectory_frames_are_copies():
    traj = Trajectory()
    pos = np.zeros((2, 3))
    traj.append(pos, 0.0)
    pos[0, 0] = 99.0
    assert traj.frames[0, 0, 0] == 0.0


def test_trajectory_save_load(tmp_path):
    traj = Trajectory()
    for k in range(4):
        traj.append(np.random.rand(3, 3), time=k * 0.5)
    path = tmp_path / "traj.npz"
    traj.save(path)
    loaded = Trajectory.load(path)
    np.testing.assert_allclose(loaded.frames, traj.frames)
    np.testing.assert_allclose(loaded.times, traj.times)


def test_trajectory_extend_time_ordering():
    a = Trajectory()
    a.append(np.zeros((1, 3)), 0.0)
    a.append(np.zeros((1, 3)), 1.0)
    b = Trajectory()
    b.append(np.ones((1, 3)), 2.0)
    a.extend(b)
    assert len(a) == 3
    bad = Trajectory()
    bad.append(np.ones((1, 3)), 0.5)
    with pytest.raises(ConfigurationError):
        a.extend(bad)


def test_trajectory_subsample():
    traj = Trajectory(frames=np.random.rand(10, 2, 3))
    sub = traj.subsample(3)
    assert len(sub) == 4  # indices 0,3,6,9
    with pytest.raises(ConfigurationError):
        traj.subsample(0)


def test_engine_runs_task_to_completion():
    engine = MDEngine(segment_steps=200)
    task = MDTask(model="villin-fast", n_steps=600, report_interval=100, seed=3)
    result = engine.run(task)
    assert result.completed
    assert result.steps_completed == 600
    assert result.frames.shape[0] == 7  # t=0 plus 6 reports
    assert np.isfinite(result.final_potential_energy)


def test_engine_task_payload_roundtrip():
    task = MDTask(
        model="villin-fast",
        n_steps=100,
        seed=5,
        temperature=320.0,
        initial_positions=np.random.rand(19, 3),
        task_id="gen0_r1",
    )
    payload = decode_message(encode_message(task.to_payload()))
    restored = MDTask.from_payload(payload)
    assert restored.model == task.model
    assert restored.task_id == "gen0_r1"
    assert restored.temperature == 320.0
    np.testing.assert_allclose(restored.initial_positions, task.initial_positions)


def test_engine_result_payload_roundtrip():
    engine = MDEngine(segment_steps=100)
    result = engine.run(MDTask(model="muller-brown", n_steps=200, seed=1))
    payload = decode_message(encode_message(result.to_payload()))
    restored = MDResult.from_payload(payload)
    np.testing.assert_allclose(restored.frames, result.frames)
    assert restored.completed == result.completed


def test_engine_abort_and_resume_completes_task():
    """A command interrupted mid-run resumes from its checkpoint."""
    engine = MDEngine(segment_steps=100)
    task = MDTask(model="villin-fast", n_steps=500, seed=2, task_id="t")
    partial = engine.run(task, abort_after_steps=200)
    assert not partial.completed
    assert partial.steps_completed == 200

    resumed_task = MDTask.from_payload(task.to_payload())
    resumed_task.checkpoint = partial.checkpoint
    final = engine.run(resumed_task)
    assert final.completed
    assert final.steps_completed == 300
    assert final.checkpoint["step"] == 500


def test_engine_resume_matches_continuous_for_deterministic_integrator():
    def task_with(checkpoint=None, n_steps=400):
        return MDTask(
            model="villin-fast",
            n_steps=n_steps,
            integrator="nose-hoover",
            timestep=0.01,
            seed=4,
            checkpoint=checkpoint,
        )

    engine = MDEngine(segment_steps=100)
    continuous = engine.run(task_with())
    partial = engine.run(task_with(), abort_after_steps=200)
    final = engine.run(task_with(checkpoint=partial.checkpoint))
    np.testing.assert_allclose(
        final.checkpoint["positions"],
        continuous.checkpoint["positions"],
        atol=1e-10,
    )


def test_engine_unknown_model_rejected():
    engine = MDEngine()
    with pytest.raises(ConfigurationError):
        engine.run(MDTask(model="nonexistent", n_steps=10))


def test_engine_unknown_integrator_rejected():
    engine = MDEngine()
    with pytest.raises(ConfigurationError):
        engine.run(MDTask(model="villin-fast", n_steps=10, integrator="euler"))


def test_engine_all_registered_models_run():
    engine = MDEngine(segment_steps=50)
    for model in ("villin-fast", "muller-brown", "double-well"):
        result = engine.run(MDTask(model=model, n_steps=100, seed=0))
        assert result.completed, model
