"""Tests for the event log and its runner integration."""

import pytest

from repro.core import Project, ProjectRunner
from repro.core.events import EventKind, EventLog, EventRecord
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker

from tests.test_core_controllers import OneShotController


def test_event_log_basics():
    log = EventLog()
    log.record(0.0, EventKind.PROJECT_SUBMITTED, "p")
    log.record(5.0, EventKind.COMMAND_COMPLETED, "p", command="c0")
    log.record(5.0, EventKind.COMMAND_COMPLETED, "q", command="c1")
    assert len(log) == 3
    assert log.counts() == {
        "project_submitted": 1,
        "command_completed": 2,
    }


def test_event_log_filtering():
    log = EventLog()
    log.record(0.0, EventKind.PROJECT_SUBMITTED, "p")
    log.record(1.0, EventKind.COMMAND_COMPLETED, "p")
    log.record(2.0, EventKind.COMMAND_COMPLETED, "q")
    assert len(log.filter(kind=EventKind.COMMAND_COMPLETED)) == 2
    assert len(log.filter(project_id="q")) == 1
    assert len(log.filter(kind=EventKind.COMMAND_COMPLETED, project_id="p")) == 1


def test_event_record_str():
    record = EventRecord(3.0, EventKind.WORKER_DEAD, details={"worker": "w0"})
    text = str(record)
    assert "worker_dead" in text
    assert "w0" in text


def test_event_log_to_text():
    log = EventLog()
    log.record(0.0, EventKind.PROJECT_SUBMITTED, "p")
    log.record(9.0, EventKind.PROJECT_COMPLETED, "p")
    text = log.to_text()
    assert text.count("\n") == 1
    assert "project_completed" in text


def test_runner_records_lifecycle():
    net = Network(seed=0)
    server = CopernicusServer("srv", net)
    worker = Worker("w0", net, server="srv", platform=SMPPlatform(cores=2))
    net.connect("srv", "w0")
    worker.announce(0.0)
    runner = ProjectRunner(net, server, [worker])
    runner.submit(Project("demo"), OneShotController(n_commands=2))
    runner.run()
    counts = runner.events.counts()
    assert counts["project_submitted"] == 1
    assert counts["command_completed"] == 2
    assert counts["project_completed"] == 1
    # issue event carries the batch size
    issued = runner.events.filter(kind=EventKind.COMMANDS_ISSUED)
    assert issued[0].details["count"] == 2


def test_runner_records_worker_death():
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=10.0)
    flaky = Worker(
        "flaky", net, server="srv", platform=SMPPlatform(cores=1),
        segment_steps=200,
    )
    steady = Worker(
        "steady", net, server="srv", platform=SMPPlatform(cores=1),
        segment_steps=200,
    )
    net.connect("srv", "flaky")
    net.connect("srv", "steady")
    flaky.announce(0.0)
    steady.announce(0.0)
    flaky.set_crash_hook(lambda cid, seg: seg == 1)
    runner = ProjectRunner(net, server, [flaky, steady], tick=30.0)
    runner.submit(Project("demo"), OneShotController(n_commands=2, n_steps=1000))
    runner.run()
    dead_events = runner.events.filter(kind=EventKind.WORKER_DEAD)
    assert any(e.details.get("worker") == "flaky" for e in dead_events)
