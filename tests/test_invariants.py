"""The invariant checker must actually catch broken logs.

A checker that is green on good runs proves little unless it is also
red on doctored ones: each test here fabricates an event log violating
exactly one invariant and asserts the violation is reported.
"""

import pytest

from repro.core.events import EventKind, EventLog
from repro.core.project import Project, ProjectStatus
from repro.net.circuit import BreakerPolicy, CircuitBreaker
from repro.testing import Invariants
from repro.util.errors import InvariantViolation


class FakeQueue:
    def __init__(self, commands=()):
        self._commands = list(commands)

    def commands(self):
        return list(self._commands)


class FakeServer:
    def __init__(self, requeued_after_failure=0):
        self.queue = FakeQueue()
        self.assignments = {}
        self.requeued_after_failure = requeued_after_failure


class FakeRunner:
    """Just enough runner surface for the checker."""

    def __init__(self, events=None, servers=None, projects=None, network=None):
        self.events = events or EventLog()
        self._servers = servers if servers is not None else [FakeServer()]
        self._projects = projects or {}
        if network is not None:
            self.network = network


def issue(log, ids, t=0.0):
    log.record(t, EventKind.COMMANDS_ISSUED, "p", count=len(ids), ids=ids)


def complete(log, command_id, t=1.0):
    log.record(t, EventKind.COMMAND_COMPLETED, "p", command=command_id)


def test_green_log_passes():
    log = EventLog()
    issue(log, ["c0", "c1"])
    complete(log, "c0")
    complete(log, "c1")
    checker = Invariants(FakeRunner(events=log))
    assert checker.check() == []
    checker.assert_ok()  # no raise


def test_lost_command_detected():
    log = EventLog()
    issue(log, ["c0", "c1"])
    complete(log, "c0")  # c1 vanished: not completed, queued or in flight
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("lost" in v and "c1" in v for v in violations)


def test_queued_or_in_flight_commands_are_not_lost():
    log = EventLog()
    issue(log, ["c0", "c1", "c2"])
    complete(log, "c0")
    server = FakeServer()

    class Cmd:
        def __init__(self, command_id):
            self.command_id = command_id

    server.queue = FakeQueue([Cmd("c1")])
    server.assignments = {"w0": {"c2": Cmd("c2")}}
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert violations == []


def test_phantom_completion_detected():
    log = EventLog()
    issue(log, ["c0"])
    complete(log, "c0")
    complete(log, "ghost")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("never issued" in v for v in violations)


def test_double_completion_detected():
    log = EventLog()
    issue(log, ["c0"])
    complete(log, "c0")
    complete(log, "c0")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("completed 2 times" in v for v in violations)


def test_checkpoint_step_regression_detected():
    log = EventLog()
    log.record(0.0, EventKind.CHECKPOINT_REPORTED, command="c0", step=2000)
    log.record(5.0, EventKind.CHECKPOINT_REPORTED, command="c0", step=1000)
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("checkpoint regression" in v for v in violations)


def test_checkpoint_monotone_across_commands_is_fine():
    log = EventLog()
    log.record(0.0, EventKind.CHECKPOINT_REPORTED, command="c0", step=2000)
    log.record(5.0, EventKind.CHECKPOINT_REPORTED, command="c1", step=1000)
    log.record(9.0, EventKind.CHECKPOINT_REPORTED, command="c0", step=2000)
    assert Invariants(FakeRunner(events=log)).check() == []


def test_requeue_counter_mismatch_detected():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_DEAD, worker="w0", server="srv")
    log.record(0.0, EventKind.COMMAND_REQUEUED, worker="w0", command="c0")
    runner = FakeRunner(
        events=log, servers=[FakeServer(requeued_after_failure=2)]
    )
    violations = Invariants(runner).check()
    assert any("requeues after failure" in v for v in violations)


def test_requeue_without_death_detected():
    log = EventLog()
    log.record(0.0, EventKind.COMMAND_REQUEUED, worker="w0", command="c0")
    runner = FakeRunner(
        events=log, servers=[FakeServer(requeued_after_failure=1)]
    )
    violations = Invariants(runner).check()
    assert any("not declared dead" in v for v in violations)


def test_double_death_in_one_outage_detected():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_DEAD, worker="w0", server="srv")
    log.record(9.0, EventKind.WORKER_DEAD, worker="w0", server="srv")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("declared dead twice" in v for v in violations)


def test_death_revival_death_is_legal():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_DEAD, worker="w0", server="srv")
    log.record(5.0, EventKind.WORKER_REVIVED, worker="w0", server="srv")
    log.record(99.0, EventKind.WORKER_DEAD, worker="w0", server="srv")
    assert Invariants(FakeRunner(events=log)).check() == []


def test_revival_without_death_detected():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_REVIVED, worker="w0", server="srv")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("without a preceding death" in v for v in violations)


def test_overcomplete_project_detected():
    project = Project("p", status=ProjectStatus.COMPLETE, issued=1, completed=2)
    runner = FakeRunner(projects={"p": project})
    violations = Invariants(runner).check()
    assert any("more completions" in v for v in violations)


def test_speculated_double_completion_detected():
    log = EventLog()
    issue(log, ["c0"])
    log.record(0.0, EventKind.SPECULATION_STARTED, command="c0", worker="w0")
    complete(log, "c0", t=1.0)
    complete(log, "c0", t=2.0)
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("speculated command 'c0' completed 2 times" in v for v in violations)


def test_speculation_lost_without_start_detected():
    log = EventLog()
    issue(log, ["c0"])
    complete(log, "c0", t=1.0)
    log.record(2.0, EventKind.SPECULATION_LOST, command="c0", worker="w0")
    server = FakeServer()
    server.speculations_lost = 1
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("without a preceding speculation start" in v for v in violations)


def test_speculation_lost_before_completion_detected():
    log = EventLog()
    issue(log, ["c0"])
    log.record(0.0, EventKind.SPECULATION_STARTED, command="c0", worker="w0")
    log.record(1.0, EventKind.SPECULATION_LOST, command="c0", worker="w0")
    server = FakeServer()
    server.speculations_started = 1
    server.speculations_lost = 1

    class Cmd:
        command_id = "c0"

    server.queue = FakeQueue([Cmd()])
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("race was not decided" in v for v in violations)


def test_speculation_counter_mismatch_detected():
    log = EventLog()
    issue(log, ["c0"])
    log.record(0.0, EventKind.SPECULATION_STARTED, command="c0", worker="w0")
    complete(log, "c0", t=1.0)
    log.record(2.0, EventKind.SPECULATION_LOST, command="c0", worker="w0")
    server = FakeServer()
    server.speculations_started = 1
    server.speculations_lost = 0  # the event log says 1
    violations = Invariants(FakeRunner(events=log, servers=[server])).check()
    assert any("speculation losses" in v for v in violations)


def test_workload_to_quarantined_worker_detected():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_QUARANTINED, worker="w0", server="srv")
    log.record(1.0, EventKind.WORKLOAD_ASSIGNED, worker="w0", server="srv")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("assigned workload to quarantined" in v for v in violations)


def test_workload_after_readmission_is_legal():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_QUARANTINED, worker="w0", server="srv")
    log.record(5.0, EventKind.WORKER_READMITTED, worker="w0", server="srv")
    log.record(6.0, EventKind.WORKLOAD_ASSIGNED, worker="w0", server="srv")
    assert Invariants(FakeRunner(events=log)).check() == []


def test_readmission_without_quarantine_detected():
    log = EventLog()
    log.record(0.0, EventKind.WORKER_READMITTED, worker="w0", server="srv")
    violations = Invariants(FakeRunner(events=log)).check()
    assert any("without a preceding quarantine" in v for v in violations)


class FakeBreakerEndpoint:
    def __init__(self, breaker):
        self.peer_breakers = {breaker.peer: breaker}


class FakeBreakerNetwork:
    def __init__(self, endpoint):
        self._endpoint = endpoint

    def endpoints(self):
        return ["srv"]

    def endpoint(self, name):
        return self._endpoint


def test_breaker_skips_without_open_detected():
    breaker = CircuitBreaker("sick", BreakerPolicy())
    breaker.skips = 3  # a doctored history: skipped without ever opening
    network = FakeBreakerNetwork(FakeBreakerEndpoint(breaker))
    violations = Invariants(FakeRunner(network=network)).check()
    assert any("skipped 3 calls but never opened" in v for v in violations)


def test_breaker_closed_with_unbalanced_opens_detected():
    breaker = CircuitBreaker("sick", BreakerPolicy())
    breaker.opens = 2
    breaker.closes = 1  # ended CLOSED without balancing its opens
    network = FakeBreakerNetwork(FakeBreakerEndpoint(breaker))
    violations = Invariants(FakeRunner(network=network)).check()
    assert any("must balance its opens" in v for v in violations)


def test_assert_ok_raises_with_every_violation_listed():
    log = EventLog()
    issue(log, ["c0", "c1"])
    complete(log, "c0")
    complete(log, "c0")
    with pytest.raises(InvariantViolation) as exc:
        Invariants(FakeRunner(events=log)).assert_ok()
    text = str(exc.value)
    assert "lost" in text and "completed 2 times" in text
