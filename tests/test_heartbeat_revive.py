"""Regression tests for re-announce / revive-after-dead semantics.

``HeartbeatMonitor.register`` used to replace the whole
``WorkerRecord`` on every announce, so a worker that reconnected after
an outage silently lost the checkpoints its server had saved for it —
exactly the state needed to recover its commands.
"""

from repro.net.protocol import MessageType
from repro.server.heartbeat import HeartbeatMonitor
from repro.server.server import CopernicusServer
from repro.testing import ChaosNetwork, FaultPlan
from repro.net.transport import Endpoint


def test_register_preserves_existing_checkpoints():
    mon = HeartbeatMonitor(interval=60.0)
    mon.register("w", now=0.0)
    mon.beat("w", now=10.0, checkpoints={"cmd0": {"step": 1000}})
    # the worker re-announces (e.g. after reconnecting)
    mon.register("w", now=20.0)
    assert mon.checkpoint_for("w", "cmd0") == {"step": 1000}
    assert mon.is_alive("w")


def test_register_refreshes_liveness_of_dead_worker():
    mon = HeartbeatMonitor(interval=60.0)
    mon.register("w", now=0.0)
    assert mon.check(now=500.0) == ["w"]
    assert not mon.is_alive("w")
    mon.register("w", now=510.0)
    assert mon.is_alive("w")
    # fresh timestamp: not immediately re-declared dead
    assert mon.check(now=520.0) == []


def test_beat_reports_revival_exactly_once():
    mon = HeartbeatMonitor(interval=60.0)
    mon.register("w", now=0.0)
    assert mon.beat("w", now=10.0) is False  # already alive
    assert mon.check(now=500.0) == ["w"]
    assert mon.beat("w", now=510.0) is True  # revived
    assert mon.beat("w", now=520.0) is False  # still alive


def test_dead_reported_at_most_once_per_outage():
    mon = HeartbeatMonitor(interval=60.0)
    mon.register("w", now=0.0)
    assert mon.check(now=500.0) == ["w"]
    assert mon.check(now=600.0) == []  # same outage: not re-reported
    mon.beat("w", now=610.0)
    assert mon.check(now=2000.0) == ["w"]  # new outage: reported again


def test_reannounce_after_outage_keeps_checkpoints_at_server_level():
    """Full protocol path: announce, checkpointed heartbeat, outage,
    re-announce — the saved checkpoint must survive for recovery."""
    net = ChaosNetwork(plan=FaultPlan(seed=0), seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=60.0)
    worker = Endpoint("w", net, handler=lambda m: None)
    net.connect("srv", "w")

    worker.send(
        "srv",
        MessageType.WORKER_ANNOUNCE,
        {"worker": "w", "platform": "smp", "cores": 1,
         "executables": ["mdrun"], "now": 0.0},
    )
    worker.send(
        "srv",
        MessageType.HEARTBEAT,
        {"worker": "w", "now": 10.0,
         "checkpoints": {"cmd0": {"step": 3000}}},
    )
    assert server.check_liveness(now=500.0) == ["w"]
    # the worker reconnects and re-announces
    worker.send(
        "srv",
        MessageType.WORKER_ANNOUNCE,
        {"worker": "w", "platform": "smp", "cores": 1,
         "executables": ["mdrun"], "now": 510.0},
    )
    assert server.monitor.is_alive("w")
    assert server.monitor.checkpoint_for("w", "cmd0") == {"step": 3000}
    # same outage ended by the re-announce: no duplicate death report
    assert server.check_liveness(now=520.0) == []
