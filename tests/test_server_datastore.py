"""Tests for the durable project store and replay recovery."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMSMController,
    Command,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.net import Network
from repro.server import CopernicusServer
from repro.server.datastore import ProjectStore, replay
from repro.worker import SMPPlatform, Worker
from repro.worker.executable import run_executable
from repro.md.engine import MDTask
from repro.util.errors import ConfigurationError


def md_command(cid, seed=0, n_steps=300):
    task = MDTask(model="muller-brown", n_steps=n_steps, seed=seed, task_id=cid)
    return Command(cid, "p", "mdrun", task.to_payload())


def test_store_roundtrip(tmp_path):
    store = ProjectStore(tmp_path)
    command = md_command("c0")
    result, _ = run_executable("mdrun", command.payload)
    store.record_result("p", command, result)
    loaded = list(store.iter_results("p"))
    assert len(loaded) == 1
    got_command, got_result = loaded[0]
    assert got_command.command_id == "c0"
    np.testing.assert_array_equal(got_result["frames"], result["frames"])


def test_store_preserves_order(tmp_path):
    store = ProjectStore(tmp_path)
    for k in range(5):
        store.record_result("p", md_command(f"c{k}"), {"k": k})
    order = [c.command_id for c, _ in store.iter_results("p")]
    assert order == [f"c{k}" for k in range(5)]
    assert store.result_count("p") == 5


def test_store_metadata(tmp_path):
    store = ProjectStore(tmp_path)
    store.save_metadata("p", {"model": "villin-fast", "generations": 6})
    assert store.load_metadata("p")["model"] == "villin-fast"
    assert store.load_metadata("unknown") == {}


def test_store_lists_projects(tmp_path):
    store = ProjectStore(tmp_path)
    store.record_result("alpha", md_command("c"), {})
    store.record_result("beta", md_command("c"), {})
    assert store.projects() == ["alpha", "beta"]


def test_store_rejects_bad_ids(tmp_path):
    store = ProjectStore(tmp_path)
    with pytest.raises(ConfigurationError):
        store.record_result("../escape", md_command("c"), {})


def _msm_config():
    return MSMProjectConfig(
        model="muller-brown",
        n_starting_conformations=2,
        trajectories_per_start=2,
        steps_per_command=800,
        report_interval=20,
        n_clusters=10,
        lag_frames=2,
        n_generations=3,
        timestep=0.01,
        seed=11,
    )


def run_with_store(tmp_path, crash_after=None):
    """Run an MSM project, recording results; optionally stop early."""
    store = ProjectStore(tmp_path)
    net = Network(seed=0)
    server = CopernicusServer("srv", net)
    worker = Worker("w0", net, server="srv", platform=SMPPlatform(cores=2))
    net.connect("srv", "w0")
    worker.announce(0.0)
    controller = AdaptiveMSMController(_msm_config())
    runner = ProjectRunner(net, server, [worker])
    project = Project("msm")

    recorded = [0]
    original_sink_holder = {}

    def recording_sink(command, result):
        recorded[0] += 1
        store.record_result("msm", command, result)
        original_sink_holder["sink"](command, result)

    runner.submit(project, controller)
    # wrap the sink installed by submit
    original_sink_holder["sink"] = server._sinks["msm"]
    server._sinks["msm"] = recording_sink

    if crash_after is None:
        runner.run()
    else:
        # run worker cycles until enough results landed, then "crash"
        for _ in range(1000):
            if recorded[0] >= crash_after:
                break
            worker.work_once(now=runner.now)
    return store, project, controller


def test_replay_reconstructs_completed_project(tmp_path):
    store, project, controller = run_with_store(tmp_path)
    fresh = AdaptiveMSMController(_msm_config())
    replayed_project, outstanding, completed_ids = replay(store, "msm", fresh)
    assert outstanding == []  # everything completed
    assert len(completed_ids) == replayed_project.completed
    assert replayed_project.completed == project.completed
    assert fresh.generation == controller.generation
    assert len(fresh.trajectories) == len(controller.trajectories)


def test_replay_after_crash_resumes_to_completion(tmp_path):
    """Crash mid-project, replay into a fresh controller, finish."""
    store, crashed_project, _ = run_with_store(tmp_path, crash_after=3)
    assert store.result_count("msm") >= 3

    fresh = AdaptiveMSMController(_msm_config())
    replayed_project, outstanding, completed_ids = replay(store, "msm", fresh)
    assert outstanding, "crash left commands outstanding"
    assert completed_ids.isdisjoint(c.command_id for c in outstanding)

    # resume on a new deployment: requeue the outstanding commands
    net = Network(seed=1)
    server = CopernicusServer("srv2", net)
    worker = Worker("w0", net, server="srv2", platform=SMPPlatform(cores=2))
    net.connect("srv2", "w0")
    worker.announce(0.0)
    runner = ProjectRunner(net, server, [worker])

    # adopt the replayed project into the runner manually
    def sink(command, result):
        runner._on_result(replayed_project, fresh, command, result)

    server.host_project("msm", sink)
    runner._projects["msm"] = replayed_project
    runner._controllers["msm"] = fresh
    # reseed the exactly-once barrier so late duplicates stay dropped
    # (restore_commands scopes the journaled plain ids by project)
    server.restore_commands("msm", outstanding, completed_ids)
    from repro.core.project import ProjectStatus

    replayed_project.status = ProjectStatus.RUNNING
    runner.run()
    assert fresh._complete
    assert replayed_project.outstanding == 0
    assert fresh.generation == _msm_config().n_generations - 1


def test_store_sequence_survives_restart_and_sweeps_tmp(tmp_path):
    """A crash mid-append leaves a `.NNNNNN.tmp` behind; a restarted
    store sweeps it and keeps appending in order."""
    store = ProjectStore(tmp_path)
    for k in range(3):
        store.record_result("p", md_command(f"c{k}"), {"k": k})
    (tmp_path / "p" / "results" / ".000099.tmp").write_bytes(b"junk")

    fresh = ProjectStore(tmp_path)
    fresh.record_result("p", md_command("c3"), {"k": 3})
    leftovers = list((tmp_path / "p" / "results").glob(".*.tmp"))
    assert leftovers == []
    order = [c.command_id for c, _ in fresh.iter_results("p")]
    assert order == ["c0", "c1", "c2", "c3"]


def test_store_sequence_never_reuses_after_deletion(tmp_path):
    """The cursor is max(existing)+1, not a glob count: deleting an old
    result must not make a fresh append collide with a later one."""
    store = ProjectStore(tmp_path)
    for k in range(3):
        store.record_result("p", md_command(f"c{k}"), {"k": k})
    (tmp_path / "p" / "results" / "000001.bin").unlink()

    fresh = ProjectStore(tmp_path)
    path = fresh.record_result("p", md_command("c3"), {"k": 3})
    assert path.name == "000003.bin"
    order = [c.command_id for c, _ in fresh.iter_results("p")]
    assert order == ["c0", "c2", "c3"]
