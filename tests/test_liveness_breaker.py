"""Circuit breakers: unit automaton tests and the sick-peer scenario."""

import pytest

from repro.net.circuit import BreakerPolicy, BreakerState, CircuitBreaker
from repro.testing import Invariants, run_relay_with_sick_peer
from repro.util.errors import ConfigurationError


# -- automaton unit behavior -------------------------------------------------


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ConfigurationError):
        BreakerPolicy(cooldown_seconds=0.0)
    with pytest.raises(ConfigurationError):
        BreakerPolicy(cooldown_backoff=0.5)
    with pytest.raises(ConfigurationError):
        BreakerPolicy(half_open_probes=0)


def test_breaker_opens_after_consecutive_failures():
    breaker = CircuitBreaker("peer", BreakerPolicy(failure_threshold=3))
    for _ in range(2):
        breaker.record_failure(0.0)
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1
    assert not breaker.allow(1.0)
    assert breaker.skips == 1


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker("peer", BreakerPolicy(failure_threshold=3))
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    breaker.record_success(0.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.CLOSED  # streak broken at 2


def test_half_open_probes_close_the_breaker():
    policy = BreakerPolicy(
        failure_threshold=1, cooldown_seconds=100.0, half_open_probes=2
    )
    breaker = CircuitBreaker("peer", policy)
    breaker.record_failure(0.0)
    assert not breaker.allow(50.0)
    assert breaker.allow(100.0)  # cooldown over: half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success(100.0)
    assert breaker.state is BreakerState.HALF_OPEN  # one probe is not enough
    assert breaker.allow(101.0)
    breaker.record_success(101.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.closes == 1


def test_failed_probe_reopens_with_escalated_cooldown():
    policy = BreakerPolicy(
        failure_threshold=1, cooldown_seconds=100.0, cooldown_backoff=2.0
    )
    breaker = CircuitBreaker("peer", policy)
    breaker.record_failure(0.0)        # open until 100
    assert breaker.allow(100.0)        # half-open
    breaker.record_failure(100.0)      # still sick: open until 100+200
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    assert not breaker.allow(250.0)
    assert breaker.allow(300.0)
    # a successful recovery resets the cooldown ladder
    breaker.record_success(300.0)
    breaker.record_success(300.0)
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(400.0)
    assert not breaker.allow(499.0)    # back to the base 100 s cooldown
    assert breaker.allow(500.0)


def test_escalated_cooldown_is_capped():
    policy = BreakerPolicy(
        failure_threshold=1,
        cooldown_seconds=100.0,
        cooldown_backoff=10.0,
        max_cooldown_seconds=250.0,
    )
    breaker = CircuitBreaker("peer", policy)
    breaker.record_failure(0.0)
    assert breaker.allow(100.0)
    breaker.record_failure(100.0)  # 100*10 capped at 250
    assert not breaker.allow(349.0)
    assert breaker.allow(350.0)


# -- the canned sick-peer scenario ------------------------------------------


def test_sick_peer_trips_and_recovers_the_relay_breaker():
    out = run_relay_with_sick_peer(seed=0)
    breaker = out.breaker
    # the breaker opened on the sick window, skipped while open, and
    # re-closed through half-open probes once the peer recovered
    assert breaker.opens == 1
    assert breaker.skips > 0
    assert breaker.closes == 1
    assert breaker.state is BreakerState.CLOSED
    # fetches kept succeeding via the project server the whole time
    assert len(out.controller.finished) == 8
    Invariants(out.runner).assert_ok()


def test_sick_peer_breaker_surfaces_in_traffic_report():
    out = run_relay_with_sick_peer(seed=0)
    rows = [
        row
        for row in out.network.traffic_report()
        if row.get("link") == "breaker:relay->sick"
    ]
    assert rows and rows[0]["opens"] == 1 and rows[0]["skips"] > 0
    assert rows[0]["state"] == "closed"


def test_sick_peer_scenario_is_deterministic():
    a = run_relay_with_sick_peer(seed=1)
    b = run_relay_with_sick_peer(seed=1)
    assert a.transcript == b.transcript
    assert a.breaker.describe() == b.breaker.describe()
