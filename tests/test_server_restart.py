"""Server-crash-restart chaos: kill the project server, resume from disk.

The acceptance scenario for the durable journal: the *project server*
(queue, leases, dedup barrier, controller — all in-memory state) dies
mid-project and a fresh deployment resumes the project from the
surviving journal directory.  The project must complete with every
recovery invariant green: no result lost, none applied twice, leased
commands resumed from their journaled checkpoints.  Seeds follow the
``CHAOS_SEED`` convention of ``test_chaos_recovery.py`` so CI's
recovery matrix can widen coverage.
"""

import os

import pytest

from repro.core.events import EventKind
from repro.core.project import ProjectStatus
from repro.core.runner import ProjectRunner
from repro.net import Network
from repro.net.protocol import Message, MessageType
from repro.server import CopernicusServer
from repro.testing import (
    FaultPlan,
    Invariants,
    SwarmController,
    run_swarm_with_server_restart,
)
from repro.util.errors import ConfigurationError

SEEDS = sorted({0, 1, 2, int(os.environ.get("CHAOS_SEED", "0"))})
N_COMMANDS = 3
N_STEPS = 3000
ALL_COMMANDS = [f"cmd{k}" for k in range(N_COMMANDS)]


def restart_after_one(plan: FaultPlan) -> None:
    plan.restart_server("srv", after_results=1)


# ------------------------------------------------------------- acceptance


@pytest.mark.parametrize("seed", SEEDS)
def test_restart_completes_with_invariants_green(tmp_path, seed):
    out = run_swarm_with_server_restart(
        tmp_path / "journal", configure=restart_after_one, seed=seed
    )
    assert out.project.status is ProjectStatus.COMPLETE
    # the kill genuinely interrupted the project
    assert 1 <= out.pre["results_applied"] < N_COMMANDS
    assert sorted(c for c, _ in out.controller.finished) == ALL_COMMANDS
    Invariants(out.runner).assert_ok()


def test_no_result_lost_or_doubled_across_restart(tmp_path):
    out = run_swarm_with_server_restart(
        tmp_path / "journal", configure=restart_after_one, seed=1
    )
    events = out.runner.events
    completed = events.filter(kind=EventKind.COMMAND_COMPLETED)
    # every command completes exactly once across the restart boundary
    assert sorted(r.details["command"] for r in completed) == ALL_COMMANDS
    replayed = [r for r in completed if r.details.get("replayed")]
    assert len(replayed) == out.pre["results_applied"]

    recovered = events.filter(kind=EventKind.SERVER_RECOVERED)
    assert len(recovered) == 1
    details = recovered[0].details
    assert details["replayed"] == out.pre["results_applied"]
    # recovery accounts for every pre-crash command: replayed or restored
    assert details["replayed"] + details["restored"] == N_COMMANDS
    restored = events.filter(kind=EventKind.COMMAND_RESTORED)
    assert len(restored) == details["restored"]


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_reproduces_identical_transcripts(tmp_path, seed):
    first = run_swarm_with_server_restart(
        tmp_path / "a", configure=restart_after_one, seed=seed
    )
    second = run_swarm_with_server_restart(
        tmp_path / "b", configure=restart_after_one, seed=seed
    )
    assert first.pre["transcript"] == second.pre["transcript"]
    assert first.transcript == second.transcript
    assert first.chaos == second.chaos


# -------------------------------------------- exactly-once after recovery


def test_late_duplicate_result_after_restart_is_dropped(tmp_path):
    """A worker retransmits a pre-crash result long after the restart:
    the reseeded dedup barrier must drop it (the paper's exactly-once
    promise holds across the restart boundary)."""
    out = run_swarm_with_server_restart(
        tmp_path / "journal", configure=restart_after_one, seed=2
    )
    server = out.server
    command, result = server.journal.project("swarm").state.results[0]
    finished_before = len(out.controller.finished)
    dropped_before = server.duplicates_dropped
    response = server.handle(
        Message(
            type=MessageType.COMMAND_RESULT,
            src="w0",
            dst="srv",
            payload={
                "worker": "w0",
                "command": command.to_payload(),
                "result": result,
            },
        )
    )
    assert response == {"ok": True}  # the worker still gets its ack
    assert server.duplicates_dropped == dropped_before + 1
    assert len(out.controller.finished) == finished_before
    dropped = out.runner.events.filter(
        kind=EventKind.DUPLICATE_RESULT_DROPPED
    )
    assert [r.details["command"] for r in dropped] == [command.command_id]
    Invariants(out.runner).assert_ok()


# --------------------------------------------------- checkpoints survive


def test_leased_command_resumes_from_journaled_checkpoint(tmp_path):
    """A command in flight at the kill (its worker died too) restarts
    from the checkpoint the journal recorded, not from step zero."""

    def configure(plan):
        plan.restart_server("srv", after_results=1)
        plan.crash_worker("w0", at_segment=1)

    out = run_swarm_with_server_restart(
        tmp_path / "journal", configure=configure, seed=0
    )
    assert out.project.status is ProjectStatus.COMPLETE
    restored = out.runner.events.filter(kind=EventKind.COMMAND_RESTORED)
    assert any(r.details["has_checkpoint"] for r in restored)
    finished = dict(out.controller.finished)
    resumed = [steps for steps in finished.values() if steps < N_STEPS]
    assert resumed, "no command resumed from a checkpoint after restart"
    Invariants(out.runner).assert_ok()


# ------------------------------------------------------------- torn tails


def tear_tail(journal_root) -> None:
    """Cut the last bytes off the journal, as a mid-append crash would."""
    segments = sorted((journal_root / "swarm" / "wal").glob("wal-*.log"))
    assert segments, "scenario left no journal segments to tear"
    blob = segments[-1].read_bytes()
    segments[-1].write_bytes(blob[: len(blob) - 7])


def test_torn_journal_tail_still_recovers_and_completes(tmp_path):
    out = run_swarm_with_server_restart(
        tmp_path / "journal",
        configure=restart_after_one,
        mutate_journal=tear_tail,
        snapshot_every=None,  # keep all records in the log so the tear bites
        seed=3,
    )
    assert out.project.status is ProjectStatus.COMPLETE
    assert sorted(c for c, _ in out.controller.finished) == ALL_COMMANDS
    Invariants(out.runner).assert_ok()


# ------------------------------------------------------------- edge cases


def test_resume_without_journal_refuses(tmp_path):
    net = Network(seed=0)
    server = CopernicusServer("srv", net)
    runner = ProjectRunner(net, server, [])
    with pytest.raises(ConfigurationError):
        runner.resume("swarm", SwarmController(n_commands=1, n_steps=100))


def test_restart_rule_fires_and_is_reported(tmp_path):
    plan = FaultPlan(seed=0)
    out = run_swarm_with_server_restart(
        tmp_path / "journal", plan=plan, configure=restart_after_one, seed=0
    )
    rule = plan.server_restart_point("srv")
    assert rule.fired == 1
    assert any(f is rule for _, f in plan.firings)
    description = out.pre["runner"]  # phase-1 runner survives for audits
    assert description.events.filter(kind=EventKind.PROJECT_SUBMITTED)
    assert {"kind": "server_restart", "fired": 1, "after_index": 0,
            "dst": "srv", "after_results": 1} == rule.describe()
