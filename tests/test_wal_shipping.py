"""Journal shipping properties: idempotent, convergent, replay-stable.

The transport half of shard failover moves a project's snapshot + WAL
segments between journal roots.  Its contract: shipping is atomic per
file (temp + rename), re-shipping is byte-for-byte idempotent, a
re-ship after the source advanced *converges* (stale destination
files are removed), and the shipped journal recovers to exactly the
source's :class:`JournalState` — which is what makes double-migration
and migration-racing-late-recovery safe.
"""

import hashlib

import pytest

from repro.core.command import Command
from repro.server.server import CopernicusServer
from repro.server.wal import ServerJournal, ship_project_journal
from repro.net.transport import Network
from repro.util.errors import PersistenceError

PID = "alpha"


def seed_journal(root, n_issued=6, n_results=3):
    """A source journal with snapshots, segments and live state."""
    journal = ServerJournal(root, snapshot_every=2, fsync=False)
    project = journal.project(PID)
    commands = [
        Command(f"cmd{k}", PID, "mdrun", {"k": k}) for k in range(n_issued)
    ]
    project.record_issued(commands)
    for k in range(n_results):
        project.record_result(commands[k], {"value": k})
    journal.close()
    return commands


def tree_digest(root):
    """Relative-path -> content hash for every file under *root*."""
    out = {}
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        out[str(path.relative_to(root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return out


def recovered_payload(root):
    return ServerJournal(root, fsync=False).project(PID).recover().to_payload()


def test_shipped_journal_recovers_identically(tmp_path):
    src, dst = tmp_path / "src", tmp_path / "dst"
    seed_journal(src)
    report = ship_project_journal(src, dst, PID, fsync=False)
    assert report.project_id == PID
    assert report.snapshots + report.segments > 0
    assert report.bytes > 0
    assert tree_digest(dst / PID) == tree_digest(src / PID)
    assert recovered_payload(dst) == recovered_payload(src)


def test_double_ship_is_byte_for_byte_idempotent(tmp_path):
    src, dst = tmp_path / "src", tmp_path / "dst"
    seed_journal(src)
    first = ship_project_journal(src, dst, PID, fsync=False)
    snapshot = tree_digest(dst / PID)
    second = ship_project_journal(src, dst, PID, fsync=False)
    assert tree_digest(dst / PID) == snapshot
    assert (first.snapshots, first.segments, first.bytes) == (
        second.snapshots, second.segments, second.bytes
    )
    assert recovered_payload(dst) == recovered_payload(src)


def test_reship_converges_after_source_advanced(tmp_path):
    """Double migration racing a late first-shard recovery: the second
    shipment must mirror the *current* source exactly, including
    deleting destination files the source no longer has."""
    src, dst = tmp_path / "src", tmp_path / "dst"
    commands = seed_journal(src, n_issued=6, n_results=2)
    ship_project_journal(src, dst, PID, fsync=False)

    # the source advances (more results, possibly new snapshots) ...
    journal = ServerJournal(src, snapshot_every=2, fsync=False)
    project = journal.project(PID)
    for k in (2, 3, 4):
        project.record_result(commands[k], {"value": k})
    journal.close()
    # ... and the destination grew a file the source never had (a torn
    # shipment from a racing migration)
    stray = dst / PID / "wal" / "wal-99999999.log"
    stray.write_bytes(b"torn")
    (dst / PID / ".snapshot-0.bin.tmp").write_bytes(b"partial")

    ship_project_journal(src, dst, PID, fsync=False)
    assert tree_digest(dst / PID) == tree_digest(src / PID)
    assert not stray.exists()
    assert recovered_payload(dst) == recovered_payload(src)


def test_replaying_shipped_journal_twice_is_idempotent_in_server_tables(
    tmp_path,
):
    """Reseeding the exactly-once barrier from the same shipped journal
    twice leaves the server's dedup table unchanged, and a late
    duplicate of a pre-crash result is still dropped."""
    src, dst = tmp_path / "src", tmp_path / "dst"
    commands = seed_journal(src, n_issued=4, n_results=2)
    ship_project_journal(src, dst, PID, fsync=False)
    state = ServerJournal(dst, fsync=False).project(PID).recover()
    completed = {command.command_id for command, _result in state.results}
    outstanding = [c for c in commands if c.command_id not in completed]

    net = Network(seed=0)
    server = CopernicusServer("successor", net)
    server.host_project(PID, lambda c, r: None)
    server.restore_commands(PID, list(outstanding), set(completed))
    barrier = set(server.completed_ids)
    queued = len(server.queue)
    # the double replay: same journal, same seeding — the barrier must
    # not change (requeued duplicates are later dropped by it)
    server.restore_commands(PID, [], set(completed))
    assert server.completed_ids == barrier
    assert len(server.queue) == queued
    # a straggler worker re-delivering a pre-crash result hits the wall
    assert server._route_result(commands[0], {"value": 0}) == "duplicate"
    assert server.duplicates_dropped == 1


def test_ship_unknown_project_raises(tmp_path):
    src, dst = tmp_path / "src", tmp_path / "dst"
    seed_journal(src)
    with pytest.raises(PersistenceError):
        ship_project_journal(src, dst, "ghost", fsync=False)
