"""Tests for umbrella sampling and WHAM."""

import numpy as np
import pytest

from repro.fep.umbrella import UmbrellaWindow, metropolis_sample, window_ladder
from repro.fep.wham import WHAMResult, free_energy_difference, wham
from repro.util.errors import ConfigurationError, EstimationError


KT = 1.0


def tilted_double_well(x):
    """E(x) = 3 ((x^2 - 1)^2) + 0.8 x — asymmetric double well."""
    return 3.0 * (x * x - 1.0) ** 2 + 0.8 * x


def analytic_profile(energy, lo=-2.2, hi=2.2, n=4001):
    xs = np.linspace(lo, hi, n)
    e = np.array([energy(x) for x in xs])
    p = np.exp(-(e - e.min()) / KT)
    p /= np.trapezoid(p, xs)
    return xs, e - e.min(), p


# -------------------------------------------------------------- umbrella


def test_window_validation():
    with pytest.raises(ConfigurationError):
        UmbrellaWindow(center=0.0, k=-1.0)


def test_window_ladder_coverage():
    ladder = window_ladder(-2.0, 2.0, 9, k=10.0)
    assert len(ladder) == 9
    assert ladder[0].center == -2.0
    assert ladder[-1].center == 2.0
    with pytest.raises(ConfigurationError):
        window_ladder(0, 1, 1, k=1.0)


def test_metropolis_sampling_biased_mean():
    """With a stiff bias the samples hug the window centre."""
    window = UmbrellaWindow(center=0.5, k=200.0)
    samples = metropolis_sample(
        tilted_double_well, window, 2000, KT, rng=0, step=0.15
    )
    assert abs(samples.mean() - 0.5) < 0.1
    assert samples.std() < 0.2


def test_metropolis_sampling_unbiased_limit():
    """A very weak bias recovers the underlying Boltzmann distribution's
    preference for the lower (left) well."""
    window = UmbrellaWindow(center=0.0, k=1e-6)
    samples = metropolis_sample(
        tilted_double_well, window, 4000, KT, rng=1, step=0.4
    )
    assert (samples < 0).mean() > 0.6  # tilt favours the left well


def test_metropolis_validation():
    window = UmbrellaWindow(center=0.0, k=1.0)
    with pytest.raises(ConfigurationError):
        metropolis_sample(tilted_double_well, window, 0, KT)
    with pytest.raises(ConfigurationError):
        metropolis_sample(tilted_double_well, window, 10, -1.0)


# ------------------------------------------------------------------ WHAM


@pytest.fixture(scope="module")
def umbrella_data():
    windows = window_ladder(-1.8, 1.8, 13, k=15.0)
    samples = [
        metropolis_sample(
            tilted_double_well, w, 3000, KT, rng=100 + i, step=0.25
        )
        for i, w in enumerate(windows)
    ]
    return samples, windows


def test_wham_converges(umbrella_data):
    samples, windows = umbrella_data
    result = wham(samples, windows, KT, n_bins=50)
    assert result.converged
    assert result.probability.sum() == pytest.approx(1.0)


def test_wham_recovers_two_minima(umbrella_data):
    samples, windows = umbrella_data
    result = wham(samples, windows, KT, n_bins=50)
    fe = result.free_energy
    centers = result.bin_centers
    left = np.nanargmin(np.where(centers < 0, fe, np.nan))
    right = np.nanargmin(np.where(centers > 0, fe, np.nan))
    assert centers[left] == pytest.approx(-1.05, abs=0.25)
    assert centers[right] == pytest.approx(0.95, abs=0.25)
    # barrier between the minima
    barrier_region = (centers > -0.5) & (centers < 0.5)
    assert np.nanmin(fe[barrier_region]) > fe[left] + 1.0


def test_wham_free_energy_difference_matches_analytic(umbrella_data):
    samples, windows = umbrella_data
    result = wham(samples, windows, KT, n_bins=50)
    df = free_energy_difference(
        result, region_a=(-1.8, 0.0), region_b=(0.0, 1.8), kt=KT
    )
    # analytic basin free-energy difference by direct integration
    xs, _, p = analytic_profile(tilted_double_well)
    pa = np.trapezoid(np.where(xs < 0, p, 0), xs)
    pb = np.trapezoid(np.where(xs >= 0, p, 0), xs)
    exact = -KT * np.log(pb / pa)
    assert df == pytest.approx(exact, abs=0.25)


def test_wham_profile_shape_matches_analytic(umbrella_data):
    samples, windows = umbrella_data
    result = wham(samples, windows, KT, n_bins=50)
    xs, fe_exact, _ = analytic_profile(tilted_double_well)
    # compare on bins inside the sampled range with finite estimates
    ok = np.isfinite(result.free_energy) & (np.abs(result.bin_centers) < 1.5)
    approx = np.interp(result.bin_centers[ok], xs, fe_exact)
    rmse = np.sqrt(np.mean((result.free_energy[ok] - approx) ** 2))
    assert rmse < 0.5  # within half kT across the profile


def test_wham_validation():
    windows = window_ladder(-1, 1, 3, k=5.0)
    with pytest.raises(EstimationError):
        wham([np.ones(5)], windows, KT)
    with pytest.raises(EstimationError):
        wham([np.ones(5)] * 3, windows, kt=-1.0)
    with pytest.raises(EstimationError):
        wham([np.ones(5), np.zeros(0), np.ones(5)], windows, KT)
