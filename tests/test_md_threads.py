"""Tests for thread-level force evaluation."""

import numpy as np
import pytest

from repro.md import LangevinIntegrator, Simulation
from repro.md.models.villin import build_villin
from repro.md.threads import ThreadedForceField
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@pytest.fixture(scope="module")
def villin():
    return build_villin("fast")


def test_threaded_matches_serial_exactly(villin):
    rng = RandomStream(0)
    pos = villin.native + rng.normal(scale=0.05, size=villin.native.shape)
    e_serial, f_serial = villin.system.energy_forces(pos)
    with ThreadedForceField(villin.system.forces, n_threads=2) as threaded:
        e_thr, f_thr = threaded.energy_forces(pos)
    assert e_thr == pytest.approx(e_serial, rel=1e-14)
    np.testing.assert_array_equal(f_thr, f_serial)


def test_threaded_repeatable(villin):
    rng = RandomStream(1)
    pos = villin.native + rng.normal(scale=0.05, size=villin.native.shape)
    with ThreadedForceField(villin.system.forces, n_threads=3) as threaded:
        a = threaded.energy_forces(pos)
        b = threaded.energy_forces(pos)
    assert a[0] == b[0]
    np.testing.assert_array_equal(a[1], b[1])


def test_threaded_dynamics_match(villin):
    """A deterministic run is identical under threaded evaluation."""
    def run(system_forces):
        model = build_villin("fast")
        if system_forces == "threaded":
            ThreadedForceField(model.system.forces, n_threads=2).attach(
                model.system
            )
        state = model.native_state(rng=2, temperature=300.0)
        sim = Simulation(
            model.system, LangevinIntegrator(0.02, 300.0, rng=3), state
        )
        sim.run(200)
        return sim.state.positions

    np.testing.assert_array_equal(run("serial"), run("threaded"))


def test_attach_replaces_forces(villin):
    model = build_villin("fast")
    threaded = ThreadedForceField(model.system.forces, n_threads=2)
    threaded.attach(model.system)
    assert model.system.forces == [threaded]
    e, f = model.system.energy_forces(model.native)
    assert np.isfinite(e)


def test_validation():
    with pytest.raises(ConfigurationError):
        ThreadedForceField([], n_threads=2)
    with pytest.raises(ConfigurationError):
        ThreadedForceField([object()], n_threads=0)


def test_close_idempotent(villin):
    threaded = ThreadedForceField(villin.system.forces)
    threaded.energy_forces(villin.native)
    threaded.close()
    threaded.close()
    # pool restarts lazily after close
    e, _ = threaded.energy_forces(villin.native)
    assert np.isfinite(e)
