"""Fault-plan and chaos-network mechanics, plus Endpoint.send retries.

Every test here is seeded: the same plan seed must inject the same
faults, and production retry/timeout code must absorb exactly the
faults the plan schedules.
"""

import pytest

from repro.net.protocol import ANY_SERVER, Message, MessageType
from repro.net.transport import Endpoint, RetryPolicy
from repro.testing import ChaosNetwork, FaultKind, FaultPlan
from repro.util.errors import (
    CommunicationError,
    CommunicationTimeout,
    ConfigurationError,
    TransientCommunicationError,
)


def echo_handler(message):
    return {"echo": message.payload}


def make_pair(plan=None, seed=0, retry_policy=None):
    """a - b chaos overlay with an echoing, invocation-counting b."""
    net = ChaosNetwork(plan=plan, seed=seed)
    calls = []

    def handler(message):
        calls.append(message.type)
        return {"echo": message.payload}

    Endpoint("a", net, handler=echo_handler, retry_policy=retry_policy)
    Endpoint("b", net, handler=handler)
    net.connect("a", "b")
    return net, calls


# ------------------------------------------------------------- fault plan


def test_fault_plan_rejects_bad_probability():
    plan = FaultPlan(seed=0)
    with pytest.raises(ConfigurationError):
        plan.drop(probability=1.5)


def test_fault_plan_rejects_bad_slow_factor():
    plan = FaultPlan(seed=0)
    with pytest.raises(ConfigurationError):
        plan.slow_worker("w", factor=0.0)


def test_fault_window_and_count():
    plan = FaultPlan(seed=0)
    fault = plan.drop(after_index=2, until_index=5, count=2)
    assert not fault.active_at(1)
    assert fault.active_at(2)
    assert fault.active_at(4)
    assert not fault.active_at(5)
    fault.fired = 2
    assert not fault.active_at(3)  # count exhausted


def test_fault_describe_is_schema_stable():
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.HEARTBEAT, probability=0.5)
    plan.partition("a", "b", after_index=3, until_index=9)
    described = plan.describe()
    assert described[0]["kind"] == "drop"
    assert described[0]["message_type"] == "heartbeat"
    assert described[0]["probability"] == 0.5
    assert described[1]["link"] == ("a", "b")
    assert described[1]["until_index"] == 9


def test_probabilistic_faults_reproducible_per_seed():
    def firing_pattern(seed):
        plan = FaultPlan(seed=seed)
        fault = plan.drop(probability=0.5)
        message = Message(MessageType.HEARTBEAT, src="a", dst="b")
        return [
            bool(plan.message_faults(message, i)) for i in range(40)
        ], fault.fired

    pattern_a, fired_a = firing_pattern(123)
    pattern_b, fired_b = firing_pattern(123)
    assert pattern_a == pattern_b
    assert fired_a == fired_b
    assert 0 < fired_a < 40  # actually probabilistic
    pattern_c, _ = firing_pattern(456)
    assert pattern_a != pattern_c  # seed matters


# ------------------------------------------------------- drops and retries


def test_transient_drop_survived_by_retries():
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.PROJECT_STATUS, count=2)
    net, calls = make_pair(plan=plan)
    a = net.endpoint("a")
    response = a.send("b", MessageType.PROJECT_STATUS, {"q": 1})
    assert response == {"echo": {"q": 1}}
    assert a.send_retries == 2
    assert a.send_failures == 0
    assert net.messages_dropped == 2
    assert net.retries_total == 2
    assert net.retry_backoff_seconds > 0


def test_retry_budget_exhausted_raises_communication_error():
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.PROJECT_STATUS)  # permanent
    net, calls = make_pair(plan=plan)
    a = net.endpoint("a")
    with pytest.raises(CommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    assert a.send_retries == a.retry_policy.max_retries
    assert a.send_failures == 1
    assert calls == []  # nothing ever got through


def test_retry_backoff_is_exponential_on_virtual_clock():
    policy = RetryPolicy(max_retries=3, backoff_base=1.0, backoff_factor=2.0)
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.PROJECT_STATUS)
    net, _ = make_pair(plan=plan, retry_policy=policy)
    a = net.endpoint("a")
    with pytest.raises(CommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    assert a.backoff_seconds == pytest.approx(1.0 + 2.0 + 4.0)
    assert net.retry_backoff_seconds == pytest.approx(7.0)


def test_permanent_routing_errors_not_retried():
    net = ChaosNetwork(seed=0)
    Endpoint("a", net, handler=echo_handler)
    a = net.endpoint("a")
    with pytest.raises(CommunicationError):
        a.send("ghost", MessageType.PROJECT_STATUS, {})
    assert a.send_retries == 0  # unknown endpoint is permanent


def test_retries_surface_in_traffic_report():
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.PROJECT_STATUS, count=1)
    net, _ = make_pair(plan=plan)
    net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    rows = {row["link"]: row for row in net.traffic_report()}
    assert "endpoint:a" in rows
    assert rows["endpoint:a"]["retries"] == 1
    assert rows["endpoint:a"]["backoff_seconds"] > 0
    # quiet endpoints add no rows
    assert "endpoint:b" not in rows


def test_retransmissions_carry_attempt_number():
    plan = FaultPlan(seed=0)
    plan.drop(message_type=MessageType.PROJECT_STATUS, count=1)
    net = ChaosNetwork(plan=plan)
    attempts = []

    def recorder(message):
        attempts.append(message.attempt)
        return {}

    Endpoint("a", net, handler=echo_handler)
    Endpoint("b", net, handler=recorder)
    net.connect("a", "b")
    net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    assert attempts == [1]  # attempt 0 was dropped before the handler


# ------------------------------------------------------- delays / timeouts


def test_delay_fault_charges_virtual_clock():
    plan = FaultPlan(seed=0)
    plan.delay(30.0, message_type=MessageType.PROJECT_STATUS, count=1)
    net, _ = make_pair(plan=plan)
    before = net.total_transfer_seconds
    net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    assert net.total_transfer_seconds - before > 30.0
    assert net.chaos_delay_seconds == pytest.approx(30.0)


def test_timeout_trips_and_retry_succeeds():
    plan = FaultPlan(seed=0)
    plan.delay(30.0, message_type=MessageType.PROJECT_STATUS, count=1)
    net, calls = make_pair(plan=plan)
    a = net.endpoint("a")
    response = a.send("b", MessageType.PROJECT_STATUS, {"q": 2}, timeout=5.0)
    assert response == {"echo": {"q": 2}}
    assert a.send_timeouts == 1
    assert net.timeouts_total == 1
    # the timed-out attempt DID reach the handler: receivers must dedup
    assert len(calls) == 2


def test_timeout_gives_up_after_budget():
    plan = FaultPlan(seed=0)
    plan.delay(30.0, message_type=MessageType.PROJECT_STATUS)  # every attempt
    net, _ = make_pair(plan=plan)
    a = net.endpoint("a")
    with pytest.raises(CommunicationTimeout):
        a.send("b", MessageType.PROJECT_STATUS, {}, timeout=5.0)
    assert a.send_timeouts == a.retry_policy.max_retries + 1


# ------------------------------------------------------------ duplication


def test_duplicate_fault_invokes_handler_twice():
    plan = FaultPlan(seed=0)
    plan.duplicate(message_type=MessageType.PROJECT_STATUS, count=1)
    net, calls = make_pair(plan=plan)
    response = net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {"q": 3})
    assert response == {"echo": {"q": 3}}
    assert len(calls) == 2  # original + duplicate
    assert net.messages_delivered == 2


# -------------------------------------------------------------- partitions


def test_partition_window_heals():
    plan = FaultPlan(seed=0)
    plan.partition("a", "b", after_index=0, until_index=2)
    # no retries: observe the raw partition
    net, _ = make_pair(plan=plan, retry_policy=RetryPolicy(max_retries=0))
    a = net.endpoint("a")
    with pytest.raises(TransientCommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    with pytest.raises(TransientCommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    # window [0, 2) has passed: traffic flows again
    assert a.send("b", MessageType.PROJECT_STATUS, {"q": 4}) == {
        "echo": {"q": 4}
    }


def test_permanent_partition_defeats_retry_budget():
    plan = FaultPlan(seed=0)
    plan.partition("a", "b")
    net, calls = make_pair(plan=plan)
    a = net.endpoint("a")
    with pytest.raises(CommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    assert a.send_retries == a.retry_policy.max_retries
    assert calls == []


def test_partition_only_severs_named_link():
    plan = FaultPlan(seed=0)
    plan.partition("a", "b")
    net = ChaosNetwork(plan=plan)
    for name in "abc":
        Endpoint(name, net, handler=echo_handler)
    net.connect("a", "b")
    net.connect("a", "c")
    assert net.endpoint("a").send("c", MessageType.PROJECT_STATUS, {}) == {
        "echo": {}
    }


# ------------------------------------------------------------ server crash


def test_server_crash_rejects_traffic_then_reboots():
    plan = FaultPlan(seed=0)
    plan.crash_server("b", after_index=1, until_index=3)
    net, calls = make_pair(plan=plan, retry_policy=RetryPolicy(max_retries=0))
    a = net.endpoint("a")
    assert a.send("b", MessageType.PROJECT_STATUS, {}) == {"echo": {}}
    with pytest.raises(TransientCommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    with pytest.raises(TransientCommunicationError):
        a.send("b", MessageType.PROJECT_STATUS, {})
    assert a.send("b", MessageType.PROJECT_STATUS, {}) == {"echo": {}}
    assert len(calls) == 2


def test_wildcard_skips_crashed_server():
    plan = FaultPlan(seed=0)
    plan.crash_server("b")
    net = ChaosNetwork(plan=plan)

    def acceptor(name):
        return lambda message: {"accepted_by": name}

    Endpoint("a", net, handler=lambda m: None)
    Endpoint("b", net, handler=acceptor("b"))
    Endpoint("c", net, handler=acceptor("c"))
    net.connect("a", "b")
    net.connect("b", "c")
    response = net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})
    assert response == {"accepted_by": "c"}


# ------------------------------------------------------------- slow worker


def test_slow_worker_fault_arms_throttle():
    class FakeWorker(Endpoint):
        def __init__(self, name, network):
            super().__init__(name, network, handler=lambda m: {})
            self.throttle = 1.0

        def set_crash_hook(self, hook):
            self._hook = hook

    plan = FaultPlan(seed=0)
    plan.slow_worker("w", factor=0.25)
    net = ChaosNetwork(plan=plan)
    Endpoint("srv", net, handler=echo_handler)
    w = FakeWorker("w", net)
    net.connect("srv", "w")
    net.arm()
    assert w.throttle == 0.25


def test_chaos_report_structure():
    plan = FaultPlan(seed=42)
    plan.drop(count=1)
    net, _ = make_pair(plan=plan)
    net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    report = net.chaos_report()
    assert report["seed"] == 42
    assert report["dropped"] == 1
    assert report["firings"] == 1
    assert report["faults"][0]["kind"] == FaultKind.DROP.value


# ------------------------------------------------------- directed partitions


def test_directed_partition_is_asymmetric():
    # packets a->b drop; packets b->a deliver — the shape a real
    # partition takes (a gateway that cannot reach a shard whose own
    # uplink still works).  A request from b still *arrives* (the
    # reverse direction flows), though its answer dies on the cut.
    plan = FaultPlan(seed=0)
    plan.partition_link("a", "b")
    net = ChaosNetwork(plan=plan, seed=0)
    reached = {"a": 0, "b": 0}

    def recorder(name):
        def handler(message):
            reached[name] += 1
            return {"echo": message.payload}

        return handler

    Endpoint("a", net, handler=recorder("a"), retry_policy=RetryPolicy(max_retries=0))
    Endpoint("b", net, handler=recorder("b"), retry_policy=RetryPolicy(max_retries=0))
    net.connect("a", "b")
    # severed direction: the request never reaches b at all
    with pytest.raises(TransientCommunicationError):
        net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    assert reached["b"] == 0
    # reverse direction: the request crosses and is handled — only the
    # answer (a packet travelling a->b) dies on the same cut
    with pytest.raises(TransientCommunicationError):
        net.endpoint("b").send("a", MessageType.HEARTBEAT, {"w": 1})
    assert reached["a"] == 1


def test_directed_partition_leaves_symmetric_rule_semantics_alone():
    # the undirected rule severs both directions of the same edge
    plan = FaultPlan(seed=0)
    plan.partition("a", "b")
    net, _ = make_pair(plan=plan, retry_policy=RetryPolicy(max_retries=0))
    with pytest.raises(TransientCommunicationError):
        net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    with pytest.raises(TransientCommunicationError):
        net.endpoint("b").send("a", MessageType.HEARTBEAT, {})


def test_partition_link_heals_on_schedule():
    plan = FaultPlan(seed=0)
    fault = plan.partition_link("a", "b", after_index=0, heal_after=3)
    assert fault.until_index == 3
    net, _ = make_pair(plan=plan, retry_policy=RetryPolicy(max_retries=0))
    a = net.endpoint("a")
    outcomes = []
    for _ in range(5):
        try:
            a.send("b", MessageType.PROJECT_STATUS, {})
            outcomes.append("ok")
        except TransientCommunicationError:
            outcomes.append("cut")
    # deliveries 0..2 die on the cut; the heal lifts it at index 3
    assert outcomes == ["cut", "cut", "cut", "ok", "ok"]
    assert fault.fired == 3


def test_partition_link_rejects_bad_heal_budget():
    plan = FaultPlan(seed=0)
    with pytest.raises(ConfigurationError):
        plan.partition_link("a", "b", heal_after=0)


def test_flaky_directed_partition_is_seed_reproducible():
    def pattern(seed):
        plan = FaultPlan(seed=seed)
        plan.partition_link("a", "b", probability=0.5)
        net, _ = make_pair(plan=plan, retry_policy=RetryPolicy(max_retries=0))
        a = net.endpoint("a")
        outcomes = []
        for _ in range(12):
            try:
                a.send("b", MessageType.PROJECT_STATUS, {})
                outcomes.append("ok")
            except TransientCommunicationError:
                outcomes.append("cut")
        return outcomes

    first = pattern(3)
    assert first == pattern(3)
    assert "ok" in first and "cut" in first  # genuinely flaky, not constant


def test_breaker_half_open_probe_closes_after_directed_heal():
    """The circuit breaker's life cycle across a partition-with-heal:
    open on the first severed wildcard probe, skip while open, and
    close through a half-open probe once the link heals."""
    from repro.net.circuit import BreakerPolicy, BreakerState

    plan = FaultPlan(seed=0)
    # a wildcard walk consumes one delivery index however many peers
    # it probes: two walks under the cut, healed from the third on
    fault = plan.partition_link("a", "b", after_index=0, heal_after=2)
    net = ChaosNetwork(plan=plan, seed=0)
    Endpoint(
        "a", net, handler=lambda m: None,
        breaker_policy=BreakerPolicy(
            failure_threshold=1, cooldown_seconds=50.0, half_open_probes=1
        ),
    )
    Endpoint("b", net, handler=lambda m: {"by": "b"})
    Endpoint("c", net, handler=lambda m: {"by": "c"})
    net.connect("a", "b")
    net.connect("a", "c")
    a = net.endpoint("a")

    # walk 1 (deliveries 0-1): the severed probe to b opens the
    # breaker; the walk moves on and c claims the request
    assert a.send(ANY_SERVER, MessageType.COMMAND_FETCH, {}) == {"by": "c"}
    breaker = a.breaker_for("b")
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1

    # walk 2, still inside the cooldown: b is skipped outright — no
    # delivery is even attempted toward it
    a.clock = 10.0
    assert a.send(ANY_SERVER, MessageType.COMMAND_FETCH, {}) == {"by": "c"}
    assert breaker.skips == 1

    # the link healed at delivery index 2; once the cooldown elapses
    # the half-open probe reaches b, succeeds, and closes the breaker
    assert net.delivery_index >= fault.until_index
    a.clock = 60.0
    assert a.send(ANY_SERVER, MessageType.COMMAND_FETCH, {}) == {"by": "b"}
    assert breaker.state is BreakerState.CLOSED
    assert breaker.closes == 1
