"""Tests for Kabsch alignment and RMSD, incl. hypothesis invariances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rmsd import (
    kabsch_align,
    pairwise_rmsd_to_targets,
    rmsd,
    rmsd_to_reference,
)
from repro.md.models.villin import build_villin
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


def random_rotation(rng):
    q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def test_rmsd_identical_is_zero():
    x = RandomStream(0).normal(size=(10, 3))
    assert rmsd(x, x) == pytest.approx(0.0, abs=1e-10)


def test_rmsd_rotated_translated_copy_is_zero():
    rng = RandomStream(1)
    x = rng.normal(size=(12, 3))
    moved = x @ random_rotation(rng).T + np.array([3.0, -1.0, 2.0])
    assert rmsd(moved, x) == pytest.approx(0.0, abs=1e-9)


def test_rmsd_without_alignment_sees_displacement():
    x = RandomStream(2).normal(size=(8, 3))
    moved = x + np.array([1.0, 0.0, 0.0])
    assert rmsd(moved, x, align=False) == pytest.approx(1.0)
    assert rmsd(moved, x, align=True) == pytest.approx(0.0, abs=1e-9)


def test_rmsd_known_value():
    # two atoms displaced by d each -> rmsd = d (after centering both have
    # the same centroid, so disable alignment for the raw value)
    a = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    b = np.array([[0.0, 0.5, 0.0], [1.0, 0.5, 0.0]])
    assert rmsd(a, b, align=False) == pytest.approx(0.5)


def test_rmsd_shape_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        rmsd(np.zeros((3, 3)), np.zeros((4, 3)))


def test_kabsch_align_single_frame_shape():
    rng = RandomStream(3)
    x = rng.normal(size=(7, 3))
    aligned = kabsch_align(x, x)
    assert aligned.shape == (7, 3)


def test_kabsch_align_batch_matches_loop():
    rng = RandomStream(4)
    ref = rng.normal(size=(9, 3))
    frames = rng.normal(size=(5, 9, 3))
    batch = kabsch_align(frames, ref)
    for k in range(5):
        single = kabsch_align(frames[k], ref)
        np.testing.assert_allclose(batch[k], single, atol=1e-12)


def test_kabsch_never_mirrors():
    """Alignment must use proper rotations only (det = +1)."""
    rng = RandomStream(5)
    ref = rng.normal(size=(6, 3))
    mirrored = ref.copy()
    mirrored[:, 0] = -mirrored[:, 0]
    value = rmsd(mirrored, ref)
    assert value > 0.1  # a mirror image cannot be aligned to zero


def test_rmsd_to_reference_batch():
    rng = RandomStream(6)
    ref = rng.normal(size=(11, 3))
    frames = np.stack([ref, ref + 0.5 * rng.normal(size=(11, 3))])
    values = rmsd_to_reference(frames, ref)
    assert values.shape == (2,)
    assert values[0] == pytest.approx(0.0, abs=1e-9)
    assert values[1] > 0.05


def test_rmsd_to_reference_requires_3d():
    with pytest.raises(ConfigurationError):
        rmsd_to_reference(np.zeros((5, 3)), np.zeros((5, 3)))


def test_pairwise_rmsd_to_targets_shape():
    rng = RandomStream(7)
    frames = rng.normal(size=(6, 5, 3))
    targets = rng.normal(size=(3, 5, 3))
    mat = pairwise_rmsd_to_targets(frames, targets)
    assert mat.shape == (6, 3)
    # self-consistency: column t equals rmsd_to_reference against target t
    np.testing.assert_allclose(
        mat[:, 1], rmsd_to_reference(frames, targets[1]), atol=1e-12
    )


def test_villin_native_vs_extended_rmsd_scale():
    model = build_villin("fast")
    extended = model.extended_state(rng=0).positions
    value = rmsd(extended, model.native)
    assert value > 0.5  # unfolded chain is far from native (nm scale)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=4, max_value=30), st.integers(min_value=0, max_value=10**6))
def test_property_rmsd_rotation_invariant(n_atoms, seed):
    rng = RandomStream(seed)
    x = rng.normal(size=(n_atoms, 3))
    y = rng.normal(size=(n_atoms, 3))
    base = rmsd(x, y)
    rotated = x @ random_rotation(rng).T + rng.normal(size=3)
    assert rmsd(rotated, y) == pytest.approx(base, abs=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=4, max_value=20), st.integers(min_value=0, max_value=10**6))
def test_property_rmsd_symmetric(n_atoms, seed):
    rng = RandomStream(seed)
    x = rng.normal(size=(n_atoms, 3))
    y = rng.normal(size=(n_atoms, 3))
    assert rmsd(x, y) == pytest.approx(rmsd(y, x), abs=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=4, max_value=20), st.integers(min_value=0, max_value=10**6))
def test_property_aligned_rmsd_not_above_raw(n_atoms, seed):
    """Optimal alignment can only reduce the RMSD."""
    rng = RandomStream(seed)
    x = rng.normal(size=(n_atoms, 3))
    y = rng.normal(size=(n_atoms, 3))
    # compare against centered raw distance (alignment includes centering)
    xc = x - x.mean(axis=0)
    yc = y - y.mean(axis=0)
    raw = np.sqrt(np.mean(np.sum((xc - yc) ** 2, axis=1)))
    assert rmsd(x, y) <= raw + 1e-8
