"""The redesigned ``repro.api`` facade and its deprecation shims.

Covers the declarative surface (Ensemble / Project / run / RunOutcome),
the keyword-only :meth:`Simulation.configure` builder, the shared model
registry, and the requirement that every legacy entry point still works
but warns through :mod:`repro.compat`.
"""

import warnings

import numpy as np
import pytest

from repro import api
from repro.api import Ensemble, Project, RunOutcome, run
from repro.md.engine import (
    BuiltModel,
    MDEngine,
    MDTask,
    UnknownModelError,
    register_model,
    resolve_model,
)
from repro.md.integrators import make_integrator
from repro.md.simulation import Simulation
from repro.util.errors import ConfigurationError
from repro.util.serialization import encode_message

MODEL = "double-well"
STEPS = 120


# -- Ensemble -----------------------------------------------------------------


def test_ensemble_validates_at_declaration_time():
    with pytest.raises(UnknownModelError):
        Ensemble(model="no-such-model")
    with pytest.raises(ConfigurationError):
        Ensemble(model=MODEL, n_replicas=0)
    with pytest.raises(ConfigurationError):
        Ensemble(model=MODEL, steps=0)


def test_ensemble_tasks_are_batch_compatible_replicas():
    ensemble = Ensemble(
        model=MODEL, n_replicas=4, steps=STEPS, seed=7, name="fold"
    )
    tasks = ensemble.tasks()
    assert [t.seed for t in tasks] == [7, 8, 9, 10]
    assert [t.task_id for t in tasks] == [f"fold/r{r}" for r in range(4)]
    from repro.md.engine import BatchedMDTask

    BatchedMDTask.from_tasks(tasks)  # must not raise: replicas coalesce


def test_ensemble_commands_carry_task_payloads():
    ensemble = Ensemble(model=MODEL, n_replicas=2, steps=STEPS)
    commands = ensemble.commands("p1")
    assert [c.executable for c in commands] == ["mdrun", "mdrun"]
    assert all(c.project_id == "p1" for c in commands)
    assert [MDTask.from_payload(c.payload).seed for c in commands] == [0, 1]


# -- Project / run / RunOutcome ----------------------------------------------


def test_project_rejects_ensembles_plus_controller():
    class _Stub:
        pass

    with pytest.raises(ConfigurationError):
        Project("p", ensembles=[Ensemble(model=MODEL)], controller=_Stub())


def test_project_run_requires_work():
    with pytest.raises(ConfigurationError):
        Project("empty").run()


def test_add_ensemble_chains_and_guards():
    project = Project("p").add_ensemble(Ensemble(model=MODEL))
    assert len(project.ensembles) == 1


def test_run_outcome_results_bit_identical_to_serial_engine():
    ensemble = Ensemble(
        model=MODEL, n_replicas=4, steps=STEPS, seed=3, name="e"
    )
    # one segment per command, so frames compare against an
    # uninterrupted engine run (resume re-primes a frame otherwise)
    outcome = run(ensemble, name="facade", segment_steps=STEPS)
    assert isinstance(outcome, RunOutcome)
    assert outcome.status == "complete"
    assert "facade" in outcome.transcript

    engine = MDEngine(segment_steps=STEPS)
    results = outcome.ensemble_results(ensemble)
    assert len(results) == 4
    for task, got in zip(ensemble.tasks(), results):
        expect = engine.run(task)
        np.testing.assert_array_equal(got.frames, expect.frames)
        assert encode_message(got.checkpoint) == encode_message(
            expect.checkpoint
        )


def test_run_auto_batch_capacity_coalesces_ensembles():
    outcome = run(
        Ensemble(model=MODEL, n_replicas=6, steps=STEPS), segment_steps=60
    )
    coalesced = outcome.obs.metrics.value(
        "repro_worker_commands_coalesced_total", worker="w0"
    )
    assert coalesced >= 6
    assert len(outcome.md_results()) == 6


def test_run_explicit_batch_capacity_one_disables_coalescing():
    outcome = run(
        Ensemble(model=MODEL, n_replicas=3, steps=STEPS),
        batch_capacity=1,
        segment_steps=60,
    )
    assert outcome.status == "complete"
    assert (
        outcome.obs.metrics.value(
            "repro_worker_commands_coalesced_total", worker="w0"
        )
        == 0
    )


def test_auto_batch_capacity_is_capped():
    from repro.md.dispatch import MAX_AUTO_BATCH

    project = Project(
        "p", ensembles=[Ensemble(model=MODEL, n_replicas=500, steps=STEPS)]
    )
    assert project._auto_batch_capacity() == MAX_AUTO_BATCH


def test_max_auto_batch_legacy_alias_warns():
    from repro.md.dispatch import MAX_AUTO_BATCH

    with pytest.warns(DeprecationWarning, match="repro.md.dispatch"):
        assert api.MAX_AUTO_BATCH == MAX_AUTO_BATCH


# -- Simulation.configure -----------------------------------------------------


def test_simulation_configure_is_keyword_only():
    with pytest.raises(TypeError):
        Simulation.configure(MODEL)  # noqa: B026 — positional must fail


def test_simulation_configure_matches_engine_run():
    task = MDTask(
        model=MODEL, n_steps=STEPS, report_interval=40, seed=5, task_id="t"
    )
    expect = MDEngine(segment_steps=STEPS).run(task)
    simulation = Simulation.configure(
        model=MODEL, steps=STEPS, seed=5, report_interval=40
    )
    simulation.run()  # default_steps supplies the budget
    assert encode_message(
        simulation.checkpoint().to_payload()
    ) == encode_message(expect.checkpoint)


def test_simulation_run_without_steps_raises():
    simulation = Simulation.configure(model=MODEL)
    with pytest.raises(ConfigurationError):
        simulation.run()


def test_simulation_configure_unknown_names_raise():
    with pytest.raises(UnknownModelError):
        Simulation.configure(model="no-such-model")
    with pytest.raises(ConfigurationError):
        Simulation.configure(model=MODEL, integrator="no-such-integrator")


# -- model registry -----------------------------------------------------------


def test_registry_shared_by_serial_and_batched_paths():
    built = resolve_model(MODEL, {})
    assert isinstance(built, BuiltModel)
    with pytest.raises(UnknownModelError) as err:
        resolve_model("bogus", {})
    assert "bogus" in str(err.value)


def test_register_model_round_trip():
    base = resolve_model(MODEL, {})

    def factory(name, params):
        return base

    register_model("facade-test-model", factory)
    try:
        assert resolve_model("facade-test-model", {}) is base
    finally:
        from repro.md.engine import MODEL_REGISTRY

        MODEL_REGISTRY.pop("facade-test-model")


def test_make_integrator_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        make_integrator("leapfrog", timestep=0.02)


# -- deprecation shims --------------------------------------------------------


def test_compat_reexports_warn_and_resolve():
    import repro.compat as compat

    for legacy in ("Network", "MDEngine", "Simulation"):
        with pytest.warns(DeprecationWarning, match="repro.compat"):
            resolved = getattr(compat, legacy)
        assert resolved is not None
    with pytest.raises(AttributeError):
        compat.NoSuchName


def test_check_failures_alias_warns_and_forwards():
    from repro.net.transport import Network
    from repro.server.server import CopernicusServer

    server = CopernicusServer("srv", Network(seed=0))
    with pytest.warns(DeprecationWarning, match="check_liveness"):
        server.check_failures(0.0)


def test_scenario_result_getitem_warns_but_works():
    from repro.testing.scenarios import ScenarioResult

    result = ScenarioResult(
        runner=None,
        server="srv",
        workers=[],
        controller=None,
        network=None,
        obs=None,
        transcript="",
        chaos=None,
    )
    with pytest.warns(DeprecationWarning, match="ScenarioResult.server"):
        assert result["server"] == "srv"
    with pytest.raises(KeyError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result["no_such_field"]
    assert "server" in result


def test_public_api_importable_without_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import importlib

        import repro.api

        importlib.reload(repro.api)
