"""Adaptive command coalescing is invisible above the worker.

Two deployments run the same swarm, one with ``batch_capacity=1``
(serial execution) and one with ``batch_capacity=8`` (commands merged
into batched kernel calls).  Everything the server and observability
layers can see — per-command results, execution records, trace spans,
journal records, the dedup barrier — must be indistinguishable; only
wall-clock time may differ.
"""

import copy

import pytest

from repro.core.command import Command
from repro.core.project import Project, ProjectStatus
from repro.core.runner import ProjectRunner
from repro.md.engine import MDTask
from repro.net.transport import Network
from repro.server.matching import WorkerCapabilities, build_workload
from repro.server.queue import CommandQueue
from repro.server.server import CopernicusServer
from repro.server.wal import ServerJournal
from repro.testing.scenarios import SwarmController
from repro.util.errors import ConfigurationError
from repro.util.serialization import encode_message
from repro.worker.coalesce import (
    BatchCommand,
    coalesce_commands,
    coalesce_key,
    merge_commands,
    split_results,
)
from repro.worker.executor import ParallelExecutor
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker

N_COMMANDS = 4
N_STEPS = 240
SEGMENT_STEPS = 80


def mdrun_command(k, n_steps=N_STEPS, model="double-well", **task_kw):
    return Command(
        command_id=f"cmd{k}",
        project_id="p",
        executable="mdrun",
        payload=MDTask(
            model=model,
            n_steps=n_steps,
            report_interval=60,
            seed=k,
            task_id=f"cmd{k}",
            **task_kw,
        ).to_payload(),
    )


def scrub(value):
    """Drop wall-clock fields (the only legal divergence)."""
    if isinstance(value, dict):
        return {
            k: scrub(v) for k, v in value.items() if k != "wall_seconds"
        }
    if isinstance(value, list):
        return [scrub(v) for v in value]
    return value


# -- unit level: keys, merging, splitting -------------------------------------


def test_coalesce_key_groups_compatible_commands():
    a, b = mdrun_command(0), mdrun_command(1)
    assert coalesce_key(a) == coalesce_key(b) is not None
    different_steps = mdrun_command(2, n_steps=N_STEPS + 1)
    assert coalesce_key(different_steps) != coalesce_key(a)


def test_coalesce_key_refuses_checkpointed_and_foreign_commands():
    checkpointed = mdrun_command(0)
    checkpointed.checkpoint = {"step": 1}
    assert coalesce_key(checkpointed) is None
    foreign = Command(
        command_id="f", project_id="p", executable="fepsample", payload={}
    )
    assert coalesce_key(foreign) is None


def test_coalesce_commands_caps_and_preserves_order():
    commands = [mdrun_command(k) for k in range(5)]
    odd = mdrun_command(9, n_steps=N_STEPS + 1)
    merged = coalesce_commands(
        [commands[0], odd, *commands[1:]], capacity=3
    )
    assert isinstance(merged[0], BatchCommand)
    assert [m.command_id for m in merged[0].members] == ["cmd0", "cmd1", "cmd2"]
    assert merged[1].command_id == "cmd9"
    assert isinstance(merged[2], BatchCommand)
    assert [m.command_id for m in merged[2].members] == ["cmd3", "cmd4"]
    # idempotent: a second pass leaves merged entries untouched
    again = coalesce_commands(merged, capacity=3)
    assert again == merged


def test_merge_commands_requires_group():
    with pytest.raises(ConfigurationError):
        merge_commands([mdrun_command(0)])


def test_split_results_validates_lengths():
    batch = merge_commands([mdrun_command(0), mdrun_command(1)])
    with pytest.raises(ConfigurationError):
        split_results(batch, {"results": [{}]})


# -- executor level -----------------------------------------------------------


def test_parallel_executor_coalescing_matches_serial_results():
    commands = [mdrun_command(k) for k in range(4)]
    commands.append(mdrun_command(7, n_steps=N_STEPS + 60))
    plain = ParallelExecutor(n_processes=1).run_commands(commands)
    merged = ParallelExecutor(n_processes=1, coalesce_limit=4).run_commands(
        commands
    )
    assert [c.command_id for c, _ in merged] == [
        c.command_id for c, _ in plain
    ]
    for (_, expect), (_, got) in zip(plain, merged):
        assert encode_message(scrub(got)) == encode_message(scrub(expect))


# -- matching level ------------------------------------------------------------


def test_build_workload_hands_riders_to_batch_capable_workers():
    queue = CommandQueue()
    for k in range(6):
        queue.push(mdrun_command(k))
    caps = WorkerCapabilities(
        worker="w0",
        platform="smp",
        cores=2,
        executables=["mdrun", "mdrun_batch"],
        batch_capacity=4,
    )
    workload = build_workload(queue, caps)
    ids = [c.command_id for c, _ in workload]
    # one host command + 3 riders sharing its cores, then a second host
    # command (+ rider) on the remaining core
    assert ids[:4] == ["cmd0", "cmd1", "cmd2", "cmd3"]
    assert len(ids) == 6
    cores = [a for _, a in workload]
    assert cores[0] == cores[1] == cores[2] == cores[3]


def test_build_workload_without_batch_executable_ignores_capacity():
    queue = CommandQueue()
    for k in range(4):
        queue.push(mdrun_command(k))
    caps = WorkerCapabilities(
        worker="w0",
        platform="smp",
        cores=1,
        executables=["mdrun"],
        batch_capacity=8,
    )
    workload = build_workload(queue, caps)
    assert [c.command_id for c, _ in workload] == ["cmd0"]


# -- deployment level: full indistinguishability ------------------------------


def run_swarm(batch_capacity, journal_root=None):
    network = Network(seed=0)
    server = CopernicusServer("srv", network)
    if journal_root is not None:
        server.attach_journal(ServerJournal(journal_root))
    worker = Worker(
        "w0",
        network,
        server="srv",
        platform=SMPPlatform(cores=1),
        segment_steps=SEGMENT_STEPS,
        batch_capacity=batch_capacity,
    )
    network.connect("srv", "w0")
    worker.announce(0.0)
    controller = SwarmController(n_commands=N_COMMANDS, n_steps=N_STEPS)
    runner = ProjectRunner(network, server, [worker], tick=60.0)
    project = Project("swarm")
    runner.submit(project, controller)
    runner.run(max_cycles=1000)
    if journal_root is not None:
        server.journal.close()
    return {
        "project": project,
        "controller": controller,
        "worker": worker,
        "network": network,
        "runner": runner,
    }


def journal_skeleton(root):
    """Per-command sequence of journal record types (+checkpoint steps).

    Assignment granularity is allowed to differ — the server hands a
    batch-capable worker several compatible commands in one workload
    message by design — but every individual command must leave the
    same records either way.
    """
    journal = ServerJournal(root)
    records = list(journal.project("swarm").wal.records())
    journal.close()
    per_command = {}
    for record in records:
        kind = record.get("type")
        ids = record.get("command_ids")
        if ids is None and record.get("command_id") is not None:
            ids = [record["command_id"]]
        if ids is None and isinstance(record.get("command"), dict):
            ids = [record["command"]["command_id"]]
        for command_id in ids or []:
            entry = (kind, record.get("step"))
            per_command.setdefault(command_id, []).append(entry)
    return per_command


def test_coalesced_swarm_indistinguishable_from_serial(tmp_path):
    serial = run_swarm(1, journal_root=tmp_path / "serial")
    merged = run_swarm(8, journal_root=tmp_path / "merged")

    # coalescing actually happened — and only in the merged deployment
    def coalesced(outcome):
        return outcome["network"].obs.metrics.value(
            "repro_worker_commands_coalesced_total", worker="w0"
        )

    assert coalesced(serial) == 0
    assert coalesced(merged) >= N_COMMANDS

    # per-command results: byte-identical modulo wall-clock
    for outcome in (serial, merged):
        assert outcome["project"].status is ProjectStatus.COMPLETE
    serial_log = dict(serial["project"].results_log)
    merged_log = dict(merged["project"].results_log)
    assert sorted(serial_log) == sorted(merged_log)
    for command_id in serial_log:
        assert encode_message(scrub(merged_log[command_id])) == encode_message(
            scrub(serial_log[command_id])
        )

    # execution records: same commands, same segment counts, no batch ids
    def history(outcome):
        return [
            (r.command_id, r.segments, r.completed)
            for r in outcome["worker"].history
        ]

    assert history(merged) == history(serial)
    assert all(not cid.startswith("batch:") for cid, _, _ in history(merged))

    # worker.execute spans: one per member command, identical attributes
    def exec_spans(outcome):
        return [
            (s.name, s.attributes.get("command"), s.attributes.get("completed"))
            for s in outcome["network"].obs.tracer.spans
            if s.name == "worker.execute"
        ]

    assert exec_spans(merged) == exec_spans(serial)

    # journal: same record kinds against the same command ids
    assert journal_skeleton(tmp_path / "merged") == journal_skeleton(
        tmp_path / "serial"
    )

    # dedup barrier untouched: nothing dropped, nothing doubled
    assert (
        merged["controller"].finished == serial["controller"].finished
    )


def test_coalesced_swarm_transcript_deterministic():
    first = run_swarm(8)
    second = run_swarm(8)
    assert first["runner"].events.to_text() == second["runner"].events.to_text()
