"""Tests for the controller framework: projects, runner, plugins."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMSMController,
    BARController,
    Command,
    Controller,
    FEPProjectConfig,
    MSMProjectConfig,
    Project,
    ProjectRunner,
    ProjectStatus,
)
from repro.md.engine import MDTask
from repro.net import Network
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker
from repro.util.errors import ConfigurationError, SchedulingError


class OneShotController(Controller):
    """Minimal controller: one command, complete when it returns."""

    def __init__(self, n_commands=1, n_steps=200):
        self.n_commands = n_commands
        self.n_steps = n_steps
        self.done = 0
        self.results = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"c{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model="muller-brown", n_steps=self.n_steps, seed=k, task_id=f"c{k}"
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.done += 1
        self.results.append(result)
        return []

    def is_complete(self, project):
        return self.done >= self.n_commands


def simple_rig(n_workers=1, cores=2, heartbeat=30.0, segment_steps=500):
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=heartbeat)
    workers = []
    for k in range(n_workers):
        w = Worker(
            f"w{k}",
            net,
            server="srv",
            platform=SMPPlatform(cores=cores),
            segment_steps=segment_steps,
        )
        net.connect("srv", f"w{k}")
        w.announce(0.0)
        workers.append(w)
    return net, server, workers


# --------------------------------------------------------------- project


def test_project_bookkeeping():
    p = Project("p")
    cmds = [Command("a", "p", "mdrun"), Command("b", "p", "mdrun")]
    p.record_issue(cmds)
    assert p.outstanding == 2
    p.record_result(cmds[0], {"ok": 1})
    assert p.outstanding == 1
    assert p.completed == 1
    assert p.results_log[0][0] == "a"


# ----------------------------------------------------------------- runner


def test_runner_completes_simple_project():
    net, server, workers = simple_rig()
    runner = ProjectRunner(net, server, workers)
    project = Project("demo")
    controller = OneShotController(n_commands=3)
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    assert controller.done == 3


def test_runner_rejects_duplicate_submission():
    net, server, workers = simple_rig()
    runner = ProjectRunner(net, server, workers)
    project = Project("demo")
    runner.submit(project, OneShotController())
    with pytest.raises(SchedulingError):
        runner.submit(project, OneShotController())


def test_runner_invalid_tick():
    net, server, workers = simple_rig()
    with pytest.raises(SchedulingError):
        ProjectRunner(net, server, workers, tick=0.0)


def test_runner_all_workers_crashed_raises():
    net, server, workers = simple_rig()
    runner = ProjectRunner(net, server, workers)
    runner.submit(Project("demo"), OneShotController())
    workers[0].crash()
    with pytest.raises(SchedulingError):
        runner.run()


def test_runner_survives_one_worker_crash():
    """A crashed worker's command is recovered and the project finishes."""
    net, server, workers = simple_rig(n_workers=2, cores=1, heartbeat=10.0)
    runner = ProjectRunner(net, server, workers, tick=30.0)
    project = Project("demo")
    controller = OneShotController(n_commands=2, n_steps=2000)
    # worker 0 dies mid-first-command
    workers[0].set_crash_hook(lambda cid, seg: seg == 1)
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    assert controller.done == 2
    assert server.requeued_after_failure >= 1
    # recovered command resumed from a checkpoint rather than restarting
    resumed = [
        r for r in controller.results if r["steps_completed"] < 2000
    ]
    assert resumed, "recovery should resume from the dead worker's checkpoint"


def test_runner_status_reports():
    net, server, workers = simple_rig()
    runner = ProjectRunner(net, server, workers)
    runner.submit(Project("demo"), OneShotController())
    status = runner.status()
    assert status[0]["project"] == "demo"


def test_runner_multi_server_architecture():
    """Fig. 1-style: project server + relay; worker attached to the relay."""
    net = Network(seed=0)
    origin = CopernicusServer("origin", net, heartbeat_interval=30.0)
    relay = CopernicusServer("relay", net, heartbeat_interval=30.0)
    net.connect("origin", "relay", latency=0.1)
    worker = Worker("w0", net, server="relay", platform=SMPPlatform(cores=2))
    net.connect("relay", "w0", latency=0.001)
    worker.announce(0.0)
    runner = ProjectRunner(net, origin, [worker])
    project = Project("demo")
    controller = OneShotController(n_commands=2)
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    # results crossed the inter-server link
    assert net.link("origin", "relay").messages_carried > 0


# ---------------------------------------------------------- MSM controller


def test_msm_config_validation():
    with pytest.raises(ConfigurationError):
        MSMProjectConfig(weighting="magic")
    with pytest.raises(ConfigurationError):
        MSMProjectConfig(n_generations=0)


def test_msm_config_trajectory_count():
    cfg = MSMProjectConfig(n_starting_conformations=9, trajectories_per_start=25)
    assert cfg.n_trajectories == 225  # the paper's first-generation size


@pytest.fixture(scope="module")
def mb_adaptive_run():
    """A completed adaptive project on Muller-Brown (module-scoped)."""
    net, server, workers = simple_rig(cores=4, segment_steps=2000)
    runner = ProjectRunner(net, server, workers)
    cfg = MSMProjectConfig(
        model="muller-brown",
        n_starting_conformations=2,
        trajectories_per_start=3,
        steps_per_command=1500,
        report_interval=25,
        n_clusters=15,
        lag_frames=2,
        n_generations=3,
        weighting="uncertainty",
        timestep=0.01,
        seed=3,
    )
    controller = AdaptiveMSMController(cfg)
    project = Project("msm_mb")
    runner.submit(project, controller)
    runner.run()
    return project, controller


def test_msm_project_completes(mb_adaptive_run):
    project, controller = mb_adaptive_run
    assert project.status is ProjectStatus.COMPLETE
    assert controller.generation == 2
    assert len(controller.history) == 3  # one clustering per generation


def test_msm_project_command_counts(mb_adaptive_run):
    project, controller = mb_adaptive_run
    # 6 commands per generation x 3 generations
    assert project.issued == 18
    assert project.completed == 18


def test_msm_generations_have_lineage(mb_adaptive_run):
    _, controller = mb_adaptive_run
    gen1 = [t for t in controller.trajectories.values() if t.generation == 1]
    assert gen1
    assert all(t.parent is not None for t in gen1)
    assert all(t.start_cluster is not None for t in gen1)


def test_msm_final_model_analysable(mb_adaptive_run):
    _, controller = mb_adaptive_run
    msm, clusters = controller.final_msm()
    pi = msm.stationary_distribution()
    assert pi.shape == (msm.n_states,)
    assert pi.sum() == pytest.approx(1.0)
    assert msm.n_states > 1


def test_msm_history_contains_weights(mb_adaptive_run):
    _, controller = mb_adaptive_run
    for record in controller.history:
        assert record["weights"].sum() == pytest.approx(1.0)
        assert record["counts"].shape[0] == record["n_states"]


def test_msm_survives_uncountable_first_generation():
    # commands shorter than the lag: generation 0 has zero countable
    # transitions, so every weight scheme raises internally and the
    # controller must fall back to uniform spawning instead of dying
    net, server, workers = simple_rig(cores=2, segment_steps=2000)
    runner = ProjectRunner(net, server, workers)
    cfg = MSMProjectConfig(
        model="markov-ala20",
        n_starting_conformations=2,
        trajectories_per_start=2,
        steps_per_command=200,
        report_interval=100,  # 3 frames/command < lag_frames=5
        lag_frames=5,
        n_clusters=8,
        n_generations=2,
        weighting="min-counts",
        seed=7,
    )
    controller = AdaptiveMSMController(cfg)
    project = Project("msm_short")
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    gen0 = controller.history[0]
    assert gen0["counts"].sum() == 0
    np.testing.assert_array_equal(gen0["weights"], 0.0)
    # the uniform fallback still spawned a full second generation
    assert project.completed == 2 * cfg.n_trajectories


def test_msm_villin_stop_criterion():
    """stop_rmsd fires as soon as a folded frame appears."""
    net, server, workers = simple_rig(cores=2, segment_steps=3000)
    runner = ProjectRunner(net, server, workers)
    cfg = MSMProjectConfig(
        model="villin-fast",
        n_starting_conformations=1,
        trajectories_per_start=2,
        steps_per_command=12000,
        report_interval=200,
        n_clusters=10,
        lag_frames=2,
        n_generations=5,
        temperature=300.0,  # folds quickly at this temperature
        stop_rmsd=0.15,
        seed=4,
    )
    controller = AdaptiveMSMController(cfg)
    project = Project("msm_villin_stop")
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    assert controller._stop_hit
    assert min(controller.min_rmsd_per_generation().values()) < 0.15


# ---------------------------------------------------------- BAR controller


def test_fep_config_validation():
    with pytest.raises(ConfigurationError):
        FEPProjectConfig(n_windows=1)
    with pytest.raises(ConfigurationError):
        FEPProjectConfig(target_error=0.0)


def test_bar_project_converges_to_analytic():
    net, server, workers = simple_rig(cores=2)
    runner = ProjectRunner(net, server, workers)
    cfg = FEPProjectConfig(
        k_start=1.0, k_end=16.0, n_windows=5,
        samples_per_command=2000, target_error=0.04, seed=5,
    )
    controller = BARController(cfg)
    project = Project("fep")
    runner.submit(project, controller)
    runner.run()
    assert project.status is ProjectStatus.COMPLETE
    assert controller.error <= cfg.target_error
    exact = controller.analytic_reference()
    assert controller.estimate == pytest.approx(exact, abs=5 * controller.error)


def test_bar_project_adaptive_rounds():
    """With tiny commands the controller must issue extra rounds."""
    net, server, workers = simple_rig(cores=2)
    runner = ProjectRunner(net, server, workers)
    cfg = FEPProjectConfig(
        n_windows=3, samples_per_command=40, target_error=0.08,
        max_rounds=30, seed=6,
    )
    controller = BARController(cfg)
    project = Project("fep_rounds")
    runner.submit(project, controller)
    runner.run()
    assert controller.round >= 1  # needed more than one round
    assert controller.error <= cfg.target_error or controller.round == 30
    assert len(controller.history) == controller.round + 1
