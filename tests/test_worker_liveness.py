"""Worker-side liveness plumbing: bounded parked results, pacing, jitter."""

import pytest

from repro.core.command import Command
from repro.md.engine import MDTask
from repro.net import Network
from repro.net.topology import apply_poll_jitter, workstation
from repro.server import CopernicusServer
from repro.worker import SMPPlatform, Worker
from repro.util.errors import ConfigurationError


def _worker(**kwargs):
    net = Network(seed=0)
    return Worker("w0", net, server="srv", **kwargs)


def _cmd(command_id):
    return Command(command_id=command_id, project_id="p", executable="mdrun")


# ------------------------------------------------- bounded parked results


def test_worker_parameter_validation():
    with pytest.raises(ConfigurationError):
        _worker(pending_results_limit=0)
    with pytest.raises(ConfigurationError):
        _worker(segments_per_cycle=0)
    with pytest.raises(ConfigurationError):
        _worker(segment_steps=0)


def test_parked_results_bounded_drop_oldest():
    worker = _worker(pending_results_limit=2)
    worker._park_result(_cmd("a"), {"n": 1})
    worker._park_result(_cmd("b"), {"n": 2})
    worker._park_result(_cmd("c"), {"n": 3})
    # "a" — the oldest — was sacrificed for bounded memory, and counted
    assert [c.command_id for c, _ in worker._pending_results] == ["b", "c"]
    assert worker.pending_results_dropped == 1


def test_parked_results_dedupe_by_command_id():
    worker = _worker(pending_results_limit=4)
    worker._park_result(_cmd("a"), {"n": 1})
    worker._park_result(_cmd("b"), {"n": 2})
    worker._park_result(_cmd("a"), {"n": 3})
    # re-parking replaces the stale entry rather than queuing a second
    assert [c.command_id for c, _ in worker._pending_results] == ["b", "a"]
    assert worker._pending_results[-1][1] == {"n": 3}
    assert worker.pending_results_dropped == 0


# ------------------------------------------------------------------ pacing


def _paced_rig():
    net = Network(seed=0)
    server = CopernicusServer("srv", net, heartbeat_interval=10.0)
    worker = Worker(
        "w0",
        net,
        server="srv",
        platform=SMPPlatform(cores=2),
        segment_steps=300,
        segments_per_cycle=1,
    )
    net.connect("srv", "w0")
    results = []
    server.host_project("p", lambda c, r: results.append(c.command_id))
    task = MDTask(model="muller-brown", n_steps=600, seed=1, task_id="c0")
    server.submit_commands(
        [
            Command(
                command_id="c0",
                project_id="p",
                executable="mdrun",
                payload=task.to_payload(),
            )
        ]
    )
    worker.announce(0.0)
    return server, worker, results


def test_pacing_parks_and_resumes_across_cycles():
    server, worker, results = _paced_rig()
    # 600 steps at 300 per segment, one segment per cycle: two cycles
    assert worker.work_once(now=1.0) == 0
    assert worker._active is not None  # parked mid-command
    assert results == []
    assert worker.work_once(now=2.0) == 1
    assert worker._active is None
    assert results == ["c0"]


def test_paced_worker_heartbeats_checkpoints_while_parked():
    server, worker, results = _paced_rig()
    worker.work_once(now=1.0)
    worker.heartbeat(now=1.0)
    checkpoint = server.monitor.checkpoint_for("w0", "p::c0")
    assert checkpoint is not None and checkpoint["step"] == 300


# ------------------------------------------------------------------ jitter


def test_poll_jitter_is_seeded_and_bounded():
    def offsets(seed):
        net = Network(seed=seed)
        workers = [
            Worker(f"w{k}", net, server="srv") for k in range(6)
        ]
        apply_poll_jitter(net, workers, heartbeat_interval=120.0, poll_jitter=0.1)
        return [w.poll_offset for w in workers]

    first, again = offsets(7), offsets(7)
    assert first == again  # pure function of the seed
    assert all(0.0 <= o < 12.0 for o in first)
    assert len(set(first)) > 1  # the herd is actually staggered
    assert offsets(8) != first


def test_poll_jitter_zero_is_a_noop():
    net = Network(seed=0)
    workers = [Worker("w0", net, server="srv")]
    apply_poll_jitter(net, workers, heartbeat_interval=120.0, poll_jitter=0.0)
    assert workers[0].poll_offset == 0.0


def test_poll_jitter_validation():
    net = Network(seed=0)
    with pytest.raises(ConfigurationError):
        apply_poll_jitter(net, [], heartbeat_interval=120.0, poll_jitter=1.0)
    with pytest.raises(ConfigurationError):
        apply_poll_jitter(net, [], heartbeat_interval=120.0, poll_jitter=-0.1)


def test_topology_builders_stagger_their_fleets():
    deployment = workstation(n_workers=5, seed=3, heartbeat_interval=120.0)
    offsets = [w.poll_offset for w in deployment.workers]
    assert all(0.0 <= o < 12.0 for o in offsets)
    assert len(set(offsets)) > 1
