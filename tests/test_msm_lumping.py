"""Tests for PCCA-style macrostate lumping."""

import numpy as np
import pytest

from repro.msm.lumping import (
    coarse_grain,
    lump_states,
    metastability,
    spectral_embedding,
)
from repro.util.errors import EstimationError


def block_chain(blocks=2, size=3, p_in=0.3, p_out=0.01, seed=0):
    """A metastable chain: dense blocks, weak inter-block links."""
    n = blocks * size
    rng = np.random.default_rng(seed)
    T = np.full((n, n), p_out / n)
    for b in range(blocks):
        sl = slice(b * size, (b + 1) * size)
        T[sl, sl] += p_in * rng.random((size, size))
    T /= T.sum(axis=1, keepdims=True)
    return T


def test_spectral_embedding_shape():
    T = block_chain()
    emb = spectral_embedding(T, 2)
    assert emb.shape == (6, 1)


def test_spectral_embedding_validation():
    T = block_chain()
    with pytest.raises(EstimationError):
        spectral_embedding(T, 1)
    with pytest.raises(EstimationError):
        spectral_embedding(T, 100)


def test_lump_states_recovers_blocks():
    T = block_chain(blocks=2, size=4)
    labels = lump_states(T, 2, seed=1)
    # every block maps to exactly one macrostate
    first = labels[:4]
    second = labels[4:]
    assert len(set(first.tolist())) == 1
    assert len(set(second.tolist())) == 1
    assert first[0] != second[0]


def test_lump_states_three_blocks():
    T = block_chain(blocks=3, size=3, p_out=0.005)
    labels = lump_states(T, 3, seed=0)
    groups = [set(labels[i * 3 : (i + 1) * 3].tolist()) for i in range(3)]
    assert all(len(g) == 1 for g in groups)
    assert len({g.pop() for g in groups}) == 3


def test_coarse_grain_stochastic():
    T = block_chain(blocks=2, size=3)
    labels = lump_states(T, 2, seed=0)
    T_macro, pops = coarse_grain(T, labels)
    np.testing.assert_allclose(T_macro.sum(axis=1), 1.0, atol=1e-10)
    assert pops.sum() == pytest.approx(1.0)


def test_coarse_grain_validation():
    T = block_chain()
    with pytest.raises(EstimationError):
        coarse_grain(T, np.zeros(3, dtype=int))


def test_metastability_high_for_block_chain():
    T = block_chain(blocks=2, size=4, p_out=0.002)
    labels = lump_states(T, 2, seed=0)
    assert metastability(T, labels) > 0.9


def test_metastability_low_for_random_lumping():
    T = block_chain(blocks=2, size=4, p_out=0.002)
    bad_labels = np.array([0, 1, 0, 1, 0, 1, 0, 1])  # splits the blocks
    good_labels = lump_states(T, 2, seed=0)
    assert metastability(T, bad_labels) < metastability(T, good_labels)
