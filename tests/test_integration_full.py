"""Grand integration test: the whole system in one scenario.

A Fig. 1-style multi-site deployment runs an adaptive MSM project and
a BAR free-energy project simultaneously while one worker crashes
mid-command; results are persisted to a project store; afterwards the
event log, the monitoring snapshot, the replayed store and the final
science are all checked against each other.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMSMController,
    BARController,
    FEPProjectConfig,
    MSMProjectConfig,
    Project,
    ProjectRunner,
)
from repro.core.events import EventKind
from repro.core.monitoring import render_text, status_snapshot
from repro.core.project import ProjectStatus
from repro.net.topology import figure1
from repro.server.datastore import ProjectStore, replay


def msm_config():
    return MSMProjectConfig(
        model="muller-brown",
        n_starting_conformations=2,
        trajectories_per_start=3,
        steps_per_command=1200,
        report_interval=20,
        n_clusters=12,
        lag_frames=2,
        n_generations=3,
        weighting="uncertainty",
        timestep=0.01,
        seed=21,
    )


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("store")
    deployment = figure1(workers_per_cluster=2, heartbeat_interval=30.0)
    store = ProjectStore(store_dir)

    # the first worker dies as soon as it picks up work
    flaky = deployment.workers[0]
    flaky.set_crash_hook(lambda cid, seg: True)

    msm_runner = ProjectRunner(
        deployment.network, deployment.project_servers[0], deployment.workers,
        tick=45.0,
    )
    msm_controller = AdaptiveMSMController(msm_config())
    msm_project = Project("msm_villin")
    msm_runner.submit(msm_project, msm_controller)

    # wrap the sink to persist results
    server = deployment.project_servers[0]
    inner_sink = server._sinks["msm_villin"]

    def persisting_sink(command, result):
        store.record_result("msm_villin", command, result)
        inner_sink(command, result)

    server._sinks["msm_villin"] = persisting_sink

    fep_runner = ProjectRunner(
        deployment.network, deployment.project_servers[1], deployment.workers,
        tick=45.0,
    )
    fep_controller = BARController(
        FEPProjectConfig(n_windows=4, samples_per_command=600, target_error=0.06)
    )
    fep_project = Project("free_energy")
    fep_runner.submit(fep_project, fep_controller)

    msm_runner.run()
    fep_runner.run()
    return {
        "deployment": deployment,
        "store": store,
        "flaky": flaky,
        "msm": (msm_runner, msm_controller, msm_project),
        "fep": (fep_runner, fep_controller, fep_project),
    }


def test_both_projects_complete(scenario):
    _, _, msm_project = scenario["msm"]
    _, _, fep_project = scenario["fep"]
    assert msm_project.status is ProjectStatus.COMPLETE
    assert fep_project.status is ProjectStatus.COMPLETE


def test_crash_was_survived_and_logged(scenario):
    runner, _, _ = scenario["msm"]
    assert scenario["flaky"].crashed
    dead = runner.events.filter(kind=EventKind.WORKER_DEAD)
    assert dead, "worker death never logged"
    # some server requeued the lost command
    total_requeued = sum(
        s.requeued_after_failure
        for s in runner._servers
    )
    assert total_requeued >= 1


def test_remote_cluster_contributed(scenario):
    net = scenario["deployment"].network
    remote_link = net.link("gateway", "cluster2-head")
    assert remote_link.messages_carried > 0


def test_shared_filesystems_saved_traffic(scenario):
    assert scenario["deployment"].network.bytes_saved_by_shared_fs > 0


def test_fep_result_validates(scenario):
    _, controller, _ = scenario["fep"]
    exact = controller.analytic_reference()
    assert controller.estimate == pytest.approx(
        exact, abs=6 * max(controller.error, 1e-6)
    )


def test_msm_science_consistent(scenario):
    _, controller, project = scenario["msm"]
    msm, clusters = controller.final_msm()
    pi = msm.stationary_distribution()
    assert pi.sum() == pytest.approx(1.0)
    # every completed command produced a stored trajectory
    done = [t for t in controller.trajectories.values() if t.frames is not None]
    assert len(done) == project.completed


def test_store_replay_matches_live_run(scenario):
    _, live_controller, live_project = scenario["msm"]
    fresh = AdaptiveMSMController(msm_config())
    replayed_project, outstanding, completed_ids = replay(
        scenario["store"], "msm_villin", fresh
    )
    assert outstanding == []
    assert len(completed_ids) == live_project.completed
    assert replayed_project.completed == live_project.completed
    assert fresh.generation == live_controller.generation
    # replay reproduces the clustering decisions exactly (same seeds)
    np.testing.assert_array_equal(
        fresh.cluster_model.center_indices,
        live_controller.cluster_model.center_indices,
    )


def test_monitoring_snapshot_consistent(scenario):
    runner, _, _ = scenario["msm"]
    snapshot = status_snapshot(runner)
    assert snapshot["projects"][0]["status"] == "complete"
    text = render_text(snapshot)
    assert "msm_villin" in text
    # the dead worker shows as not alive on its server
    flaky_name = scenario["flaky"].name
    server_entries = {
        name: alive
        for server in snapshot["servers"]
        for name, alive in server["workers"].items()
    }
    assert server_entries.get(flaky_name) is False


def test_event_log_accounting(scenario):
    runner, _, project = scenario["msm"]
    completed_events = runner.events.filter(
        kind=EventKind.COMMAND_COMPLETED, project_id="msm_villin"
    )
    assert len(completed_events) == project.completed
