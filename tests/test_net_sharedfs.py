"""Tests for shared-filesystem data passing."""

import numpy as np
import pytest

from repro.net import MessageType, Network
from repro.net.transport import Endpoint, SHARED_FS_REF_BYTES
from repro.util.errors import CommunicationError


def echo(message):
    return {"ok": True}


def rig():
    net = Network(seed=0)
    for name in ("srv", "worker", "remote"):
        Endpoint(name, net, handler=echo)
    net.connect("srv", "worker")
    net.connect("srv", "remote")
    return net


def test_shared_fs_reduces_bytes():
    big_payload = {"frames": np.zeros((100, 50, 3))}
    # without shared FS
    net_plain = rig()
    net_plain.endpoint("worker").send("srv", MessageType.COMMAND_RESULT, big_payload)
    plain_bytes = net_plain.total_bytes()
    # with shared FS between worker and its server
    net_fs = rig()
    net_fs.attach_filesystem("lustre", ["srv", "worker"])
    net_fs.endpoint("worker").send("srv", MessageType.COMMAND_RESULT, big_payload)
    fs_bytes = net_fs.total_bytes()
    assert fs_bytes < plain_bytes / 10
    assert net_fs.bytes_saved_by_shared_fs > 0


def test_shared_fs_does_not_affect_other_pairs():
    net = rig()
    net.attach_filesystem("lustre", ["srv", "worker"])
    payload = {"frames": np.zeros((100, 50, 3))}
    net.endpoint("remote").send("srv", MessageType.COMMAND_RESULT, payload)
    # remote does not share the FS: full payload crossed the wire
    assert net.total_bytes() > 10000
    assert net.bytes_saved_by_shared_fs == 0


def test_small_messages_unchanged():
    net = rig()
    net.attach_filesystem("lustre", ["srv", "worker"])
    net.endpoint("worker").send("srv", MessageType.HEARTBEAT, {"now": 1.0})
    assert net.bytes_saved_by_shared_fs == 0


def test_share_filesystem_predicate():
    net = rig()
    net.attach_filesystem("lustre", ["srv", "worker"])
    assert net.share_filesystem("srv", "worker")
    assert not net.share_filesystem("srv", "remote")


def test_attach_unknown_endpoint_rejected():
    net = rig()
    with pytest.raises(CommunicationError):
        net.attach_filesystem("fs", ["ghost"])
