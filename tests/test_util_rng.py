"""Tests for repro.util.rng determinism and independence."""

import numpy as np
import pytest

from repro.util.rng import (
    RandomStream,
    ensure_stream,
    interleave_seeds,
    spawn_streams,
)


def test_same_seed_same_sequence():
    a = RandomStream(7).normal(size=100)
    b = RandomStream(7).normal(size=100)
    np.testing.assert_array_equal(a, b)


def test_different_seed_different_sequence():
    a = RandomStream(7).normal(size=100)
    b = RandomStream(8).normal(size=100)
    assert not np.array_equal(a, b)


def test_spawn_independent_streams():
    children = RandomStream(0).spawn(3)
    draws = [c.normal(size=50) for c in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_is_deterministic():
    a = [s.uniform(size=10) for s in RandomStream(3).spawn(2)]
    b = [s.uniform(size=10) for s in RandomStream(3).spawn(2)]
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        RandomStream(0).spawn(-1)


def test_spawn_streams_helper():
    streams = spawn_streams(11, 4)
    assert len(streams) == 4
    assert all(isinstance(s, RandomStream) for s in streams)


def test_ensure_stream_passthrough():
    s = RandomStream(5)
    assert ensure_stream(s) is s


def test_ensure_stream_from_int():
    a = ensure_stream(9).integers(0, 1000, size=20)
    b = RandomStream(9).integers(0, 1000, size=20)
    np.testing.assert_array_equal(a, b)


def test_integers_bounds():
    vals = RandomStream(1).integers(0, 10, size=1000)
    assert vals.min() >= 0 and vals.max() < 10


def test_choice_subset():
    pool = np.arange(50)
    picked = RandomStream(2).choice(pool, size=5, replace=False)
    assert len(set(picked.tolist())) == 5
    assert set(picked.tolist()) <= set(pool.tolist())


def test_shuffle_is_permutation():
    x = np.arange(30)
    RandomStream(4).shuffle(x)
    assert sorted(x.tolist()) == list(range(30))


def test_interleave_seeds_order_sensitive():
    assert interleave_seeds([1, 2]) != interleave_seeds([2, 1])


def test_interleave_seeds_deterministic():
    assert interleave_seeds([10, 20, 30]) == interleave_seeds([10, 20, 30])
