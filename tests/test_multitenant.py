"""Multi-tenant service plane: sharded runner, isolation, parity.

Covers the tentpole wiring end to end: consistent-hash placement via
:class:`~repro.core.multirunner.MultiProjectRunner`, the
``repro.api`` tenant surface, the scoped-identity regression (two
tenants reusing a command id on one server must never alias in the
assignment, lease or heartbeat tables), and byte-for-byte parity of a
single-tenant run with and without a fair-share scheduler attached.
"""

import pytest

from repro.api import Ensemble, Project as ApiProject, Tenant, run_tenants
from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.multirunner import MultiProjectRunner
from repro.core.project import Project
from repro.core.runner import ProjectRunner
from repro.md.engine import MDTask
from repro.net import topology
from repro.server.fairshare import FairShareScheduler
from repro.testing import Invariants
from repro.util.errors import ConfigurationError


class TinySwarm(Controller):
    """n commands with ids cmd0..cmd{n-1} running *model*."""

    def __init__(self, n_commands=2, model="double-well", n_steps=200):
        self.n_commands = n_commands
        self.model = model
        self.n_steps = n_steps
        self.results = {}

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model=self.model, n_steps=self.n_steps,
                    report_interval=100, seed=k, task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.results[command.command_id] = result
        return []

    def is_complete(self, project):
        return len(self.results) >= self.n_commands


# -- shard placement -------------------------------------------------------

def test_multirunner_routes_projects_to_stable_shards():
    deployment = topology.sharded(n_shards=3, seed=0)
    runner = MultiProjectRunner(
        deployment.network, deployment.project_servers, deployment.workers
    )
    shard = runner.shard_of("alice")
    assert shard in {s.name for s in deployment.project_servers}
    # placement is a pure function of the name — a rebuilt deployment
    # routes identically (journals and queues stay put across restarts)
    rebuilt = topology.sharded(n_shards=3, seed=99)
    runner2 = MultiProjectRunner(
        rebuilt.network, rebuilt.project_servers, rebuilt.workers
    )
    assert runner2.shard_of("alice") == shard
    assert runner._origin_for("alice").name == shard


def test_multirunner_validates_shards():
    deployment = topology.sharded(n_shards=2, seed=0)
    with pytest.raises(ConfigurationError):
        MultiProjectRunner(deployment.network, [], deployment.workers)
    with pytest.raises(ConfigurationError):
        MultiProjectRunner(
            deployment.network,
            [deployment.project_servers[0], deployment.project_servers[0]],
            deployment.workers,
        )


def test_projects_complete_on_their_hashed_shards():
    deployment = topology.sharded(n_shards=3, workers_per_shard=2, seed=1)
    runner = MultiProjectRunner(
        deployment.network, deployment.project_servers, deployment.workers
    )
    controllers = {}
    for name in ("alpha", "beta", "gamma", "delta"):
        controllers[name] = TinySwarm(n_commands=2)
        runner.submit(Project(name), controllers[name])
    runner.run()
    for name, controller in controllers.items():
        assert len(controller.results) == 2, name
        origin = runner._origin_for(name)
        # completions landed on (and were deduped by) the origin shard
        assert any(
            cid.startswith(f"{name}::") for cid in origin.completed_ids
        )
    assert Invariants(runner).check() == []


# -- scoped-identity regression (the key-collision fix) --------------------

def test_two_tenants_reusing_command_ids_never_alias():
    """Regression: before (project, command) namespacing, two projects
    sharing a server and a command id collided in the assignment map,
    lease tracker and heartbeat checkpoints — the second project's
    lease overwrote the first's.  With scoped ids both complete with
    their own results."""
    deployment = topology.sharded(n_shards=1, workers_per_shard=2, seed=2)
    runner = MultiProjectRunner(
        deployment.network, deployment.project_servers, deployment.workers
    )
    fast = TinySwarm(n_commands=2, model="double-well", n_steps=100)
    slow = TinySwarm(n_commands=2, model="muller-brown", n_steps=400)
    runner.submit(Project("p1"), fast)   # both on the single shard,
    runner.submit(Project("p2"), slow)   # both issuing cmd0/cmd1
    runner.run()
    assert set(fast.results) == {"cmd0", "cmd1"}
    assert set(slow.results) == {"cmd0", "cmd1"}
    # the results really are each tenant's own work, not the other's
    assert fast.results["cmd0"]["steps_completed"] == 100
    assert slow.results["cmd0"]["steps_completed"] == 400
    server = deployment.project_servers[0]
    # server tables key by scoped id — all four completions distinct
    scoped = {"p1::cmd0", "p1::cmd1", "p2::cmd0", "p2::cmd1"}
    assert scoped <= server.completed_ids
    assert Invariants(runner).check() == []


# -- single-tenant parity --------------------------------------------------

def _run_workstation(with_fairshare: bool) -> str:
    deployment = topology.workstation(n_workers=2, seed=7)
    if with_fairshare:
        deployment.project_server.attach_fairshare(FairShareScheduler())
    runner = ProjectRunner(
        deployment.network, deployment.project_server, deployment.workers
    )
    runner.submit(Project("solo"), TinySwarm(n_commands=3))
    runner.run()
    return runner.events.to_text()


def test_fairshare_default_policy_is_transcript_identical():
    # acceptance bar: a single-tenant run with an attached (default)
    # scheduler is byte-for-byte the pre-change runner
    assert _run_workstation(False) == _run_workstation(True)


# -- api surface -----------------------------------------------------------

def test_run_tenants_end_to_end():
    tenants = [
        Tenant("alice", ensembles=[
            Ensemble(model="double-well", n_replicas=2, steps=200, name="a")
        ], quota=1),
        Tenant("bob", ensembles=[
            Ensemble(model="muller-brown", n_replicas=2, steps=200, name="b")
        ], weight=2.0),
    ]
    out = run_tenants(tenants, n_shards=2, workers_per_shard=1, seed=4)
    assert out.status("alice") == "complete"
    assert out.status("bob") == "complete"
    assert set(out.md_results("alice")) == {"a/r0", "a/r1"}
    assert set(out.md_results("bob")) == {"b/r0", "b/r1"}
    report = out.tenant_report()
    assert report["alice"]["ledger"]["peak_in_flight"] <= 1  # quota held
    assert report["alice"]["shard"] == out.shard_of("alice")
    assert Invariants(out.runner).check() == []


def test_run_tenants_rejects_bad_input():
    with pytest.raises(ConfigurationError):
        run_tenants([])
    with pytest.raises(ConfigurationError):
        run_tenants([
            Tenant("dup", ensembles=[Ensemble(model="double-well")]),
            Tenant("dup", ensembles=[Ensemble(model="double-well")]),
        ])
    with pytest.raises(ConfigurationError):
        Tenant("t", ensembles=[Ensemble(model="double-well")],
               controller=TinySwarm())


def test_tenant_metrics_are_labelled_per_project():
    tenants = [
        Tenant("m1", ensembles=[Ensemble(model="double-well", steps=100)]),
        Tenant("m2", ensembles=[Ensemble(model="double-well", steps=100)]),
    ]
    out = run_tenants(tenants, n_shards=2, workers_per_shard=1, seed=6)
    metrics = out.obs.metrics
    for name in ("m1", "m2"):
        completed = metrics.value(
            "repro_tenant_commands_completed",
            project=name, shard=out.shard_of(name),
        )
        assert completed == 1.0


def test_api_single_project_still_runs_unchanged():
    # the classic facade is untouched by the tenant surface
    outcome = ApiProject(
        "classic",
        ensembles=[Ensemble(model="double-well", n_replicas=2, steps=200)],
    ).run(n_workers=2)
    assert outcome.status == "complete"
    assert len(outcome.md_results()) == 2
