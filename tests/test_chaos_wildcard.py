"""Wildcard (ANY_SERVER) routing: visit order, accounting, failure.

The paper routes workload requests "to the first server with available
commands"; these tests pin down the breadth-first walk that implements
it — deterministic visit order, traffic accounted even for probes the
endpoint rejects, and a CommunicationError when nobody accepts.
"""

import pytest

from repro.net import Endpoint, Network
from repro.net.protocol import ANY_SERVER, MessageType
from repro.testing import ChaosNetwork, FaultPlan
from repro.util.errors import CommunicationError


def build_diamond(net):
    """a - {b, c} - d: two equal-length branches plus a far node."""
    for name in "abcd":
        Endpoint(name, net, handler=lambda m: None)
    net.connect("a", "b")
    net.connect("a", "c")
    net.connect("b", "d")
    net.connect("c", "d")
    return net


def test_bfs_candidate_order_is_deterministic():
    net = build_diamond(Network(seed=0))
    # link-creation order fixes the BFS: both direct neighbours (in
    # connect order), then the far node exactly once
    assert net._wildcard_candidates("a") == ["b", "c", "d"]
    assert net._wildcard_candidates("d") == ["b", "c", "a"]


def test_bfs_probe_order_matches_candidates():
    net = Network(seed=0)
    probes = []

    def refuser(name):
        def handler(message):
            probes.append(name)
            return None

        return handler

    Endpoint("a", net, handler=refuser("a"))
    Endpoint("b", net, handler=refuser("b"))
    Endpoint("c", net, handler=refuser("c"))
    Endpoint("d", net, handler=lambda m: {"accepted_by": "d"})
    net.connect("a", "b")
    net.connect("a", "c")
    net.connect("b", "d")
    response = net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})
    assert response == {"accepted_by": "d"}
    assert probes == ["b", "c"]  # walked in BFS order, d accepted


def test_rejected_probes_still_account_traffic():
    net = Network(seed=0)
    Endpoint("a", net, handler=lambda m: None)
    Endpoint("b", net, handler=lambda m: None)  # will reject
    Endpoint("c", net, handler=lambda m: {"ok": True})
    net.connect("a", "b")
    net.connect("b", "c")
    net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {"probe": 1})
    # the rejected probe to b crossed a<->b: it must be accounted
    ab = net.link("a", "b")
    assert ab.messages_carried >= 2  # b's probe + c's probe passing through
    assert ab.bytes_carried > 0
    # the accepted probe's response came back over both links
    bc = net.link("b", "c")
    assert bc.messages_carried == 2  # probe out + response back


def test_wildcard_no_acceptor_raises_after_full_walk():
    net = Network(seed=0)
    probes = []

    def refuser(name):
        def handler(message):
            probes.append(name)
            return None

        return handler

    Endpoint("a", net, handler=refuser("a"))
    Endpoint("b", net, handler=refuser("b"))
    Endpoint("c", net, handler=refuser("c"))
    net.connect("a", "b")
    net.connect("b", "c")
    with pytest.raises(CommunicationError):
        net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})
    assert probes == ["b", "c"]  # every reachable endpoint was offered it


def test_wildcard_from_isolated_endpoint_raises():
    net = Network(seed=0)
    Endpoint("a", net, handler=lambda m: None)
    with pytest.raises(CommunicationError):
        net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})


def test_chaos_wildcard_walk_is_seed_reproducible():
    def walk(seed):
        plan = FaultPlan(seed=seed)
        plan.crash_server("b")
        net = build_diamond(ChaosNetwork(plan=plan, seed=seed))
        # make one endpoint accept so the walk terminates
        net.endpoint("d")._handler = lambda m: {"accepted_by": "d"}
        response = net.endpoint("a").send(
            ANY_SERVER, MessageType.COMMAND_FETCH, {}
        )
        return response, net.total_bytes()

    assert walk(7) == walk(7)
    response, _ = walk(7)
    assert response == {"accepted_by": "d"}  # crashed b was skipped
