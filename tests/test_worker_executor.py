"""Tests for process-pool command execution."""

import numpy as np
import pytest

from repro.core.command import Command
from repro.md.engine import MDTask
from repro.worker.executor import ParallelExecutor
from repro.util.errors import ConfigurationError


def md_command(cid, n_steps=400, seed=0, checkpoint=None):
    task = MDTask(model="muller-brown", n_steps=n_steps, seed=seed, task_id=cid)
    return Command(
        command_id=cid,
        project_id="p",
        executable="mdrun",
        payload=task.to_payload(),
        checkpoint=checkpoint,
    )


def test_parallel_matches_serial():
    commands = [md_command(f"c{k}", seed=k) for k in range(3)]
    serial = ParallelExecutor(n_processes=1).run_commands(commands)
    parallel = ParallelExecutor(n_processes=2).run_commands(commands)
    for (c_a, r_a), (c_b, r_b) in zip(serial, parallel):
        assert c_a.command_id == c_b.command_id
        np.testing.assert_array_equal(r_a["frames"], r_b["frames"])
        assert r_a["completed"] == r_b["completed"]


def test_parallel_preserves_order():
    commands = [md_command(f"c{k}", n_steps=100 * (3 - k), seed=k) for k in range(3)]
    results = ParallelExecutor(n_processes=2).run_commands(commands)
    assert [c.command_id for c, _ in results] == ["c0", "c1", "c2"]


def test_parallel_resumes_checkpoints():
    from repro.worker.executable import run_executable

    base = md_command("c0", n_steps=600, seed=5)
    partial, completed = run_executable("mdrun", base.payload, 200)
    assert not completed
    resumed = md_command("c0", n_steps=600, seed=5, checkpoint=partial["checkpoint"])
    results = ParallelExecutor(n_processes=2).run_commands([resumed, md_command("c1")])
    result = results[0][1]
    assert result["completed"]
    assert result["checkpoint"]["step"] == 600


def test_single_command_skips_pool():
    results = ParallelExecutor(n_processes=4).run_commands([md_command("only")])
    assert len(results) == 1
    assert results[0][1]["completed"]


def test_invalid_pool_size():
    with pytest.raises(ConfigurationError):
        ParallelExecutor(n_processes=0)
