"""Per-command lifecycle timelines and the critical path.

The acceptance bar: for a villin swarm run, every completed command's
queue/compute/transfer/controller breakdown must sum to its lifecycle
duration to within 1% — and hence the report's phase totals to the
total simulated lifecycle seconds.  The phases are an exact partition
by construction; these tests pin that property against live runs,
paced runs (non-trivial queue time) and degraded runs (speculation,
requeues), plus the DES-side breakdown.
"""

import pytest

from repro.obs.timeline import (
    PHASES,
    build_timeline_report,
    des_utilization_breakdown,
    timeline_report_for,
)
from repro.testing import run_swarm_under_faults, run_swarm_with_straggler


def _assert_phases_partition(report):
    total = 0.0
    for tl in report.commands:
        if not tl.complete:
            continue
        phase_sum = sum(tl.phases.get(p, 0.0) for p in PHASES)
        # within 1% of the command's wall-clock (virtual) lifecycle
        assert phase_sum == pytest.approx(tl.duration, rel=0.01, abs=1e-6), (
            tl.command_id
        )
        assert all(tl.phases.get(p, 0.0) >= 0.0 for p in PHASES)
        total += tl.duration
    assert sum(report.phase_totals.values()) == pytest.approx(
        total, rel=0.01, abs=1e-6
    )
    assert report.total_seconds == pytest.approx(total)


@pytest.mark.parametrize("seed", [0, 1])
def test_villin_swarm_phases_sum_to_lifecycle(seed):
    out = run_swarm_under_faults(seed=seed)
    report = timeline_report_for(out.runner)
    assert len(report.commands) == 3
    assert all(tl.complete for tl in report.commands)
    _assert_phases_partition(report)


def test_paced_single_worker_swarm_partitions():
    # a single paced worker (one segment per cycle, via the straggler
    # knob at full speed): commands genuinely wait in the queue while
    # earlier ones grind through segments tick by tick
    out = run_swarm_under_faults(
        seed=0,
        n_workers=1,
        configure=lambda plan: plan.straggler(
            "w0", factor=1.0, segments_per_cycle=1
        ),
    )
    report = timeline_report_for(out.runner)
    _assert_phases_partition(report)
    assert report.makespan > 0.0
    assert 0.0 <= report.utilization() <= 1.0


def test_straggler_timeline_marks_speculation():
    out = run_swarm_with_straggler(seed=0)
    report = timeline_report_for(out.runner)
    _assert_phases_partition(report)
    by_id = {tl.command_id: tl for tl in report.commands}
    assert by_id["cmd0"].speculated
    # two workers touched the speculated command
    assert len(by_id["cmd0"].workers) >= 2
    # the speculated command decided the makespan, so it ends the
    # critical path
    assert report.critical_path[-1] == "cmd0"
    assert report.render_text().count("[speculated]") == 1


def test_timeline_without_tracer_still_partitions():
    out = run_swarm_under_faults(seed=0)
    report = build_timeline_report(out.runner.events, tracer=None)
    # no spans: everything that isn't transfer/controller is queue wait
    _assert_phases_partition(report)
    assert report.phase_totals["compute"] == 0.0


def test_report_renders_every_command():
    out = run_swarm_under_faults(seed=0)
    report = timeline_report_for(out.runner)
    text = report.render_text()
    for tl in report.commands:
        assert tl.command_id in text
    assert "critical path" in text
    assert "utilization" in text


def test_des_breakdown_sums_exactly():
    from repro.perfmodel import ProjectSpec
    from repro.perfmodel.scheduler_sim import simulate_project

    spec = ProjectSpec(total_cores=96, cores_per_sim=1)
    result = simulate_project(spec)
    breakdown = des_utilization_breakdown(result)
    assert breakdown["compute"] + breakdown["controller"] + breakdown[
        "idle"
    ] == pytest.approx(breakdown["worker_hours"])
    assert 0.0 <= breakdown["utilization"] <= 1.0
    assert breakdown["utilization"] == pytest.approx(
        breakdown["compute"] / breakdown["worker_hours"]
    )
