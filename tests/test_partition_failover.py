"""Partition-with-heal chaos: epoch fencing end to end, invariant 14.

The zombie problem shard failover left open: a shard declared dead may
not be a corpse — a partition can make it *look* dead while its island
of workers keeps computing.  When the partition heals, the zombie is a
split-brain writer.  These tests prove the ownership-epoch machinery
composed: the canned partition scenario (partition -> migration ->
heal -> demotion) stays exactly-once across seeds, a successor-less
failover parks instead of failing, partition-free runs report zero
fencing rejections, and invariant 14 catches fabricated stale-epoch
acceptance when red-teamed.
"""

import pytest

from repro.core.events import EventKind
from repro.server.server import CopernicusServer
from repro.testing import (
    Invariants,
    live_completions,
    run_multitenant_soak,
    run_multitenant_with_partitioned_shard,
)
from repro.util.errors import ConfigurationError

from tests.test_shard_failover import build_fleet, drive, submit_swarms


# -- the canned partition scenario -----------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_partition_scenario_is_exactly_once(tmp_path, seed):
    result = run_multitenant_with_partitioned_shard(
        tmp_path / f"seed{seed}", seed=seed
    )
    assert result.violations == []
    # the partition was mistaken for a death: projects really migrated
    assert result.migrations, "the partition must trigger a failover"
    assert all(m.epoch >= 1 for m in result.migrations)
    # the headline: despite a split-brain island completing commands
    # behind the partition, the live-completion multiset equals the
    # partition-free baseline's — nothing lost, nothing doubled
    assert result.baseline_completions is not None
    assert result.exactly_once
    # the island genuinely computed behind the partition (otherwise
    # this scenario proves nothing) and every one of those stale
    # completions was fenced, not applied
    assert result.zombie_completions
    assert result.fencing["rejections_total"] > 0
    assert result.fencing["epoch_bumps_total"] == len(result.migrations)
    # the healed zombie demoted itself — one report per displaced
    # project, each moving to a strictly newer epoch
    assert result.demotions
    assert {d["project_id"] for d in result.demotions} == {
        m.project_id for m in result.migrations
    }
    for report in result.demotions:
        assert report["epoch"] > report["stale_epoch"]
        assert report["server"] == result.victim
    assert result.fencing["projects_fenced_total"] == len(result.demotions)
    # the merged timeline tells the whole story in order
    kinds = [t["kind"] for t in result.migration_timeline()]
    assert kinds[0] == "shard_dead"
    for kind in ("epoch_bumped", "project_migrated", "project_fenced"):
        assert kind in kinds
    assert kinds.index("project_migrated") < kinds.index("project_fenced")


def test_partition_scenario_respects_explicit_victim(tmp_path):
    result = run_multitenant_with_partitioned_shard(
        tmp_path, n_tenants=8, victim="shard1", baseline=False, seed=0
    )
    assert result.victim == "shard1"
    assert result.baseline is None and result.baseline_completions is None
    assert result.exactly_once  # vacuous without a baseline
    assert result.violations == []
    assert result.demotions


def test_partition_scenario_rejects_bad_config(tmp_path):
    with pytest.raises(ConfigurationError):
        run_multitenant_with_partitioned_shard(tmp_path, n_shards=1)
    with pytest.raises(ConfigurationError):
        run_multitenant_with_partitioned_shard(
            tmp_path, n_tenants=4, victim="not-a-shard", baseline=False
        )


def test_partition_free_soak_reports_zero_fencing_rejections(tmp_path):
    # the negative control the CI job asserts: without a partition no
    # write is ever fenced and no epoch ever bumps
    result = run_multitenant_soak(n_tenants=6, n_shards=2, seed=0)
    assert result.violations == []
    metrics = result.runner.obs.metrics
    assert metrics.total("repro_fencing_rejections_total") == 0
    assert metrics.total("repro_epoch_bumps_total") == 0
    assert metrics.total("repro_projects_fenced_total") == 0


# -- satellite: successor-less failover parks ------------------------------


def test_failover_without_successor_parks_and_add_shard_resumes(tmp_path):
    network, gateway, runner = build_fleet(
        tmp_path, n_shards=1, workers_per_shard=2
    )
    pids = ["alpha", "beta"]
    submit_swarms(runner, pids)
    drive(runner, 2)  # some results journal before the death

    # the only shard dies: nothing to migrate to — the projects park
    # with their journals intact instead of failing the sweep
    assert runner.fail_over("shard0") == []
    parked = runner.events.filter(kind=EventKind.PROJECT_PARKED)
    assert sorted(e.project_id for e in parked) == pids
    assert runner.obs.metrics.total("repro_projects_parked_total") == 2
    assert runner.migrations == []

    # a replacement joins under a fresh name: the parked projects are
    # migrated onto it from the dead shard's journals
    replacement = CopernicusServer("shard1", network)
    network.connect("gateway", "shard1")
    for worker in runner.workers:
        network.connect("shard1", worker.name)
    reports = runner.add_shard(replacement)
    assert sorted(r.project_id for r in reports) == pids
    assert all(r.to_shard == "shard1" for r in reports)
    assert all(r.epoch >= 1 for r in reports)
    unparked = runner.events.filter(kind=EventKind.PROJECT_UNPARKED)
    assert sorted(e.project_id for e in unparked) == pids
    assert runner.obs.metrics.total("repro_projects_unparked_total") == 2
    # the stranded workers were re-pointed at the replacement
    assert all(worker.server == "shard1" for worker in runner.workers)

    # and the fleet finishes exactly-once under the new regime
    runner.run()
    assert Invariants(runner).check() == []
    expected = sorted((pid, f"cmd{k}") for pid in pids for k in range(3))
    assert live_completions(runner.events) == expected


def test_replacement_shard_may_not_reuse_a_dead_name(tmp_path):
    network, gateway, runner = build_fleet(
        tmp_path, n_shards=1, workers_per_shard=1
    )
    submit_swarms(runner, ["alpha"])
    drive(runner, 1)
    runner.fail_over("shard0")
    # (built on a side network: the overlay also refuses duplicate
    # endpoint names, which is not the refusal under test here)
    from repro.net.transport import Network

    with pytest.raises(ConfigurationError):
        runner.add_shard(CopernicusServer("shard0", Network(seed=1)))


# -- red team: invariant 14 ------------------------------------------------


def finish_clean_fleet(tmp_path):
    """A completed two-project run with journals — invariant-clean."""
    network, gateway, runner = build_fleet(tmp_path, workers_per_shard=2)
    submit_swarms(runner, ["alpha", "beta"])
    runner.run()
    assert Invariants(runner).check() == []
    return network, gateway, runner


def test_invariant14_flags_non_monotonic_epoch_bumps(tmp_path):
    network, gateway, runner = finish_clean_fleet(tmp_path)
    runner.events.record(
        runner.now, EventKind.EPOCH_BUMPED, "alpha",
        server="shard0", epoch=2, previous=0,
    )
    runner.events.record(
        runner.now, EventKind.EPOCH_BUMPED, "alpha",
        server="shard1", epoch=2, previous=2,
    )
    violations = Invariants(runner).check_epoch_fencing()
    assert any("monotonic" in v or "epoch" in v for v in violations)


def test_invariant14_flags_stale_write_accepted_by_the_owner(tmp_path):
    network, gateway, runner = finish_clean_fleet(tmp_path)
    pid = "alpha"
    owner = runner.shard_of(pid)
    shard = next(s for s in runner.shards if s.name == owner)
    # the owner moves to epoch 2, then — the fabricated corruption — a
    # result stamped with the dead regime's epoch lands in its journal
    # as if the fence had let it through
    shard.adopt_epoch(pid, 2)
    from repro.core.command import Command

    stale = Command("smuggled", pid, "mdrun", {})
    stale.epoch = 0
    shard.journal.project(pid).record_result(stale, {"steps": 1})
    violations = Invariants(runner).check_epoch_fencing()
    assert any("stale epoch" in v for v in violations)


def test_invariant14_flags_rejections_without_a_regime_change(tmp_path):
    network, gateway, runner = finish_clean_fleet(tmp_path)
    # a fencing rejection event with no EPOCH_BUMPED anywhere: someone
    # rejected writes against a regime that never changed
    runner.events.record(
        runner.now, EventKind.FENCING_REJECTED, "alpha",
        command="c1", server="shard0", path="result",
        stale_epoch=0, current_epoch=1,
    )
    violations = Invariants(runner).check_epoch_fencing()
    assert violations  # both the count mismatch and the missing bump
    assert any("no epoch" in v.lower() or "bump" in v.lower() for v in violations)


def test_invariant14_flags_counter_event_disagreement(tmp_path):
    network, gateway, runner = finish_clean_fleet(tmp_path)
    # counter moves without a matching FENCING_REJECTED event: the
    # books must not balance
    runner.obs.metrics.inc(
        "repro_fencing_rejections_total",
        server="shard0", project="alpha", path="result",
    )
    violations = Invariants(runner).check_epoch_fencing()
    assert any("rejection" in v for v in violations)


def test_invariant14_is_part_of_the_standard_sweep(tmp_path):
    network, gateway, runner = finish_clean_fleet(tmp_path)
    runner.events.record(
        runner.now, EventKind.EPOCH_BUMPED, "alpha",
        server="shard0", epoch=2, previous=0,
    )
    runner.events.record(
        runner.now, EventKind.EPOCH_BUMPED, "alpha",
        server="shard1", epoch=2, previous=2,
    )
    assert Invariants(runner).check()  # check() includes invariant 14
