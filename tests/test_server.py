"""Tests for the server: queue, matching, heartbeats, result routing."""

import pytest

from repro.core.command import Command
from repro.net import Network
from repro.server import (
    CommandQueue,
    CopernicusServer,
    HeartbeatMonitor,
    WorkerCapabilities,
    build_workload,
)
from repro.util.errors import SchedulingError


def cmd(cid, executable="mdrun", min_cores=1, preferred=1, priority=0, project="p"):
    return Command(
        command_id=cid,
        project_id=project,
        executable=executable,
        min_cores=min_cores,
        preferred_cores=preferred,
        priority=priority,
    )


# ---------------------------------------------------------------- queue


def test_queue_priority_order():
    q = CommandQueue()
    q.push(cmd("low", priority=5))
    q.push(cmd("high", priority=0))
    q.push(cmd("mid", priority=2))
    assert [c.command_id for c in q.commands()] == ["high", "mid", "low"]
    assert q.pop().command_id == "high"


def test_queue_fifo_within_priority():
    q = CommandQueue()
    for name in ("first", "second", "third"):
        q.push(cmd(name, priority=1))
    assert q.pop().command_id == "first"
    assert q.pop().command_id == "second"


def test_queue_pop_empty():
    q = CommandQueue()
    assert q.pop() is None
    assert q.peek() is None


def test_queue_pop_matching():
    q = CommandQueue()
    q.push(cmd("a", min_cores=8))
    q.push(cmd("b", min_cores=1))
    got = q.pop_matching(lambda c: c.min_cores <= 2)
    assert got.command_id == "b"
    assert len(q) == 1


def test_queue_remove_project():
    q = CommandQueue()
    q.push(cmd("a", project="p1"))
    q.push(cmd("b", project="p2"))
    q.push(cmd("c", project="p1"))
    assert q.remove_project("p1") == 2
    assert [c.command_id for c in q.commands()] == ["b"]


# -------------------------------------------------------------- matching


def test_capabilities_validation():
    with pytest.raises(SchedulingError):
        WorkerCapabilities(worker="w", platform="smp", cores=0)


def test_capabilities_payload_roundtrip():
    caps = WorkerCapabilities("w", "smp", 4, ["mdrun"])
    assert WorkerCapabilities.from_payload(caps.to_payload()) == caps


def test_build_workload_packs_cores():
    q = CommandQueue()
    for k in range(5):
        q.push(cmd(f"c{k}", preferred=2))
    caps = WorkerCapabilities("w", "smp", 4, ["mdrun"])
    workload = build_workload(q, caps)
    assert sum(cores for _, cores in workload) == 4
    assert len(workload) == 2
    assert len(q) == 3


def test_build_workload_respects_executables():
    q = CommandQueue()
    q.push(cmd("md", executable="mdrun"))
    q.push(cmd("fep", executable="fepsample"))
    caps = WorkerCapabilities("w", "smp", 4, ["fepsample"])
    workload = build_workload(q, caps)
    assert [c.command_id for c, _ in workload] == ["fep"]
    assert len(q) == 1  # mdrun command stays queued


def test_build_workload_respects_min_cores():
    q = CommandQueue()
    q.push(cmd("big", min_cores=8, preferred=8))
    caps = WorkerCapabilities("w", "smp", 4, ["mdrun"])
    assert build_workload(q, caps) == []
    assert len(q) == 1


def test_build_workload_degrades_preferred():
    q = CommandQueue()
    q.push(cmd("a", min_cores=1, preferred=3))
    q.push(cmd("b", min_cores=1, preferred=3))
    caps = WorkerCapabilities("w", "smp", 4, ["mdrun"])
    workload = build_workload(q, caps)
    cores = [k for _, k in workload]
    assert cores == [3, 1]


def test_build_workload_priority_first():
    q = CommandQueue()
    q.push(cmd("later", priority=5))
    q.push(cmd("urgent", priority=0))
    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"])
    workload = build_workload(q, caps)
    assert workload[0][0].command_id == "urgent"


# ------------------------------------------------------------- heartbeat


def test_heartbeat_monitor_alive_cycle():
    mon = HeartbeatMonitor(interval=10.0)
    mon.register("w", now=0.0)
    assert mon.is_alive("w")
    assert mon.check(now=15.0) == []  # within 2x interval
    assert mon.check(now=25.0) == ["w"]
    assert not mon.is_alive("w")
    # dead worker reported once only
    assert mon.check(now=30.0) == []


def test_heartbeat_revives_worker():
    mon = HeartbeatMonitor(interval=10.0)
    mon.register("w", now=0.0)
    mon.check(now=25.0)
    mon.beat("w", now=26.0)
    assert mon.is_alive("w")


def test_heartbeat_stores_checkpoints():
    mon = HeartbeatMonitor(interval=10.0)
    mon.beat("w", 0.0, checkpoints={"cmd1": {"step": 100}})
    assert mon.checkpoint_for("w", "cmd1") == {"step": 100}
    mon.clear_checkpoint("w", "cmd1")
    assert mon.checkpoint_for("w", "cmd1") is None


def test_heartbeat_unknown_worker_checkpoint_none():
    mon = HeartbeatMonitor()
    assert mon.checkpoint_for("ghost", "cmd") is None


def test_heartbeat_invalid_interval():
    with pytest.raises(ValueError):
        HeartbeatMonitor(interval=0.0)


# ------------------------------------------------------------------ server


def make_deployment():
    net = Network(seed=0)
    origin = CopernicusServer("origin", net, heartbeat_interval=10.0)
    relay = CopernicusServer("relay", net, heartbeat_interval=10.0)
    net.connect("origin", "relay")
    return net, origin, relay


def test_server_hosts_and_routes_result_locally():
    net, origin, _ = make_deployment()
    got = []
    origin.host_project("p", lambda c, r: got.append((c.command_id, r)))
    command = cmd("c0")
    origin.submit_commands([command])
    assert command.origin_server == "origin"
    # simulate a result arriving directly
    from repro.net.protocol import Message, MessageType

    origin.handle(
        Message(
            MessageType.COMMAND_RESULT,
            src="w",
            dst="origin",
            payload={
                "worker": "w",
                "command": command.to_payload(),
                "result": {"ok": 1},
            },
        )
    )
    assert got == [("c0", {"ok": 1})]


def test_server_forwards_result_to_origin():
    net, origin, relay = make_deployment()
    got = []
    origin.host_project("p", lambda c, r: got.append(c.command_id))
    command = cmd("c1")
    command.origin_server = "origin"
    from repro.net.protocol import Message, MessageType

    relay.handle(
        Message(
            MessageType.COMMAND_RESULT,
            src="w",
            dst="relay",
            payload={
                "worker": "w",
                "command": command.to_payload(),
                "result": {"ok": 1},
            },
        )
    )
    assert got == ["c1"]


def test_server_result_without_sink_raises():
    net, origin, relay = make_deployment()
    command = cmd("c2")
    command.origin_server = "origin"  # but no project hosted
    from repro.net.protocol import Message, MessageType

    with pytest.raises(SchedulingError):
        origin.handle(
            Message(
                MessageType.COMMAND_RESULT,
                src="w",
                dst="origin",
                payload={
                    "worker": "w",
                    "command": command.to_payload(),
                    "result": {},
                },
            )
        )


def test_server_workload_request_fetches_from_peer():
    net, origin, relay = make_deployment()
    origin.host_project("p", lambda c, r: None)
    origin.submit_commands([cmd("c3")])
    from repro.net.protocol import Message, MessageType

    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"]).to_payload()
    response = relay.handle(
        Message(MessageType.WORKLOAD_REQUEST, src="w", dst="relay", payload=caps)
    )
    assert len(response["commands"]) == 1
    assert response["commands"][0]["command_id"] == "c3"
    # the relay (worker's server) tracks the assignment
    assert "p::c3" in relay.assignments["w"]
    assert len(origin.queue) == 0


def test_server_failure_requeues_with_checkpoint():
    net, origin, _ = make_deployment()
    origin.host_project("p", lambda c, r: None)
    origin.submit_commands([cmd("c4")])
    from repro.net.protocol import Message, MessageType

    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"]).to_payload()
    caps["now"] = 0.0
    origin.handle(
        Message(MessageType.WORKER_ANNOUNCE, src="w", dst="origin", payload=caps)
    )
    origin.handle(
        Message(MessageType.WORKLOAD_REQUEST, src="w", dst="origin", payload=caps)
    )
    # worker heartbeats a checkpoint, then goes silent
    origin.handle(
        Message(
            MessageType.HEARTBEAT,
            src="w",
            dst="origin",
            payload={
                "worker": "w",
                "now": 5.0,
                "checkpoints": {"p::c4": {"step": 123}},
            },
        )
    )
    dead = origin.check_liveness(now=100.0)
    assert dead == ["w"]
    assert origin.requeued_after_failure == 1
    requeued = origin.queue.pop()
    assert requeued.command_id == "c4"
    assert requeued.checkpoint == {"step": 123}


def test_server_status_report():
    net, origin, _ = make_deployment()
    origin.host_project("p", lambda c, r: None)
    origin.submit_commands([cmd("gen0_r0"), cmd("gen0_r1")])
    from repro.net.protocol import Message, MessageType

    status = origin.handle(
        Message(MessageType.PROJECT_STATUS, src="x", dst="origin", payload={})
    )
    assert status["queued"] == 2
    assert "gen0_r0" in status["queued_ids"]


def test_command_payload_roundtrip():
    c = cmd("c5", min_cores=2, preferred=4, priority=3)
    c.origin_server = "origin"
    c.checkpoint = {"step": 7}
    restored = Command.from_payload(c.to_payload())
    assert restored == c


# ------------------------------------------------- result-loss window fix


def test_result_forward_failure_keeps_assignment_for_retry():
    """A transient failure forwarding a result to the origin must leave
    the lease and checkpoint intact: the worker parks the result and
    resubmits, and until then the requeue path still exists."""
    net, origin, relay = make_deployment()
    got = []
    origin.host_project("p", lambda c, r: got.append(c.command_id))
    command = cmd("c6")
    command.origin_server = "origin"
    relay.assignments["w"] = {command.scoped_id: command}
    relay.monitor.beat("w", 0.0, checkpoints={"p::c6": {"step": 50}})

    from repro.net.protocol import Message, MessageType
    from repro.util.errors import TransientCommunicationError

    original_send = relay.send
    fail_once = {"n": 0}

    def flaky_send(dst, type, payload=None, timeout=None):
        if fail_once["n"] == 0:
            fail_once["n"] += 1
            raise TransientCommunicationError("uplink flapped")
        return original_send(dst, type, payload, timeout)

    relay.send = flaky_send
    message = Message(
        MessageType.COMMAND_RESULT,
        src="w",
        dst="relay",
        payload={
            "worker": "w",
            "command": command.to_payload(),
            "result": {"ok": 1},
        },
    )
    with pytest.raises(TransientCommunicationError):
        relay.handle(message)
    assert "p::c6" in relay.assignments["w"]
    assert relay.monitor.checkpoint_for("w", "p::c6") == {"step": 50}
    assert got == []

    relay.handle(message)  # the worker's resubmission
    assert got == ["c6"]
    assert "p::c6" not in relay.assignments["w"]
    assert relay.monitor.checkpoint_for("w", "p::c6") is None


# ----------------------------------------------- peer-fetch error triage


def test_unclaimed_wildcard_fetch_is_quiet():
    """Nobody on the overlay has work: an expected outcome, not a
    failure — no event, no exception, the worker just idles."""
    from repro.core.events import EventKind, EventLog
    from repro.net.protocol import Message, MessageType

    net, origin, relay = make_deployment()
    relay.events = EventLog()
    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"]).to_payload()
    response = relay.handle(
        Message(MessageType.WORKLOAD_REQUEST, src="w", dst="relay", payload=caps)
    )
    assert response == {"commands": [], "cores": []}
    assert relay.events.filter(kind=EventKind.PEER_FETCH_FAILED) == []


def test_transient_peer_failure_records_event_and_idles():
    from repro.core.events import EventKind, EventLog
    from repro.net.protocol import Message, MessageType
    from repro.util.errors import TransientCommunicationError

    net, origin, relay = make_deployment()
    relay.events = EventLog()

    def failing_send(dst, type, payload=None, timeout=None):
        raise TransientCommunicationError("peer flapped")

    relay.send = failing_send
    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"]).to_payload()
    response = relay.handle(
        Message(MessageType.WORKLOAD_REQUEST, src="w", dst="relay", payload=caps)
    )
    assert response == {"commands": [], "cores": []}
    failures = relay.events.filter(kind=EventKind.PEER_FETCH_FAILED)
    assert len(failures) == 1
    assert failures[0].details["worker"] == "w"
    assert failures[0].details["error"] == "TransientCommunicationError"


def test_permanent_peer_error_propagates():
    """Misconfigured overlays (unknown endpoints, broken trust) must
    surface, not be swallowed as an empty workload."""
    from repro.net.protocol import Message, MessageType
    from repro.util.errors import CommunicationError

    net, origin, relay = make_deployment()

    def broken_send(dst, type, payload=None, timeout=None):
        raise CommunicationError("trust store rejects peer")

    relay.send = broken_send
    caps = WorkerCapabilities("w", "smp", 1, ["mdrun"]).to_payload()
    with pytest.raises(CommunicationError):
        relay.handle(
            Message(
                MessageType.WORKLOAD_REQUEST, src="w", dst="relay", payload=caps
            )
        )
