"""Tests for the overlay network: auth, routing, accounting."""

import numpy as np
import pytest

from repro.net import Network, Message, MessageType
from repro.net.auth import KeyPair, TrustStore, exchange_keys, mutual_handshake
from repro.net.protocol import ANY_SERVER
from repro.net.transport import Endpoint
from repro.util.errors import AuthenticationError, CommunicationError
from repro.util.rng import RandomStream


def echo_handler(message):
    return {"echo": message.payload, "type": message.type.value}


# ------------------------------------------------------------------ auth


def test_keypair_generation_unique():
    rng = RandomStream(0)
    a = KeyPair.generate(rng, "a")
    b = KeyPair.generate(rng, "b")
    assert a.public != b.public


def test_trust_store_lifecycle():
    store = TrustStore()
    assert not store.is_trusted("pub-x")
    store.add("pub-x")
    assert store.is_trusted("pub-x")
    store.remove("pub-x")
    assert not store.is_trusted("pub-x")


def test_mutual_handshake_requires_both_sides():
    rng = RandomStream(1)
    ka, kb = KeyPair.generate(rng, "a"), KeyPair.generate(rng, "b")
    sa, sb = TrustStore(), TrustStore()
    with pytest.raises(AuthenticationError):
        mutual_handshake(ka, sa, kb, sb)
    sa.add(kb.public)
    with pytest.raises(AuthenticationError):
        mutual_handshake(ka, sa, kb, sb)
    sb.add(ka.public)
    mutual_handshake(ka, sa, kb, sb)  # no raise


def test_exchange_keys_establishes_mutual_trust():
    rng = RandomStream(2)
    ka, kb = KeyPair.generate(rng, "a"), KeyPair.generate(rng, "b")
    sa, sb = TrustStore(), TrustStore()
    exchange_keys(ka, sa, kb, sb)
    mutual_handshake(ka, sa, kb, sb)


# -------------------------------------------------------------- topology


def make_line_network():
    """a - b - c linear overlay with echo handlers."""
    net = Network(seed=0)
    for name in "abc":
        Endpoint(name, net, handler=echo_handler)
    net.connect("a", "b", latency=0.01)
    net.connect("b", "c", latency=0.02)
    return net


def test_duplicate_endpoint_rejected():
    net = Network()
    Endpoint("x", net, handler=echo_handler)
    with pytest.raises(CommunicationError):
        Endpoint("x", net, handler=echo_handler)


def test_self_link_rejected():
    net = Network()
    Endpoint("x", net, handler=echo_handler)
    with pytest.raises(CommunicationError):
        net.connect("x", "x")


def test_duplicate_link_rejected():
    net = make_line_network()
    with pytest.raises(CommunicationError):
        net.connect("a", "b")


def test_shortest_path_direct_and_multihop():
    net = make_line_network()
    assert net.shortest_path("a", "b") == ["a", "b"]
    assert net.shortest_path("a", "c") == ["a", "b", "c"]


def test_shortest_path_prefers_low_latency():
    net = Network()
    for name in "abcd":
        Endpoint(name, net, handler=echo_handler)
    net.connect("a", "d", latency=1.0)       # slow direct
    net.connect("a", "b", latency=0.01)
    net.connect("b", "c", latency=0.01)
    net.connect("c", "d", latency=0.01)      # fast triple hop
    assert net.shortest_path("a", "d") == ["a", "b", "c", "d"]


def test_no_route_raises():
    net = Network()
    Endpoint("a", net, handler=echo_handler)
    Endpoint("b", net, handler=echo_handler)
    with pytest.raises(CommunicationError):
        net.shortest_path("a", "b")


def test_unknown_endpoint_raises():
    net = Network()
    with pytest.raises(CommunicationError):
        net.endpoint("ghost")


# --------------------------------------------------------------- delivery


def test_direct_delivery_roundtrip():
    net = make_line_network()
    a = net.endpoint("a")
    response = a.send("c", MessageType.PROJECT_STATUS, {"q": 1})
    assert response["echo"] == {"q": 1}


def test_delivery_accounts_bytes_on_every_hop():
    net = make_line_network()
    a = net.endpoint("a")
    a.send("c", MessageType.PROJECT_STATUS, {"blob": "x" * 100})
    assert net.link("a", "b").bytes_carried > 100
    assert net.link("b", "c").bytes_carried > 100
    # response also crossed back
    assert net.link("a", "b").messages_carried >= 2


def test_delivery_numpy_payload():
    net = make_line_network()
    a = net.endpoint("a")
    arr = np.arange(12.0).reshape(3, 4)
    response = a.send("b", MessageType.PROJECT_STATUS, {"data": arr})
    # handler echoes the dict; arrays survive structurally
    assert "data" in response["echo"]


def test_wildcard_walks_until_accepted():
    net = Network()
    rejections = []

    def refuser(message):
        rejections.append(message.dst)
        return None

    def acceptor(message):
        return {"accepted_by": "c"}

    Endpoint("a", net, handler=refuser)
    Endpoint("b", net, handler=refuser)
    Endpoint("c", net, handler=acceptor)
    net.connect("a", "b")
    net.connect("b", "c")
    response = net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})
    assert response == {"accepted_by": "c"}
    assert rejections == ["b"]


def test_wildcard_nobody_accepts_raises():
    net = Network()
    Endpoint("a", net, handler=lambda m: None)
    Endpoint("b", net, handler=lambda m: None)
    net.connect("a", "b")
    with pytest.raises(CommunicationError):
        net.endpoint("a").send(ANY_SERVER, MessageType.COMMAND_FETCH, {})


def test_untrusted_hop_blocks_traffic():
    net = make_line_network()
    # revoke b's trust of a
    net.endpoint("b").trust.remove(net.endpoint("a").keypair.public)
    with pytest.raises(AuthenticationError):
        net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})


def test_endpoint_without_handler_raises():
    net = Network()
    Endpoint("a", net)
    Endpoint("b", net)
    net.connect("a", "b")
    with pytest.raises(CommunicationError):
        net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})


def test_traffic_report_structure():
    net = make_line_network()
    net.endpoint("a").send("c", MessageType.PROJECT_STATUS, {})
    report = net.traffic_report()
    assert len(report) == 2
    assert {"link", "bytes", "messages", "busy_seconds"} <= set(report[0])
    assert net.total_bytes() == sum(r["bytes"] for r in report)


def test_message_reply_swaps_endpoints():
    msg = Message(MessageType.PROJECT_STATUS, src="a", dst="b", payload={})
    reply = msg.reply({"ok": True})
    assert reply.src == "b" and reply.dst == "a"
    assert reply.type == MessageType.RESPONSE


def test_link_latency_affects_busy_time():
    net = Network()
    Endpoint("a", net, handler=echo_handler)
    Endpoint("b", net, handler=echo_handler)
    link = net.connect("a", "b", latency=0.5, bandwidth=1e9)
    net.endpoint("a").send("b", MessageType.PROJECT_STATUS, {})
    assert link.busy_seconds >= 1.0  # request + response latency


def test_link_other():
    net = make_line_network()
    link = net.link("a", "b")
    assert link.other("a") == "b"
    assert link.other("b") == "a"
    with pytest.raises(CommunicationError):
        link.other("z")
