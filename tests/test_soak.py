"""The multi-tenant soak: 100+ tenants, seeded faults, fourteen invariants.

The acceptance bar for the service plane: a fleet of 100+ tenants with
heterogeneous quotas/weights/backpressure caps — all deliberately
reusing the same command ids — completes under probabilistic message
faults with every invariant green, exact quota ledgers and zero
cross-tenant leakage, and the whole run reproduces from its seed.
"""

import pytest

from repro.net.protocol import MessageType
from repro.testing import TenantSpec, run_multitenant_soak
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def soak():
    # one full-size run shared by the assertions below (it is the
    # expensive part; ~100 tenants of short MD commands)
    return run_multitenant_soak(n_tenants=100, seed=0)


def test_soak_completes_all_tenants(soak):
    assert len(soak.specs) == 100
    assert soak.completed_tenants() == 100


def test_soak_passes_all_fourteen_invariants(soak):
    assert soak.violations == []


def test_soak_actually_injected_faults(soak):
    # a soak without weather proves nothing
    assert soak.chaos["firings"] > 0
    assert soak.chaos["dropped"] > 0


def test_soak_exercises_backpressure_and_quotas(soak):
    ledgers = {t: r["ledger"] for t, r in soak.report.items() if r["ledger"]}
    assert sum(l["deferred_total"] for l in ledgers.values()) > 0
    assert all(l["deferred_pending"] == 0 for l in ledgers.values())
    # every 5th tenant is quota-capped at 2; ledgers must respect it
    for k in range(0, 100, 5):
        ledger = ledgers[f"tenant{k:03d}"]
        assert ledger["peak_in_flight"] <= 2, (k, ledger)
    # all work released: nothing in flight at the end
    assert all(l["in_flight"] == 0 for l in ledgers.values())


def test_soak_zero_cross_tenant_leakage(soak):
    # every controller saw exactly its own command count, with the
    # colliding ids resolved per tenant
    for spec in soak.specs:
        controller = soak.controllers[spec.name]
        assert sorted(controller.finished) == sorted(
            f"cmd{k}" for k in range(spec.n_commands)
        ), spec.name


def test_soak_spreads_tenants_across_shards(soak):
    shards = {r["shard"] for r in soak.report.values()}
    assert len(shards) == len(soak.shards)  # every shard hosts someone


def test_soak_exports_per_tenant_metrics(soak):
    metrics = soak.obs.metrics
    for name in ("tenant000", "tenant042", "tenant099"):
        completed = metrics.value(
            "repro_tenant_commands_completed",
            project=name,
            shard=soak.report[name]["shard"],
        )
        assert completed == soak.report[name]["completed"]


def test_soak_is_deterministic_from_its_seed():
    a = run_multitenant_soak(n_tenants=12, n_shards=2, seed=3)
    b = run_multitenant_soak(n_tenants=12, n_shards=2, seed=3)
    assert a.transcript == b.transcript
    assert a.report == b.report


def test_soak_with_custom_faults_and_mix():
    specs = [
        TenantSpec(name="solo-a", model="double-well", n_commands=2,
                   n_steps=150, quota=1),
        TenantSpec(name="solo-b", model="muller-brown", n_commands=2,
                   n_steps=150, max_queued=1),
    ]

    def configure(plan):
        plan.duplicate(message_type=MessageType.COMMAND_RESULT, count=3)

    result = run_multitenant_soak(
        specs=specs, n_shards=2, workers_per_shard=1,
        configure=configure, seed=9,
    )
    assert result.violations == []
    assert result.completed_tenants() == 2
    assert result.report["solo-b"]["ledger"]["deferred_total"] > 0


def test_soak_rejects_bad_populations():
    with pytest.raises(ConfigurationError):
        run_multitenant_soak(specs=[], seed=0)
    dup = TenantSpec(name="d", model="double-well", n_commands=1, n_steps=100)
    with pytest.raises(ConfigurationError):
        run_multitenant_soak(specs=[dup, dup], seed=0)


def test_soak_cli_emits_json_verdict(tmp_path, capsys):
    import json

    from repro.cli import main

    out_file = tmp_path / "soak.json"
    code = main([
        "soak", "--tenants", "10", "--shards", "2", "--seed", "1",
        "--out", str(out_file),
    ])
    assert code == 0
    report = json.loads(out_file.read_text())
    assert report["invariants_ok"] is True
    assert report["completed"] == report["tenants"] == 10
    assert set(report["per_tenant"]) == {f"tenant{k:03d}" for k in range(10)}
