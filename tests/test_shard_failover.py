"""Shard failover: dead-shard detection, migration, exactly-once.

The robustness promise of the multi-tenant plane: a shard server dying
for good must not strand the projects consistent-hashed onto it.  The
gateway's :class:`~repro.server.shardmon.ShardMonitor` detects the
death from missed liveness probes, the runner ships the victim's WAL
to successor shards, replays each displaced project through a fresh
deterministic controller, reseeds the exactly-once barrier and flips
the route tables — and the post-failover result set equals the
crash-free run's (invariant 13), proven here both by direct failover
calls and by the canned chaos scenario across seeds.
"""

import pytest

from repro.core.command import Command
from repro.core.controller import Controller
from repro.core.events import EventKind
from repro.core.multirunner import MultiProjectRunner
from repro.core.project import Project
from repro.md.engine import MDTask
from repro.net.protocol import MessageType
from repro.net.topology import sharded, workstation
from repro.net.transport import Network
from repro.server.server import CopernicusServer
from repro.server.shardmon import ShardMonitor, ShardProbePolicy
from repro.testing import (
    ChaosNetwork,
    FaultPlan,
    Invariants,
    live_completions,
    run_multitenant_with_shard_crash,
)
from repro.util.errors import ConfigurationError, UnknownShardError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker


class TinySwarm(Controller):
    """A flat N-command swarm with deterministic re-issue."""

    def __init__(self, n_commands=3, n_steps=400):
        self.n_commands = n_commands
        self.n_steps = n_steps
        self.finished = []

    def on_project_start(self, project):
        return [
            Command(
                command_id=f"cmd{k}",
                project_id=project.project_id,
                executable="mdrun",
                payload=MDTask(
                    model="double-well",
                    n_steps=self.n_steps,
                    report_interval=self.n_steps // 2,
                    seed=k,
                    task_id=f"cmd{k}",
                ).to_payload(),
            )
            for k in range(self.n_commands)
        ]

    def on_command_finished(self, project, command, result):
        self.finished.append(command.command_id)
        return []

    def is_complete(self, project):
        return len(self.finished) >= self.n_commands


def build_fleet(tmp_path, n_shards=3, workers_per_shard=1, seed=0, plan=None):
    """Gateway + shards + workers over a (quiet) chaos overlay, with
    journals and the shard monitor attached."""
    network = ChaosNetwork(plan=plan or FaultPlan(seed=seed), seed=seed)
    gateway = CopernicusServer("gateway", network)
    shards, workers = [], []
    for s in range(n_shards):
        shard = CopernicusServer(f"shard{s}", network)
        shards.append(shard)
        network.connect("gateway", f"shard{s}")
        for w in range(workers_per_shard):
            worker = Worker(
                f"s{s}w{w}", network, server=f"shard{s}",
                platform=SMPPlatform(cores=2), segment_steps=200,
            )
            network.connect(f"shard{s}", worker.name)
            workers.append(worker)
    for worker in workers:
        worker.announce(0.0)
    runner = MultiProjectRunner(network, shards, workers, tick=60.0)
    runner.attach_journals(tmp_path / "journals")
    runner.attach_shard_monitor(gateway)
    return network, gateway, runner


def submit_swarms(runner, pids, n_commands=3):
    for pid in pids:
        runner.submit(
            Project(pid),
            TinySwarm(n_commands=n_commands),
            controller_factory=lambda n=n_commands: TinySwarm(n_commands=n),
        )


def drive(runner, cycles):
    """A few manual drive cycles (the run() loop, without completion)."""
    for server in runner.servers:
        server.events = runner.events
        server.clock = max(server.clock, runner.now)
    for _ in range(cycles):
        for worker in runner.workers:
            if worker.crashed:
                continue
            now = runner.now + worker.poll_offset
            worker.heartbeat(now)
            worker.work_once(now=now)
        runner.now += runner.tick
        runner._liveness_sweep()


# -- detection ------------------------------------------------------------


def test_monitor_declares_dead_after_three_missed_probes(tmp_path):
    network, gateway, runner = build_fleet(tmp_path)
    network.plan.crash_server("shard0", after_index=0)
    monitor = runner.monitor
    # miss 1 and 2: suspicious, not yet dead
    assert monitor.check(0.0) == []
    assert monitor.check(60.0) == []
    # miss 3: score 0.6^3 = 0.216 < 0.5 and the miss streak is fatal
    assert monitor.check(120.0) == ["shard0"]
    assert monitor.is_dead("shard0")
    record = monitor.describe()["shard0"]
    assert record["consecutive_misses"] == 3
    assert record["score"] < 0.5
    # dead is reported exactly once, and the healthy shards never were
    assert monitor.check(180.0) == []
    assert not monitor.is_dead("shard1")
    misses = gateway.obs.metrics.value(
        "repro_shard_probes_total", shard="shard0", outcome="miss"
    )
    assert misses >= 3
    assert gateway.obs.metrics.value(
        "repro_shard_probes_total", shard="shard0", outcome="declared_dead"
    ) == 1


def test_monitor_recovers_score_when_probes_answer(tmp_path):
    network, gateway, runner = build_fleet(tmp_path)
    # two missed probes (4 send attempts each), then answers again —
    # suspicion must reset instead of accumulating toward a verdict
    network.plan.drop(
        dst="shard1", message_type=MessageType.PROJECT_STATUS, count=8
    )
    monitor = runner.monitor
    monitor.check(0.0)
    monitor.check(60.0)
    assert monitor.describe()["shard1"]["consecutive_misses"] == 2
    monitor.check(120.0)
    assert not monitor.is_dead("shard1")
    assert monitor.describe()["shard1"]["consecutive_misses"] == 0


def test_probe_policy_validation():
    with pytest.raises(ConfigurationError):
        ShardProbePolicy(alpha=0.0)
    with pytest.raises(ConfigurationError):
        ShardProbePolicy(probe_interval=0.0)
    with pytest.raises(ConfigurationError):
        ShardProbePolicy(dead_after_misses=0)
    with pytest.raises(ConfigurationError):
        ShardProbePolicy(dead_threshold=1.0)
    net = Network(seed=0)
    gateway = CopernicusServer("gw", net)
    with pytest.raises(ConfigurationError):
        ShardMonitor(gateway, [])


# -- direct failover ------------------------------------------------------


def test_failover_migrates_and_finishes_exactly_once(tmp_path):
    network, gateway, runner = build_fleet(tmp_path, workers_per_shard=2)
    pids = ["alpha", "beta", "gamma", "delta", "epsilon"]
    submit_swarms(runner, pids)
    drive(runner, 2)  # some results journal before the crash

    victim = runner.shard_of(pids[0])
    displaced = [p for p in pids if runner.shard_of(p) == victim]
    reports = runner.fail_over(victim)

    assert [r.project_id for r in reports] == sorted(displaced)
    assert all(r.from_shard == victim for r in reports)
    assert all(r.to_shard != victim for r in reports)
    # the ring only moved the victim's keys
    for pid in pids:
        if pid not in displaced:
            assert runner.shard_of(pid) != victim
    # every live server (gateway included) re-routes the migrated ids
    for report in reports:
        for server in runner.servers:
            assert server.routes[report.project_id] == report.to_shard
    # the orphaned workers were re-homed onto survivors
    assert all(worker.server != victim for worker in runner.workers)
    # journals actually shipped bytes
    assert all(r.files_shipped > 0 and r.bytes_shipped > 0 for r in reports)

    runner.run()
    assert Invariants(runner).check() == []
    # exactly-once across the move: every command completed live once
    expected = sorted((pid, f"cmd{k}") for pid in pids for k in range(3))
    assert live_completions(runner.events) == expected
    assert runner.obs.metrics.total("repro_shard_failovers_total") == 1
    assert runner.obs.metrics.total("repro_projects_migrated_total") == len(
        reports
    )


def test_failover_is_idempotent_and_typed(tmp_path):
    network, gateway, runner = build_fleet(tmp_path)
    submit_swarms(runner, ["alpha", "beta", "gamma"])
    drive(runner, 2)
    victim = runner.shard_of("alpha")
    assert runner.fail_over(victim)
    # double failover of the same shard: a no-op, not an error
    assert runner.fail_over(victim) == []
    # a shard that never existed: typed refusal
    with pytest.raises(UnknownShardError):
        runner.fail_over("ghost")


def test_failover_requires_journals_and_factories(tmp_path):
    # no journals: failover is impossible and must say so
    network = ChaosNetwork(plan=FaultPlan(seed=0), seed=0)
    gateway = CopernicusServer("gateway", network)
    shards = [CopernicusServer(f"shard{s}", network) for s in range(2)]
    for shard in shards:
        network.connect("gateway", shard.name)
    runner = MultiProjectRunner(network, shards, [], tick=60.0)
    runner.attach_shard_monitor(gateway)
    with pytest.raises(ConfigurationError):
        runner.fail_over("shard0")

    # journals but no controller factory: the displaced project cannot
    # be replayed deterministically — a typed configuration error
    network2, gateway2, runner2 = build_fleet(tmp_path)
    runner2.submit(Project("solo"), TinySwarm())
    drive(runner2, 1)
    with pytest.raises(ConfigurationError):
        runner2.fail_over(runner2.shard_of("solo"))


def test_liveness_sweep_drives_failover_organically(tmp_path):
    """A crashed shard is detected and failed over inside run()."""
    network, gateway, runner = build_fleet(tmp_path, workers_per_shard=1)
    # enough work that the fleet is still busy while the monitor needs
    # its three missed probes to declare the victim dead
    pids = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    submit_swarms(runner, pids, n_commands=4)
    drive(runner, 1)
    victim = runner.shard_of(pids[0])
    network.plan.crash_server(victim, after_index=network.delivery_index)
    runner.run()
    assert runner.migrations, "nothing migrated"
    assert all(m.from_shard == victim for m in runner.migrations)
    assert Invariants(runner).check() == []
    dead_events = runner.events.filter(kind=EventKind.SHARD_DEAD)
    assert [e.details["server"] for e in dead_events] == [victim]


# -- dispatch retry + redirect protocol -----------------------------------


def test_dispatch_rides_out_unreachable_shard(tmp_path):
    network, gateway, runner = build_fleet(tmp_path)
    submit_swarms(runner, ["alpha", "beta", "gamma"])
    drive(runner, 2)
    pid = "alpha"
    victim = runner.shard_of(pid)
    network.plan.crash_server(victim, after_index=network.delivery_index)
    extra = Command(
        command_id="extra",
        project_id=pid,
        executable="mdrun",
        payload=MDTask(
            model="double-well", n_steps=200, report_interval=100,
            seed=9, task_id="extra",
        ).to_payload(),
    )
    accepted = runner.dispatch(pid, [extra])
    assert accepted != victim
    assert accepted == runner.shard_of(pid)
    # the probe's exhausted retries were counted, not swallowed
    retried = runner.obs.metrics.value(
        "repro_shard_route_retries_total", project=pid, reason="dispatch"
    )
    assert retried >= 1
    # the submission landed on the successor, not in an exception
    successor = next(s for s in runner.shards if s.name == accepted)
    assert "extra" in [c.command_id for c in successor.queue.commands()]
    # and the unreachable shard was failed over along the way
    assert any(m.project_id == pid for m in runner.migrations)


def test_stale_result_forward_answers_redirect():
    net = Network(seed=0)
    stale = CopernicusServer("stale", net)
    successor = CopernicusServer("successor", net)
    carrier = CopernicusServer("carrier", net)
    net.connect("stale", "successor")
    net.connect("carrier", "stale")
    net.connect("carrier", "successor")
    received = []
    successor.host_project("p", lambda c, r: received.append(c.command_id))
    stale.update_route("p", "successor")

    command = Command("c1", "p", "mdrun", {})
    command.origin_server = "stale"
    # a direct forward to the stale origin is answered with a
    # retryable redirect, not silently relayed
    response = carrier.send(
        "stale",
        MessageType.RESULT_FORWARD,
        {"worker": "w0", "command": command.to_payload(), "result": {}},
    )
    assert response == {
        "ok": False, "duplicate": False, "redirect": "successor",
    }
    assert net.obs.metrics.value(
        "repro_shard_route_redirects_total", server="stale", project="p"
    ) == 1

    # the carrier's own routing follows the redirect to the sink and
    # learns the route for next time
    outcome = carrier._route_result(command, {"steps": 1})
    assert outcome == "forwarded"
    assert received == ["c1"]
    assert carrier.routes["p"] == "successor"
    assert net.obs.metrics.value(
        "repro_shard_route_retries_total",
        server="carrier", project="p", reason="redirect",
    ) == 1


# -- invariant 13 ----------------------------------------------------------


def test_invariant13_flags_fabricated_migration(tmp_path):
    network, gateway, runner = build_fleet(tmp_path)
    submit_swarms(runner, ["alpha", "beta"])
    runner.run()
    assert Invariants(runner).check() == []
    # a migration event with no preceding shard death must be caught
    runner.events.record(
        runner.now, EventKind.PROJECT_MIGRATED, "alpha",
        from_shard="shard0", to_shard="shard1", replayed=1, restored=0,
    )
    violations = Invariants(runner).check()
    assert violations
    assert any("migrat" in v for v in violations)


# -- the canned chaos scenario --------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_shard_crash_scenario_is_exactly_once(tmp_path, seed):
    result = run_multitenant_with_shard_crash(
        tmp_path / f"seed{seed}", n_tenants=8, n_shards=3,
        workers_per_shard=2, seed=seed,
    )
    assert result.violations == []
    assert result.migrations, "the crash must displace live projects"
    assert result.completed_tenants() == len(result.specs)
    # the headline: the failover run's live-completion multiset equals
    # the crash-free baseline's — nothing lost, nothing doubled
    assert result.baseline_completions is not None
    assert result.exactly_once
    # the victim really died and really was failed over
    assert result.victim not in [s.name for s in result.shards]
    timeline = result.migration_timeline()
    assert timeline[0]["kind"] == "shard_dead"
    assert any(t["kind"] == "project_migrated" for t in timeline)
    # chaos weather was live while it happened
    assert result.chaos["firings"] > 0


def test_shard_crash_scenario_respects_explicit_victim(tmp_path):
    result = run_multitenant_with_shard_crash(
        tmp_path, n_tenants=8, n_shards=3, workers_per_shard=2,
        victim="shard2", baseline=False, seed=0,
    )
    assert result.victim == "shard2"
    assert result.baseline is None and result.baseline_completions is None
    assert result.exactly_once  # vacuous without a baseline
    assert result.violations == []


def test_shard_crash_scenario_rejects_bad_config(tmp_path):
    with pytest.raises(ConfigurationError):
        run_multitenant_with_shard_crash(tmp_path, n_shards=1)
    with pytest.raises(ConfigurationError):
        run_multitenant_with_shard_crash(
            tmp_path, n_tenants=4, victim="not-a-shard", baseline=False
        )


# -- topology accessor -----------------------------------------------------


def test_deployment_gateway_accessor():
    deployment = sharded(n_shards=2, workers_per_shard=1)
    assert deployment.gateway.name == "gateway"
    with pytest.raises(ConfigurationError):
        workstation().gateway
