"""Tests for System/State/Topology and the neighbour-list providers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.neighborlist import AllPairs, CellList
from repro.md.system import State, System, Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


def test_topology_validates_indices():
    with pytest.raises(ConfigurationError):
        Topology(n_atoms=2, bonds=[[0, 5]], bond_r0=[1.0], bond_k=[1.0])


def test_topology_validates_alignment():
    with pytest.raises(ConfigurationError):
        Topology(n_atoms=3, bonds=[[0, 1]], bond_r0=[1.0, 2.0], bond_k=[1.0])


def test_topology_excluded_pairs_include_bonds_and_13():
    topo = Topology(
        n_atoms=3,
        bonds=[[0, 1], [1, 2]],
        bond_r0=[1.0, 1.0],
        bond_k=[1.0, 1.0],
        angles=[[0, 1, 2]],
        angle_theta0=[1.5],
        angle_k=[1.0],
    )
    assert topo.all_excluded_pairs() == {(0, 1), (1, 2), (0, 2)}


def test_topology_rejects_nonpositive_atoms():
    with pytest.raises(ConfigurationError):
        Topology(n_atoms=0)


def test_state_shape_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        State(np.zeros((3, 3)), np.zeros((2, 3)))


def test_state_copy_is_deep():
    s = State(np.zeros((2, 3)), np.zeros((2, 3)), time=1.0, step=10)
    c = s.copy()
    c.positions[0, 0] = 5.0
    assert s.positions[0, 0] == 0.0
    assert c.time == 1.0 and c.step == 10


def test_system_rejects_bad_masses():
    with pytest.raises(ConfigurationError):
        System(masses=[1.0, -1.0])
    with pytest.raises(ConfigurationError):
        System(masses=[])


def test_system_rejects_bad_dim():
    with pytest.raises(ConfigurationError):
        System(masses=[1.0], dim=4)


def test_system_topology_size_mismatch_rejected():
    topo = Topology(n_atoms=3)
    with pytest.raises(ConfigurationError):
        System(masses=[1.0, 1.0], topology=topo)


def test_kinetic_energy_formula():
    system = System(masses=[2.0, 3.0])
    v = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
    # 0.5*2*1 + 0.5*3*4 = 1 + 6
    assert system.kinetic_energy(v) == pytest.approx(7.0)


def test_instantaneous_temperature_consistency():
    system = System(masses=[1.0] * 10)
    rng = RandomStream(0)
    v = system.maxwell_boltzmann_velocities(300.0, rng)
    t = system.instantaneous_temperature(v)
    assert 100 < t < 600  # single draw fluctuates, but the scale is right


def test_all_pairs_count():
    provider = AllPairs(5)
    i, j = provider.pairs(np.zeros((5, 3)))
    assert len(i) == 10
    assert np.all(i < j)


def test_all_pairs_exclusions_removed():
    provider = AllPairs(4, exclusions=[(0, 1), (3, 2)])
    i, j = provider.pairs(np.zeros((4, 3)))
    pairs = set(zip(i.tolist(), j.tolist()))
    assert (0, 1) not in pairs
    assert (2, 3) not in pairs
    assert len(pairs) == 4


def test_all_pairs_invalid_n():
    with pytest.raises(ConfigurationError):
        AllPairs(0)


def test_cell_list_matches_all_pairs_within_cutoff():
    rng = RandomStream(1)
    positions = rng.uniform(0, 3.0, size=(60, 3))
    cutoff = 0.7
    cell = CellList(cutoff=cutoff, skin=0.0)
    ci, cj = cell.pairs(positions)
    cell_pairs = set(zip(ci.tolist(), cj.tolist()))
    ai, aj = AllPairs(60).pairs(positions)
    d = np.linalg.norm(positions[aj] - positions[ai], axis=1)
    brute = set(
        (int(a), int(b)) for a, b, dd in zip(ai, aj, d) if dd <= cutoff
    )
    assert brute <= cell_pairs  # cell list must not miss any true pair
    # and everything returned is within cutoff (skin=0)
    for a, b in cell_pairs:
        assert np.linalg.norm(positions[b] - positions[a]) <= cutoff + 1e-12


def test_cell_list_respects_exclusions():
    positions = np.array([[0.0, 0.0, 0.0], [0.1, 0.0, 0.0], [0.2, 0.0, 0.0]])
    cell = CellList(cutoff=1.0, exclusions=[(0, 1)])
    i, j = cell.pairs(positions)
    pairs = set(zip(i.tolist(), j.tolist()))
    assert (0, 1) not in pairs
    assert (0, 2) in pairs and (1, 2) in pairs


def test_cell_list_2d_positions():
    rng = RandomStream(2)
    positions = rng.uniform(0, 2.0, size=(30, 2))
    cell = CellList(cutoff=0.5, skin=0.0)
    i, j = cell.pairs(positions)
    d = np.linalg.norm(positions[j] - positions[i], axis=1)
    assert np.all(d <= 0.5 + 1e-12)


def test_cell_list_invalid_params():
    with pytest.raises(ConfigurationError):
        CellList(cutoff=0.0)
    with pytest.raises(ConfigurationError):
        CellList(cutoff=1.0, skin=-0.1)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.3, max_value=1.5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_cell_list_complete(n, cutoff, seed):
    """Cell list finds every pair within the cutoff, for random clouds."""
    rng = RandomStream(seed)
    positions = rng.uniform(0, 2.5, size=(n, 3))
    ci, cj = CellList(cutoff=cutoff, skin=0.0).pairs(positions)
    got = set(zip(ci.tolist(), cj.tolist()))
    ai, aj = AllPairs(n).pairs(positions)
    d = np.linalg.norm(positions[aj] - positions[ai], axis=1)
    expected = set(
        (int(a), int(b)) for a, b, dd in zip(ai, aj, d) if dd <= cutoff
    )
    assert expected <= got
