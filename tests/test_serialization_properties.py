"""Seeded property-based tests for the wire format (stdlib random only).

Complements ``test_payload_properties.py`` (which covers the typed
dataclasses with hypothesis): here we fuzz *arbitrary* nested payloads
— dicts with unicode keys, floats, ints, lists, booleans, ``None`` —
through ``encode_message``/``decode_message`` and check that
``message_size`` grows monotonically as payloads grow.  Pure stdlib
``random.Random`` with fixed seeds, so failures replay exactly.
"""

import math
import random

import pytest

from repro.util.errors import CommunicationError
from repro.util.serialization import decode_message, encode_message, message_size

KEY_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyz0123456789_-"
    "äöüßéèñ中文字日本語кирилл😀λπ"
)


def random_key(rng: random.Random) -> str:
    return "".join(
        rng.choice(KEY_ALPHABET) for _ in range(rng.randint(1, 12))
    )


def random_scalar(rng: random.Random):
    kind = rng.randrange(6)
    if kind == 0:
        return rng.randint(-(10 ** 12), 10 ** 12)
    if kind == 1:
        # exponent range keeps floats repr-round-trippable but wild
        return rng.uniform(-1.0, 1.0) * 10 ** rng.randint(-30, 30)
    if kind == 2:
        return random_key(rng)
    if kind == 3:
        return rng.random() < 0.5
    if kind == 4:
        return None
    return rng.choice([0, -1, 1.5e-300, 1.5e300, "", "\x00", "\\n\"'"])


def random_payload(rng: random.Random, depth: int = 0):
    if depth >= 3 or rng.random() < 0.4:
        return random_scalar(rng)
    if rng.random() < 0.5:
        return {
            random_key(rng): random_payload(rng, depth + 1)
            for _ in range(rng.randint(0, 5))
        }
    return [random_payload(rng, depth + 1) for _ in range(rng.randint(0, 5))]


@pytest.mark.parametrize("seed", range(10))
def test_roundtrip_random_nested_payloads(seed):
    rng = random.Random(seed)
    for _ in range(50):
        payload = {random_key(rng): random_payload(rng) for _ in range(3)}
        decoded = decode_message(encode_message(payload))
        assert decoded == payload


def test_roundtrip_unicode_keys_and_values():
    payload = {
        "中文字": {"ключ": "значение", "emoji😀": ["λ", "π", "日本語"]},
        "nested": {"ß": {"é": [1, 2.5, None, True]}},
    }
    assert decode_message(encode_message(payload)) == payload


@pytest.mark.parametrize("seed", range(5))
def test_roundtrip_floats_exactly(seed):
    rng = random.Random(1000 + seed)
    floats = [
        rng.uniform(-1.0, 1.0) * 10 ** rng.randint(-300, 300)
        for _ in range(100)
    ]
    decoded = decode_message(encode_message({"xs": floats}))
    assert decoded["xs"] == floats
    assert all(
        math.isclose(a, b, rel_tol=0.0, abs_tol=0.0)
        for a, b in zip(decoded["xs"], floats)
    )


@pytest.mark.parametrize("seed", range(10))
def test_message_size_monotone_under_added_keys(seed):
    """Adding a key to a dict never shrinks the wire size."""
    rng = random.Random(2000 + seed)
    payload = {}
    last = message_size(payload)
    for _ in range(30):
        key = random_key(rng)
        while key in payload:  # a collision would *replace*, not add
            key += rng.choice(KEY_ALPHABET)
        payload[key] = random_payload(rng)
        size = message_size(payload)
        assert size >= last
        last = size


@pytest.mark.parametrize("seed", range(10))
def test_message_size_monotone_under_growing_lists(seed):
    rng = random.Random(3000 + seed)
    items = []
    last = message_size({"items": items})
    for _ in range(30):
        items.append(random_payload(rng))
        size = message_size({"items": items})
        assert size >= last
        last = size


def test_message_size_monotone_under_nesting():
    payload = {"x": 1}
    last = message_size(payload)
    for _ in range(10):
        payload = {"wrap": payload}
        size = message_size(payload)
        assert size > last
        last = size


@pytest.mark.parametrize("seed", range(5))
def test_non_string_keys_always_rejected(seed):
    rng = random.Random(4000 + seed)
    bad_key = rng.choice([1, 2.5, None, True, (1, 2)])
    with pytest.raises(CommunicationError):
        encode_message({bad_key: "x"})
