"""Tests for the exact-ground-truth Markov-chain toy systems."""

import numpy as np
import pytest

from repro.md.engine import MDEngine, MDTask, MODEL_REGISTRY
from repro.md.models.markov_chain import (
    MARKOV_CHAIN_MODELS,
    MarkovChainSpec,
    alanine_chain_spec,
    build_markov_chain,
    markov_chain_initial_state,
    metropolis_transition_matrix,
    muller_brown_chain_spec,
)
from repro.util.errors import ConfigurationError


# ------------------------------------------------------------ the spec


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        MarkovChainSpec(np.ones((2, 3)), np.zeros((2, 1)))
    with pytest.raises(ConfigurationError):  # rows not stochastic
        MarkovChainSpec(np.ones((2, 2)), np.arange(2.0))
    T = np.array([[0.5, 0.5], [0.5, 0.5]])
    with pytest.raises(ConfigurationError):  # duplicate embedding
        MarkovChainSpec(T, np.zeros((2, 1)))
    with pytest.raises(ConfigurationError):  # bad start
        MarkovChainSpec(T, np.arange(2.0), default_start=5)


def test_sample_next_inverts_the_cdf():
    T = np.array([[0.2, 0.3, 0.5], [1.0, 0.0, 0.0], [0.0, 0.5, 0.5]])
    spec = MarkovChainSpec(T, np.arange(3.0))
    assert spec.sample_next(0, 0.1) == 0
    assert spec.sample_next(0, 0.25) == 1
    assert spec.sample_next(0, 0.9) == 2
    assert spec.sample_next(1, 0.999999) == 0
    assert spec.sample_next(2, 0.49) == 1


def test_discretize_round_trips_positions():
    spec = alanine_chain_spec()
    for state in (0, 7, spec.n_states - 1):
        assert spec.state_of(spec.position_of(state)) == state
    frames = np.stack([spec.position_of(s) for s in (3, 1, 4)])
    np.testing.assert_array_equal(spec.discretize(frames), [3, 1, 4])


def test_frame_matrix_is_matrix_power():
    spec = alanine_chain_spec(n_states=6)
    np.testing.assert_allclose(
        spec.frame_matrix(3),
        spec.transition_matrix @ spec.transition_matrix @ spec.transition_matrix,
    )
    with pytest.raises(ConfigurationError):
        spec.frame_matrix(0)


# -------------------------------------------------- metropolis builder


def test_metropolis_chain_is_exactly_reversible():
    spec = alanine_chain_spec(n_states=12)
    pi = np.exp(-spec.energies)
    pi /= pi.sum()
    T = spec.transition_matrix
    # detailed balance against exp(-beta E), entry by entry
    np.testing.assert_allclose(pi[:, None] * T, (pi[:, None] * T).T, atol=1e-12)
    np.testing.assert_allclose(spec.stationary_distribution(), pi, atol=1e-8)


def test_muller_brown_chain_is_connected_and_reversible():
    spec = muller_brown_chain_spec()
    assert spec.n_states > 10
    assert spec.dim == 2
    pi = np.exp(-0.4 * (spec.energies - spec.energies.min()))
    pi /= pi.sum()
    T = spec.transition_matrix
    np.testing.assert_allclose(pi[:, None] * T, (pi[:, None] * T).T, atol=1e-12)
    # every state reachable: T + T^2 + ... has no all-zero column block
    reach = np.linalg.matrix_power(
        np.eye(spec.n_states) + T, spec.n_states
    )
    assert np.all(reach[spec.default_start] > 0)


# ------------------------------------------------- engine integration


def test_chain_models_are_registered():
    for name in MARKOV_CHAIN_MODELS:
        assert name in MODEL_REGISTRY
    with pytest.raises(ConfigurationError):
        build_markov_chain("markov-nope")


@pytest.mark.parametrize("model", sorted(MARKOV_CHAIN_MODELS))
def test_engine_runs_chain_on_embedding_points(model):
    spec = build_markov_chain(model).spec
    task = MDTask(
        model=model,
        n_steps=200,
        report_interval=10,
        integrator="markov-chain",
        seed=3,
        task_id="chain",
    )
    result = MDEngine().run(task)
    frames = np.asarray(result.frames)
    assert len(frames) == 21  # initial frame + 200/10 reports
    states = spec.discretize(frames)
    # every frame sits exactly on an embedding point
    recon = np.stack([spec.position_of(s) for s in states])
    np.testing.assert_array_equal(frames.reshape(recon.shape), recon)


def test_engine_chain_runs_are_seed_deterministic():
    def run(seed):
        task = MDTask(
            model="markov-ala20",
            n_steps=300,
            report_interval=10,
            integrator="markov-chain",
            seed=seed,
            task_id=f"chain-{seed}",
        )
        return np.asarray(MDEngine().run(task).frames)

    np.testing.assert_array_equal(run(5), run(5))
    assert not np.array_equal(run(5), run(6))


def test_chain_sampling_statistics_match_truth():
    spec = alanine_chain_spec(n_states=8, barrier=1.0, tilt=0.5)
    task = MDTask(
        model="markov-ala20",
        model_params={"n_states": 8, "barrier": 1.0, "tilt": 0.5},
        n_steps=20000,
        report_interval=1,
        integrator="markov-chain",
        seed=11,
        task_id="stats",
    )
    frames = np.asarray(MDEngine().run(task).frames)
    states = spec.discretize(frames)
    visits = np.bincount(states, minlength=spec.n_states).astype(float)
    visits /= visits.sum()
    pi = spec.stationary_distribution()
    # a flat 8-state chain mixes in ~100s of steps; 20k steps pin the
    # histogram to the exact stationary law within a few percent
    assert np.abs(visits - pi).max() < 0.05


def test_markov_chain_initial_state_bounds():
    system = build_markov_chain("markov-ala20")
    state = markov_chain_initial_state(system, 4)
    assert system.spec.state_of(state.positions) == 4
    with pytest.raises(ConfigurationError):
        markov_chain_initial_state(system, 99)


def test_metropolis_builder_validation():
    with pytest.raises(ConfigurationError):
        metropolis_transition_matrix(np.zeros(3), [[], [], []])
    with pytest.raises(ConfigurationError):
        metropolis_transition_matrix(np.zeros(2), [[1], [0]], beta=0.0)
    with pytest.raises(ConfigurationError):
        alanine_chain_spec(n_states=1)
