"""Tests for trajectory observables."""

import numpy as np
import pytest

from repro.md.models.villin import build_villin
from repro.md.observables import (
    bond_length_series,
    end_to_end_distance,
    fraction_native_contacts,
    potential_energy_series,
    radius_of_gyration,
)
from repro.util.errors import ConfigurationError


def test_rg_two_particles():
    # two unit masses +/- 1 along x: rg = 1
    pos = np.array([[[-1.0, 0, 0], [1.0, 0, 0]]])
    assert radius_of_gyration(pos)[0] == pytest.approx(1.0)


def test_rg_mass_weighting():
    pos = np.array([[[-1.0, 0, 0], [1.0, 0, 0]]])
    # heavy first atom pulls the COM toward it
    rg = radius_of_gyration(pos, masses=np.array([3.0, 1.0]))[0]
    # com at -0.5; distances 0.5 and 1.5 -> rg = sqrt((3*0.25+1*2.25)/4)
    assert rg == pytest.approx(np.sqrt(3.0 / 4.0))


def test_rg_translation_invariant():
    rng = np.random.default_rng(0)
    frames = rng.normal(size=(4, 7, 3))
    shifted = frames + np.array([10.0, -5.0, 3.0])
    np.testing.assert_allclose(
        radius_of_gyration(frames), radius_of_gyration(shifted), atol=1e-12
    )


def test_rg_single_frame_input():
    pos = np.zeros((5, 3))
    assert radius_of_gyration(pos).shape == (1,)


def test_rg_mass_shape_validation():
    with pytest.raises(ConfigurationError):
        radius_of_gyration(np.zeros((1, 3, 3)), masses=np.ones(2))


def test_rg_villin_native_vs_extended():
    model = build_villin("fast")
    ext = model.extended_state(rng=0).positions
    rg_native = radius_of_gyration(model.native)[0]
    rg_ext = radius_of_gyration(ext)[0]
    assert rg_native < 0.5 * rg_ext


def test_end_to_end_distance():
    pos = np.zeros((2, 4, 3))
    pos[0, -1, 0] = 3.0
    pos[1, -1, 1] = 4.0
    np.testing.assert_allclose(end_to_end_distance(pos), [3.0, 4.0])


def test_fraction_native_contacts_matches_go_force():
    model = build_villin("fast")
    q_obs = fraction_native_contacts(
        model.native, model.go_force.pairs, model.go_force.r0
    )[0]
    assert q_obs == pytest.approx(model.fraction_native(model.native))


def test_fraction_native_contacts_empty_pairs():
    out = fraction_native_contacts(
        np.zeros((2, 3, 3)), np.zeros((0, 2)), np.zeros(0)
    )
    np.testing.assert_allclose(out, 1.0)


def test_fraction_native_contacts_validation():
    with pytest.raises(ConfigurationError):
        fraction_native_contacts(
            np.zeros((1, 3, 3)), np.array([[0, 1]]), np.zeros(2)
        )


def test_potential_energy_series():
    model = build_villin("fast")
    frames = np.stack([model.native, model.native * 1.05])
    energies = potential_energy_series(model.system, frames)
    assert energies.shape == (2,)
    assert energies[1] > energies[0]  # stretched structure is higher


def test_bond_length_series():
    pos = np.zeros((3, 2, 3))
    pos[:, 1, 0] = [1.0, 2.0, 3.0]
    np.testing.assert_allclose(
        bond_length_series(pos, 0, 1), [1.0, 2.0, 3.0]
    )


def test_bond_length_validation():
    with pytest.raises(ConfigurationError):
        bond_length_series(np.zeros((1, 2, 3)), 0, 5)


def test_bad_frame_shape():
    with pytest.raises(ConfigurationError):
        radius_of_gyration(np.zeros(5))
