"""Tests for the pluggable Adapter protocol and scheme registry."""

import numpy as np
import pytest

from repro.core import AdaptiveMSMController, MSMProjectConfig
from repro.lab.adapters import (
    Adapter,
    LEGACY_SCHEME_ALIASES,
    MinCountsAdapter,
    UncertaintyAdapter,
    UniformAdapter,
    WeightedCountsAdapter,
    _ADAPTER_REGISTRY,
    normalize_scheme,
    register_adapter,
    registered_adapters,
    resolve_adapter,
)
from repro.msm.adaptive import (
    even_weights,
    mincounts_weights,
    uncertainty_weights,
    weighted_counts_weights,
)
from repro.util.errors import ConfigurationError

COUNTS = np.array(
    [[4.0, 2.0, 0.0], [1.0, 9.0, 0.0], [0.0, 0.0, 0.0]]
)


# ------------------------------------------------------------- registry


def test_registered_adapters_lists_shipped_schemes():
    names = registered_adapters()
    assert {"uniform", "min-counts", "weighted-counts", "uncertainty"} <= set(
        names
    )
    assert names == sorted(names)


def test_resolve_adapter_returns_matching_instances():
    assert isinstance(resolve_adapter("uniform"), UniformAdapter)
    assert isinstance(resolve_adapter("min-counts"), MinCountsAdapter)
    assert isinstance(resolve_adapter("uncertainty"), UncertaintyAdapter)
    wc = resolve_adapter("weighted-counts", n=2.5)
    assert isinstance(wc, WeightedCountsAdapter)
    assert wc.n == 2.5
    assert wc.describe() == {"scheme": "weighted-counts", "n": 2.5}


def test_resolve_adapter_passes_instances_through():
    adapter = WeightedCountsAdapter(n=3.0)
    assert resolve_adapter(adapter) is adapter
    with pytest.raises(ConfigurationError):
        resolve_adapter(adapter, n=1.0)
    with pytest.raises(ConfigurationError):
        resolve_adapter(42)


def test_unknown_scheme_lists_registered_names():
    with pytest.raises(ConfigurationError) as excinfo:
        normalize_scheme("magic")
    message = str(excinfo.value)
    for name in registered_adapters():
        assert name in message


def test_adapter_weights_match_weight_functions():
    np.testing.assert_allclose(
        UniformAdapter().weights(COUNTS), even_weights(COUNTS)
    )
    np.testing.assert_allclose(
        MinCountsAdapter().weights(COUNTS), mincounts_weights(COUNTS)
    )
    np.testing.assert_allclose(
        WeightedCountsAdapter(n=2.0).weights(COUNTS),
        weighted_counts_weights(COUNTS, n=2.0),
    )
    np.testing.assert_allclose(
        UncertaintyAdapter(prior=2.0).weights(COUNTS),
        uncertainty_weights(COUNTS, prior=2.0),
    )


def test_adapter_parameter_validation():
    with pytest.raises(ConfigurationError):
        WeightedCountsAdapter(n=-1.0)
    with pytest.raises(ConfigurationError):
        UncertaintyAdapter(prior=0.0)


# ------------------------------------------------------- legacy aliases


@pytest.mark.parametrize("legacy,canonical", sorted(LEGACY_SCHEME_ALIASES.items()))
def test_legacy_names_warn_and_map(legacy, canonical):
    with pytest.warns(DeprecationWarning, match=legacy):
        assert normalize_scheme(legacy) == canonical


def test_legacy_name_resolves_to_canonical_adapter():
    with pytest.warns(DeprecationWarning):
        adapter = resolve_adapter("adaptive")
    assert isinstance(adapter, UncertaintyAdapter)


# ----------------------------------------------------------- the plugin


class _FirstStateAdapter(Adapter):
    name = "first-state"

    def weights(self, counts):
        w = np.zeros(counts.shape[0])
        w[0] = 1.0
        return w


def test_register_adapter_plugin(monkeypatch):
    monkeypatch.delitem(_ADAPTER_REGISTRY, "first-state", raising=False)
    register_adapter("first-state", _FirstStateAdapter)
    try:
        adapter = resolve_adapter("first-state")
        assert adapter.weights(COUNTS)[0] == 1.0
        # registered names are accepted by the controller config too
        cfg = MSMProjectConfig(weighting="first-state")
        assert AdaptiveMSMController(cfg).adapter.name == "first-state"
    finally:
        _ADAPTER_REGISTRY.pop("first-state", None)


def test_register_adapter_collisions():
    with pytest.raises(ConfigurationError):
        register_adapter("uniform", UniformAdapter)
    with pytest.raises(ConfigurationError):
        register_adapter("even", UniformAdapter)  # legacy alias collides
    with pytest.raises(ConfigurationError):
        register_adapter("", UniformAdapter)
    with pytest.raises(ConfigurationError):
        register_adapter("not-callable", object())


# --------------------------------------------------- controller wiring


def test_controller_has_no_hardcoded_scheme_dict():
    assert not hasattr(AdaptiveMSMController, "_WEIGHTING_SCHEMES")


def test_config_accepts_adapter_instance_and_params():
    cfg = MSMProjectConfig(weighting=WeightedCountsAdapter(n=2.0))
    controller = AdaptiveMSMController(cfg)
    assert controller.adapter.n == 2.0

    cfg = MSMProjectConfig(
        weighting="weighted-counts", weighting_params={"n": 3.0}
    )
    assert AdaptiveMSMController(cfg).adapter.n == 3.0


def test_config_rejects_unknown_scheme_with_registry_listing():
    with pytest.raises(ConfigurationError) as excinfo:
        MSMProjectConfig(weighting="magic")
    assert "uniform" in str(excinfo.value)


def test_config_legacy_weighting_warns():
    with pytest.warns(DeprecationWarning):
        cfg = MSMProjectConfig(weighting="even")
    assert cfg.weighting == "uniform"
