"""Tests for statistics and folding observables."""

import numpy as np
import pytest

from repro.analysis.folding import first_passage_time, fraction_folded, half_time
from repro.analysis.stats import (
    autocorrelation_time,
    block_average,
    ensemble_mean_sd,
    running_mean,
    standard_error,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


def test_block_average_iid_matches_naive():
    rng = RandomStream(0)
    x = rng.normal(size=10000)
    mean, err = block_average(x, n_blocks=10)
    assert mean == pytest.approx(0.0, abs=0.05)
    assert err == pytest.approx(standard_error(x), rel=0.6)


def test_block_average_correlated_error_larger():
    """Strongly correlated data must yield a larger block error."""
    rng = RandomStream(1)
    # AR(1) with strong correlation
    n = 20000
    x = np.empty(n)
    x[0] = 0.0
    noise = rng.normal(size=n)
    for i in range(1, n):
        x[i] = 0.99 * x[i - 1] + noise[i]
    _, block_err = block_average(x, n_blocks=10)
    naive = standard_error(x)
    assert block_err > 3 * naive


def test_block_average_validation():
    with pytest.raises(ConfigurationError):
        block_average(np.arange(10.0), n_blocks=1)
    with pytest.raises(ConfigurationError):
        block_average(np.arange(3.0), n_blocks=5)
    with pytest.raises(ConfigurationError):
        block_average(np.zeros((2, 2)))


def test_standard_error_value():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    expected = np.std(x, ddof=1) / 2.0
    assert standard_error(x) == pytest.approx(expected)


def test_standard_error_needs_two():
    with pytest.raises(ConfigurationError):
        standard_error(np.array([1.0]))


def test_running_mean_constant():
    x = np.full(10, 3.0)
    np.testing.assert_allclose(running_mean(x, 4), 3.0)


def test_running_mean_length():
    assert len(running_mean(np.arange(10.0), 3)) == 8


def test_running_mean_invalid_window():
    with pytest.raises(ConfigurationError):
        running_mean(np.arange(5.0), 0)


def test_ensemble_mean_sd():
    curves = np.array([[0.0, 1.0], [2.0, 3.0]])
    mean, sd = ensemble_mean_sd(curves)
    np.testing.assert_allclose(mean, [1.0, 2.0])
    np.testing.assert_allclose(sd, np.std([0, 2], ddof=1))


def test_ensemble_mean_sd_needs_two_members():
    with pytest.raises(ConfigurationError):
        ensemble_mean_sd(np.zeros((1, 5)))


def test_autocorrelation_time_white_noise_small():
    rng = RandomStream(2)
    tau = autocorrelation_time(rng.normal(size=5000))
    assert tau < 2.0


def test_autocorrelation_time_correlated_larger():
    rng = RandomStream(3)
    n = 5000
    x = np.empty(n)
    x[0] = 0.0
    noise = rng.normal(size=n)
    for i in range(1, n):
        x[i] = 0.95 * x[i - 1] + noise[i]
    assert autocorrelation_time(x) > 5.0


def test_autocorrelation_time_too_short():
    with pytest.raises(ConfigurationError):
        autocorrelation_time(np.array([1.0, 2.0]))


# ------------------------------------------------------------ folding


def test_fraction_folded_basic():
    rmsds = np.array([0.1, 0.2, 0.9, 1.5])
    assert fraction_folded(rmsds, threshold=0.35) == pytest.approx(0.5)


def test_fraction_folded_validation():
    with pytest.raises(ConfigurationError):
        fraction_folded(np.array([]), 0.35)
    with pytest.raises(ConfigurationError):
        fraction_folded(np.array([0.1]), -1.0)


def test_first_passage_time_below():
    values = np.array([1.0, 0.8, 0.2, 0.9])
    times = np.array([0.0, 1.0, 2.0, 3.0])
    assert first_passage_time(values, times, threshold=0.35) == 2.0


def test_first_passage_time_above():
    values = np.array([0.0, 0.5, 1.2])
    times = np.array([0.0, 1.0, 2.0])
    assert first_passage_time(values, times, 1.0, below=False) == 2.0


def test_first_passage_never_returns_none():
    values = np.ones(5)
    times = np.arange(5.0)
    assert first_passage_time(values, times, 0.5) is None


def test_first_passage_shape_mismatch():
    with pytest.raises(ConfigurationError):
        first_passage_time(np.ones(3), np.ones(4), 0.5)


def test_half_time_linear_curve():
    times = np.linspace(0, 10, 11)
    curve = times / 10.0  # plateau 1.0 at t=10
    assert half_time(curve, times) == pytest.approx(5.0)


def test_half_time_explicit_plateau():
    times = np.linspace(0, 10, 11)
    curve = times / 10.0
    # half of plateau 0.6 is 0.3, reached at t=3
    assert half_time(curve, times, plateau=0.6) == pytest.approx(3.0)


def test_half_time_exponential_matches_log2():
    """For 1 - exp(-t/tau), t_half = tau ln 2."""
    tau = 4.0
    times = np.linspace(0, 60, 2000)
    curve = 1.0 - np.exp(-times / tau)
    assert half_time(curve, times, plateau=1.0) == pytest.approx(
        tau * np.log(2), rel=1e-3
    )


def test_half_time_never_reached():
    times = np.linspace(0, 5, 6)
    curve = np.zeros(6)
    assert half_time(curve, times, plateau=1.0) is None


def test_half_time_validation():
    with pytest.raises(ConfigurationError):
        half_time(np.array([1.0]), np.array([1.0]))
