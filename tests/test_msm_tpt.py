"""Tests for transition-path theory: committors, fluxes, rates, paths."""

import numpy as np
import pytest

from repro.msm.analysis import stationary_distribution
from repro.msm.tpt import (
    backward_committor,
    dominant_pathways,
    forward_committor,
    rate,
    reactive_flux,
    total_flux,
)
from repro.util.errors import EstimationError


def linear_chain(n=4, p=0.3):
    """Birth-death chain 0 <-> 1 <-> ... <-> n-1."""
    T = np.zeros((n, n))
    for i in range(n):
        if i > 0:
            T[i, i - 1] = p
        if i < n - 1:
            T[i, i + 1] = p
        T[i, i] = 1.0 - T[i].sum()
    return T


def masks(n, a, b):
    source = np.zeros(n, dtype=bool)
    sink = np.zeros(n, dtype=bool)
    source[a] = True
    sink[b] = True
    return source, sink


def test_forward_committor_boundary_values():
    T = linear_chain(5)
    source, sink = masks(5, 0, 4)
    q = forward_committor(T, source, sink)
    assert q[0] == 0.0
    assert q[4] == 1.0
    assert np.all(np.diff(q) > 0)  # monotone along the chain


def test_forward_committor_symmetric_random_walk_linear():
    """For an unbiased walk the committor is linear in position."""
    n = 6
    T = linear_chain(n)
    source, sink = masks(n, 0, n - 1)
    q = forward_committor(T, source, sink)
    np.testing.assert_allclose(q, np.linspace(0, 1, n), atol=1e-10)


def test_backward_committor_complements_forward_for_reversible():
    """For a reversible chain, q- = 1 - q+."""
    T = linear_chain(5)
    source, sink = masks(5, 0, 4)
    qf = forward_committor(T, source, sink)
    qb = backward_committor(T, source, sink)
    np.testing.assert_allclose(qb, 1.0 - qf, atol=1e-8)


def test_committor_validation():
    T = linear_chain(4)
    with pytest.raises(EstimationError):
        forward_committor(T, np.zeros(4, dtype=bool), np.ones(4, dtype=bool))
    overlapping = np.array([True, False, False, True])
    with pytest.raises(EstimationError):
        forward_committor(T, overlapping, overlapping)


def test_reactive_flux_nonnegative_and_conserved():
    T = linear_chain(5)
    source, sink = masks(5, 0, 4)
    net = reactive_flux(T, source, sink)
    assert np.all(net >= 0)
    # flux out of A equals flux into B
    out_A = net[0, :].sum() - net[:, 0].sum()
    into_B = net[:, 4].sum() - net[4, :].sum()
    assert out_A == pytest.approx(into_B, abs=1e-12)


def test_total_flux_positive():
    T = linear_chain(5)
    source, sink = masks(5, 0, 4)
    assert total_flux(T, source, sink) > 0


def test_rate_two_state_analytic():
    """For a 2-state chain the A->B rate equals p_AB / lag."""
    p, q = 0.1, 0.25
    T = np.array([[1 - p, p], [q, 1 - q]])
    source, sink = masks(2, 0, 1)
    k = rate(T, source, sink, lag_time=2.0)
    assert k == pytest.approx(p / 2.0, rel=1e-8)


def test_rate_validation():
    T = linear_chain(3)
    source, sink = masks(3, 0, 2)
    with pytest.raises(EstimationError):
        rate(T, source, sink, lag_time=0.0)


def test_dominant_pathways_chain_is_the_chain():
    n = 5
    T = linear_chain(n)
    source, sink = masks(n, 0, n - 1)
    paths = dominant_pathways(T, source, sink, n_paths=2)
    assert paths, "no pathway found"
    top_path, flux = paths[0]
    assert top_path == [0, 1, 2, 3, 4]
    assert flux > 0


def test_dominant_pathways_two_channel():
    """Two parallel channels: the wider one dominates."""
    # states: 0=A, 1=fast channel, 2=slow channel, 3=B
    T = np.array(
        [
            [0.5, 0.4, 0.1, 0.0],
            [0.2, 0.5, 0.0, 0.3],
            [0.2, 0.0, 0.7, 0.1],
            [0.0, 0.3, 0.1, 0.6],
        ]
    )
    source, sink = masks(4, 0, 3)
    paths = dominant_pathways(T, source, sink, n_paths=3)
    assert paths[0][0] == [0, 1, 3]  # the wide channel first
    fluxes = [f for _, f in paths]
    assert fluxes == sorted(fluxes, reverse=True)


def test_dominant_pathways_flux_decomposition_bounded():
    T = linear_chain(6)
    source, sink = masks(6, 0, 5)
    F = total_flux(T, source, sink)
    paths = dominant_pathways(T, source, sink, n_paths=10)
    assert sum(f for _, f in paths) <= F + 1e-12


def test_dominant_pathways_validation():
    T = linear_chain(3)
    source, sink = masks(3, 0, 2)
    with pytest.raises(EstimationError):
        dominant_pathways(T, source, sink, n_paths=0)


def test_tpt_on_estimated_msm():
    """End-to-end: TPT on a transition matrix estimated from data."""
    rng = np.random.default_rng(0)
    T_true = linear_chain(4, p=0.25)
    states = [0]
    for _ in range(40000):
        states.append(rng.choice(4, p=T_true[states[-1]]))
    from repro.msm import MarkovStateModel

    msm = MarkovStateModel(lag=1).fit([np.array(states)])
    source, sink = masks(4, 0, 3)
    k_est = rate(msm.transition_matrix, source, sink)
    k_true = rate(T_true, source, sink)
    assert k_est == pytest.approx(k_true, rel=0.25)
