"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import AllOf, AnyOf, Environment, Interrupt
from repro.util.errors import ReproError


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(3.5)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"


def test_run_until_time_stops_early():
    env = Environment()
    seen = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(proc(env))
    env.run(until=4.5)
    assert seen == [1, 2, 3, 4]
    assert env.now == pytest.approx(4.5)


def test_run_until_past_time_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    env.process(proc(env))
    env.run()
    with pytest.raises(ValueError):
        env.run(until=env.now - 1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    for delay, tag in [(5, "c"), (1, "a"), (3, "b")]:
        env.process(waiter(env, delay, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(2)
        order.append(tag)

    for tag in range(5):
        env.process(waiter(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_manual_event_succeed():
    env = Environment()
    results = []

    def waiter(env, ev):
        value = yield ev
        results.append(value)

    ev = env.event()

    def trigger(env, ev):
        yield env.timeout(2)
        ev.succeed("payload")

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert results == ["payload"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(ReproError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()

    def trigger(env, ev):
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("explode")

    env.process(bad(env))
    with pytest.raises(ValueError, match="explode"):
        env.run()


def test_yield_already_processed_event_resumes():
    env = Environment()
    trace = []

    def proc(env, ev):
        yield env.timeout(5)  # ev fired at t=1, long before
        value = yield ev
        trace.append((env.now, value))

    ev = env.event()

    def early(env, ev):
        yield env.timeout(1)
        ev.succeed("old")

    env.process(proc(env, ev))
    env.process(early(env, ev))
    env.run()
    assert trace == [(5.0, "old")]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(TypeError):
        env.run(until=p)


def test_allof_waits_for_all():
    env = Environment()
    done_at = []

    def proc(env):
        yield AllOf(env, [env.timeout(1), env.timeout(4), env.timeout(2)])
        done_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert done_at == [4.0]


def test_anyof_fires_on_first():
    env = Environment()
    done_at = []

    def proc(env):
        yield AnyOf(env, [env.timeout(3), env.timeout(1)])
        done_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert done_at == [1.0]


def test_and_or_operators():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(1) & env.timeout(2)
        times.append(env.now)
        yield env.timeout(10) | env.timeout(3)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [2.0, 5.0]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            causes.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(2)
        target.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert causes == [(2.0, "preempted")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(ReproError):
        p.interrupt()


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_run_until_event_value():
    env = Environment()
    ev = env.event()

    def trigger(env, ev):
        yield env.timeout(7)
        ev.succeed(123)

    env.process(trigger(env, ev))
    assert env.run(until=ev) == 123
    assert env.now == pytest.approx(7)


def test_run_until_event_never_fires_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(ReproError):
        env.run(until=ev)


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


@settings(max_examples=40)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_property_completion_order_matches_sorted_delays(delays):
    """Processes complete in non-decreasing delay order (stable on ties)."""
    env = Environment()
    completions = []

    def proc(env, i, d):
        yield env.timeout(d)
        completions.append((env.now, i))

    for i, d in enumerate(delays):
        env.process(proc(env, i, d))
    env.run()
    times = [t for t, _ in completions]
    assert times == sorted(times)
    # ties keep creation order (deterministic kernel)
    for (t1, i1), (t2, i2) in zip(completions, completions[1:]):
        if t1 == t2:
            assert i1 < i2
