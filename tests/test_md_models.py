"""Tests for the model builders (villin bundle, polymers, surfaces)."""

import numpy as np
import pytest
from scipy.spatial.distance import pdist

from repro.md.forcefield.base import numerical_forces
from repro.md.models.doublewell import (
    DoubleWellForce,
    TiltedDoubleWellForce,
    double_well_initial_state,
    double_well_system,
)
from repro.md.models.muller_brown import (
    MINIMA,
    MullerBrownForce,
    muller_brown_initial_state,
    muller_brown_system,
)
from repro.md.models.polymer import (
    CA_SPACING,
    build_extended_chain,
    build_helix,
    build_loop,
    chain_topology_from_native,
    native_contact_pairs,
)
from repro.md.models.villin import build_native_bundle, build_villin
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


# ---------------------------------------------------------------- helix


def test_helix_consecutive_spacing_is_ca_like():
    helix = build_helix(12, np.zeros(3), np.array([0, 0, 1.0]))
    spacing = np.linalg.norm(np.diff(helix, axis=0), axis=1)
    # ideal C-alpha helix spacing ~0.38 nm
    assert np.all(np.abs(spacing - CA_SPACING) < 0.05)


def test_helix_rise_along_axis():
    helix = build_helix(10, np.zeros(3), np.array([0, 0, 1.0]))
    z = helix[:, 2]
    np.testing.assert_allclose(np.diff(z), 0.15, atol=1e-12)


def test_helix_arbitrary_axis():
    axis = np.array([1.0, 1.0, 0.0])
    helix = build_helix(8, np.array([1.0, 2.0, 3.0]), axis)
    proj = (helix - helix[0]) @ (axis / np.linalg.norm(axis))
    np.testing.assert_allclose(np.diff(proj), 0.15, atol=1e-12)


def test_helix_invalid_args():
    with pytest.raises(ConfigurationError):
        build_helix(0, np.zeros(3), np.array([0, 0, 1.0]))
    with pytest.raises(ConfigurationError):
        build_helix(5, np.zeros(3), np.zeros(3))


# ---------------------------------------------------------------- loop


def test_loop_segments_near_ideal_spacing_close_anchors():
    start = np.zeros(3)
    end = np.array([0.5, 0.0, 0.0])  # closer than 3 * 0.38
    loop = build_loop(start, end, 2)
    path = np.vstack([start, loop, end])
    seg = np.linalg.norm(np.diff(path, axis=0), axis=1)
    assert np.all(seg > 0.25)
    assert np.all(seg < 0.55)


def test_loop_far_anchors_straight():
    start = np.zeros(3)
    end = np.array([2.0, 0.0, 0.0])
    loop = build_loop(start, end, 3)
    # points lie on the straight line
    assert np.allclose(loop[:, 1:], 0.0, atol=1e-9)


def test_loop_invalid_count():
    with pytest.raises(ConfigurationError):
        build_loop(np.zeros(3), np.ones(3), 0)


# ----------------------------------------------------------- extended chain


def test_extended_chain_spacing():
    chain = build_extended_chain(20)
    spacing = np.linalg.norm(np.diff(chain, axis=0), axis=1)
    np.testing.assert_allclose(spacing, CA_SPACING, atol=1e-9)


def test_extended_chain_noise_distinct():
    rngs = RandomStream(0).spawn(2)
    a = build_extended_chain(15, rng=rngs[0])
    b = build_extended_chain(15, rng=rngs[1])
    assert not np.allclose(a, b)


def test_extended_chain_too_short_rejected():
    with pytest.raises(ConfigurationError):
        build_extended_chain(1)


# ------------------------------------------------------------- topology


def test_chain_topology_counts():
    native = build_extended_chain(10)
    topo = chain_topology_from_native(native)
    assert topo.n_atoms == 10
    assert len(topo.bonds) == 9
    assert len(topo.angles) == 8
    assert len(topo.dihedrals) == 7


def test_chain_topology_equilibrium_from_native():
    native = build_native_bundle((5, 5, 5), (2, 2))
    topo = chain_topology_from_native(native)
    d = np.linalg.norm(native[topo.bonds[:, 1]] - native[topo.bonds[:, 0]], axis=1)
    np.testing.assert_allclose(topo.bond_r0, d)


def test_chain_topology_minimum_size():
    with pytest.raises(ConfigurationError):
        chain_topology_from_native(np.zeros((1, 3)))


def test_native_contact_pairs_sequence_separation():
    native = build_native_bundle()
    pairs, dists = native_contact_pairs(native, cutoff=1.1, min_separation=4)
    assert np.all(pairs[:, 1] - pairs[:, 0] >= 4)
    assert np.all(dists < 1.1)


# ---------------------------------------------------------------- bundle


def test_bundle_has_reasonable_geometry():
    native = build_native_bundle((10, 11, 10), (2, 2))
    assert native.shape == (35, 3)
    bond_lengths = np.linalg.norm(np.diff(native, axis=0), axis=1)
    assert bond_lengths.min() > 0.25
    assert bond_lengths.max() < 0.5
    assert pdist(native).min() > 0.25  # no overlapping beads


def test_bundle_is_compact():
    """Bundle radius of gyration is far below the extended chain's."""
    native = build_native_bundle()
    extended = build_extended_chain(len(native))

    def rg(x):
        c = x - x.mean(axis=0)
        return np.sqrt((c**2).sum(axis=1).mean())

    assert rg(native) < 0.4 * rg(extended)


def test_bundle_invalid_shape():
    with pytest.raises(ConfigurationError):
        build_native_bundle((5, 5), (2,))


# ---------------------------------------------------------------- villin


def test_villin_full_has_35_residues():
    model = build_villin("full")
    assert model.n_residues == 35  # matches the real villin headpiece


def test_villin_fast_is_smaller():
    assert build_villin("fast").n_residues == 19


def test_villin_native_is_energy_minimum():
    model = build_villin("fast")
    e_native, forces = model.system.energy_forces(model.native)
    # tiny residual from the excluded-volume wall's cutoff tail
    assert np.abs(forces).max() < 1e-3
    rng = RandomStream(0)
    for _ in range(5):
        perturbed = model.native + rng.normal(scale=0.03, size=model.native.shape)
        assert model.system.potential_energy(perturbed) > e_native


def test_villin_native_energy_is_minus_eps_times_contacts():
    model = build_villin("fast", contact_epsilon=2.0)
    expected = -2.0 * len(model.go_force.pairs)
    assert model.system.potential_energy(model.native) == pytest.approx(expected)


def test_villin_extended_state_unfolded():
    model = build_villin("fast")
    state = model.extended_state(rng=0)
    assert model.fraction_native(state.positions) < 0.1


def test_villin_distinct_unfolded_starts():
    model = build_villin("fast")
    a = model.extended_state(rng=1).positions
    b = model.extended_state(rng=2).positions
    assert not np.allclose(a, b)


def test_villin_unknown_variant():
    with pytest.raises(ConfigurationError):
        build_villin("giant")


# ------------------------------------------------------------ muller-brown


def test_muller_brown_minima_are_local_minima():
    force = MullerBrownForce(scale=1.0)
    for minimum in MINIMA:
        _, f = force.energy_forces(minimum[None, :])
        assert np.abs(f).max() < 35.0  # near-stationary at tabulated minima
        e0, _ = force.energy_forces(minimum[None, :])
        rng = RandomStream(4)
        for _ in range(4):
            e, _ = force.energy_forces(
                minimum[None, :] + rng.normal(scale=0.12, size=(1, 2))
            )
            assert e > e0 - 10.0


def test_muller_brown_numerical_gradient():
    rng = RandomStream(5)
    force = MullerBrownForce(scale=0.05)
    pos = rng.uniform(-1.0, 1.0, size=(1, 2))
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-5, atol=1e-7)


def test_muller_brown_grid_matches_pointwise():
    force = MullerBrownForce(scale=0.05)
    xs = np.linspace(-1.5, 1.0, 5)
    ys = np.linspace(-0.2, 2.0, 5)
    X, Y = np.meshgrid(xs, ys)
    grid = force.energy_grid(X, Y)
    e_pt, _ = force.energy_forces(np.array([[X[2, 3], Y[2, 3]]]))
    assert grid[2, 3] == pytest.approx(e_pt)


def test_muller_brown_system_is_2d():
    system = muller_brown_system()
    assert system.dim == 2
    state = muller_brown_initial_state(minimum=0, rng=0)
    assert state.positions.shape == (1, 2)


# ------------------------------------------------------------- double well


def test_double_well_minima():
    force = DoubleWellForce(barrier=3.0, width=0.7)
    for x in force.minima():
        e, f = force.energy_forces(np.array([[x]]))
        assert e == pytest.approx(0.0)
        np.testing.assert_allclose(f, 0.0, atol=1e-12)
    e_top, _ = force.energy_forces(np.array([[0.0]]))
    assert e_top == pytest.approx(3.0)


def test_double_well_numerical_gradient():
    force = DoubleWellForce(barrier=2.0, width=0.5)
    pos = np.array([[0.3]])
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-6)


def test_tilted_double_well_asymmetric():
    force = TiltedDoubleWellForce(barrier=2.0, width=1.0, slope=0.5)
    e_left, _ = force.energy_forces(np.array([[-1.0]]))
    e_right, _ = force.energy_forces(np.array([[1.0]]))
    assert e_left < e_right


def test_tilted_double_well_gradient():
    force = TiltedDoubleWellForce(barrier=2.0, width=1.0, slope=0.5)
    pos = np.array([[0.4]])
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-6)


def test_double_well_system_factory():
    system = double_well_system(slope=0.3)
    assert isinstance(system.forces[0], TiltedDoubleWellForce)
    state = double_well_initial_state(side=1, rng=0)
    assert state.positions[0, 0] > 0
