"""Tests for the pre-built overlay topologies."""

import pytest

from repro.core import Project, ProjectRunner
from repro.net.topology import cluster, figure1, workstation
from repro.util.errors import ConfigurationError

from tests.test_core_controllers import OneShotController


def test_workstation_shape():
    d = workstation(n_workers=3)
    assert len(d.workers) == 3
    assert d.project_server.name == "server"
    assert len(d.network.links()) == 3
    # workers announced
    assert set(d.project_server.worker_caps) == {"w0", "w1", "w2"}


def test_workstation_validation():
    with pytest.raises(ConfigurationError):
        workstation(n_workers=0)


def test_workstation_runs_project():
    d = workstation(n_workers=2)
    runner = ProjectRunner(d.network, d.project_server, d.workers)
    project = Project("p")
    runner.submit(project, OneShotController(n_commands=2))
    runner.run()
    assert project.completed == 2


def test_cluster_has_relay_and_shared_fs():
    d = cluster(n_nodes=2)
    assert d.relay_servers[0].name == "head-node"
    assert d.network.share_filesystem("head-node", "node0")
    assert not d.network.share_filesystem("project-server", "node0")


def test_cluster_runs_project_through_relay():
    d = cluster(n_nodes=2)
    runner = ProjectRunner(d.network, d.project_server, d.workers)
    project = Project("p")
    runner.submit(project, OneShotController(n_commands=2, n_steps=400))
    runner.run()
    assert project.completed == 2
    # shared filesystem kept trajectory bytes off the head-node links
    assert d.network.bytes_saved_by_shared_fs > 0


def test_figure1_layout():
    d = figure1()
    names = {s.name for s in d.project_servers}
    assert names == {"server-villin", "server-titin"}
    assert len(d.relay_servers) == 4  # gateway + 3 heads
    assert len(d.workers) == 6
    # remote cluster link is the slow one
    slow = d.network.link("gateway", "cluster2-head")
    fast = d.network.link("gateway", "cluster0-head")
    assert slow.latency > fast.latency


def test_figure1_both_project_servers_usable():
    d = figure1()
    runner_a = ProjectRunner(d.network, d.project_servers[0], d.workers)
    runner_b = ProjectRunner(d.network, d.project_servers[1], d.workers)
    pa, pb = Project("msm_villin"), Project("free_energy")
    runner_a.submit(pa, OneShotController(n_commands=2, n_steps=300))
    runner_b.submit(pb, OneShotController(n_commands=2, n_steps=300))
    runner_a.run()
    runner_b.run()
    assert pa.completed == 2
    assert pb.completed == 2
