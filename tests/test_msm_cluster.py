"""Tests for clustering and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rmsd import rmsd
from repro.msm.cluster import KCentersClustering, KMedoidsClustering
from repro.msm.metrics import EuclideanMetric, RMSDMetric
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


def three_blobs(n_per=40, seed=0, spread=0.2):
    rng = RandomStream(seed)
    centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
    pts = np.concatenate(
        [c + rng.normal(scale=spread, size=(n_per, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(3), n_per)
    return pts, labels


def test_euclidean_metric_values():
    m = EuclideanMetric()
    frames = np.array([[0.0, 0.0], [3.0, 4.0]])
    d = m.to_target(frames, np.array([0.0, 0.0]))
    np.testing.assert_allclose(d, [0.0, 5.0])


def test_euclidean_metric_shape_mismatch():
    with pytest.raises(ConfigurationError):
        EuclideanMetric().to_target(np.zeros((3, 2)), np.zeros(3))


def test_rmsd_metric_matches_rmsd_function():
    rng = RandomStream(1)
    frames = rng.normal(size=(4, 6, 3))
    target = rng.normal(size=(6, 3))
    d = RMSDMetric().to_target(frames, target)
    for k in range(4):
        assert d[k] == pytest.approx(rmsd(frames[k], target), abs=1e-10)


def test_rmsd_metric_shape_validation():
    with pytest.raises(ConfigurationError):
        RMSDMetric().to_target(np.zeros((3, 2)), np.zeros((2, 3)))


def test_kcenters_separates_blobs():
    pts, labels = three_blobs()
    result = KCentersClustering(n_clusters=3, seed=2).fit(pts)
    assert result.n_clusters == 3
    # every true blob maps to exactly one cluster
    for blob in range(3):
        assigned = result.assignments[labels == blob]
        assert len(set(assigned.tolist())) == 1
    assert result.cover_radius < 1.5


def test_kcenters_radius_cutoff_mode():
    pts, _ = three_blobs()
    result = KCentersClustering(radius_cutoff=1.0, seed=0).fit(pts)
    assert result.cover_radius <= 1.0
    assert result.n_clusters >= 3


def test_kcenters_more_clusters_than_frames():
    pts = np.array([[0.0, 0.0], [1.0, 1.0]])
    result = KCentersClustering(n_clusters=10, seed=0).fit(pts)
    assert result.n_clusters <= 2


def test_kcenters_deterministic_given_seed():
    pts, _ = three_blobs()
    a = KCentersClustering(n_clusters=5, seed=3).fit(pts)
    b = KCentersClustering(n_clusters=5, seed=3).fit(pts)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    np.testing.assert_array_equal(a.center_indices, b.center_indices)


def test_kcenters_empty_input_rejected():
    with pytest.raises(ConfigurationError):
        KCentersClustering(n_clusters=2).fit(np.zeros((0, 2)))


def test_kcenters_requires_some_criterion():
    with pytest.raises(ConfigurationError):
        KCentersClustering()


def test_kcenters_populations_sum():
    pts, _ = three_blobs()
    result = KCentersClustering(n_clusters=4, seed=1).fit(pts)
    assert result.populations().sum() == len(pts)


def test_cluster_result_assign_new_frames():
    pts, _ = three_blobs()
    result = KCentersClustering(n_clusters=3, seed=2).fit(pts)
    new = np.array([[0.1, -0.1], [5.1, 0.2]])
    labels = result.assign(new)
    # both near-centre points must land in the clusters holding (0,0)/(5,0)
    assert labels[0] == result.assignments[0]
    assert labels[1] == result.assignments[40]


def test_kcenters_with_rmsd_metric_on_conformations():
    model_frames = RandomStream(5).normal(size=(30, 8, 3))
    # append rotated copies of frame 0 — they must cluster with frame 0
    rng = RandomStream(6)
    q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    rotated = model_frames[0] @ q.T + 2.0
    frames = np.concatenate([model_frames, rotated[None]])
    result = KCentersClustering(
        n_clusters=10, metric=RMSDMetric(), seed=0
    ).fit(frames)
    assert result.assignments[-1] == result.assignments[0]


def test_kmedoids_refines_centers_to_blob_cores():
    pts, labels = three_blobs(seed=4)
    result = KMedoidsClustering(n_clusters=3, seed=1).fit(pts)
    assert result.n_clusters == 3
    for blob in range(3):
        assigned = result.assignments[labels == blob]
        assert len(set(assigned.tolist())) == 1
    # medoids are real data points
    for c_idx in result.center_indices:
        assert 0 <= c_idx < len(pts)


def test_kmedoids_mean_distance_not_worse_than_kcenters():
    pts, _ = three_blobs(seed=7, spread=0.6)
    kc = KCentersClustering(n_clusters=3, seed=2).fit(pts)
    km = KMedoidsClustering(n_clusters=3, seed=2).fit(pts)
    assert km.distances.mean() <= kc.distances.mean() + 1e-9


def test_kmedoids_invalid_params():
    with pytest.raises(ConfigurationError):
        KMedoidsClustering(n_clusters=0)
    with pytest.raises(ConfigurationError):
        KMedoidsClustering(n_clusters=2, max_iter=0)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=12, max_value=60),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_kcenters_cover_radius_shrinks(k, n, seed):
    """More centres never increase the cover radius; assignment is nearest."""
    rng = RandomStream(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    r_few = KCentersClustering(n_clusters=k, seed=0).fit(pts)
    r_more = KCentersClustering(n_clusters=k + 2, seed=0).fit(pts)
    assert r_more.cover_radius <= r_few.cover_radius + 1e-12
    # each frame's recorded distance equals distance to its centre and is
    # not larger than to any other centre
    metric = EuclideanMetric()
    for c in range(r_few.n_clusters):
        d = metric.to_target(pts, r_few.centers[c])
        assert np.all(r_few.distances <= d + 1e-9)


# ------------------------------------------------------- regular spatial


def test_regular_spatial_centers_min_separation():
    from repro.msm.cluster import RegularSpatialClustering

    pts, _ = three_blobs(seed=9)
    result = RegularSpatialClustering(dmin=1.0).fit(pts)
    centers = result.centers
    for a in range(len(centers)):
        for b in range(a + 1, len(centers)):
            assert np.linalg.norm(centers[a] - centers[b]) > 1.0


def test_regular_spatial_adapts_cluster_count():
    """A larger sampled volume yields more centres at fixed dmin."""
    from repro.msm.cluster import RegularSpatialClustering

    rng = RandomStream(10)
    small = rng.uniform(0, 1.0, size=(300, 2))
    large = rng.uniform(0, 4.0, size=(300, 2))
    k_small = RegularSpatialClustering(dmin=0.4).fit(small).n_clusters
    k_large = RegularSpatialClustering(dmin=0.4).fit(large).n_clusters
    assert k_large > k_small


def test_regular_spatial_separates_blobs():
    from repro.msm.cluster import RegularSpatialClustering

    pts, labels = three_blobs(seed=11)
    result = RegularSpatialClustering(dmin=2.0).fit(pts)
    assert result.n_clusters == 3
    for blob in range(3):
        assigned = result.assignments[labels == blob]
        assert len(set(assigned.tolist())) == 1


def test_regular_spatial_max_centers_cap():
    from repro.msm.cluster import RegularSpatialClustering

    rng = RandomStream(12)
    pts = rng.uniform(0, 10.0, size=(500, 2))
    result = RegularSpatialClustering(dmin=0.1, max_centers=5).fit(pts)
    assert result.n_clusters == 5


def test_regular_spatial_validation():
    from repro.msm.cluster import RegularSpatialClustering
    from repro.util.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        RegularSpatialClustering(dmin=0.0)
    with pytest.raises(ConfigurationError):
        RegularSpatialClustering(dmin=1.0, max_centers=0)
    with pytest.raises(ConfigurationError):
        RegularSpatialClustering(dmin=1.0).fit(np.zeros((0, 2)))
