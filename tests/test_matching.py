"""Workload construction edge cases (repro.server.matching)."""

import pytest

from repro.core.command import Command
from repro.server.matching import WorkerCapabilities, build_workload, can_run
from repro.server.queue import CommandQueue
from repro.util.errors import SchedulingError


def _caps(cores, executables=("mdrun",), worker="w0"):
    return WorkerCapabilities(
        worker=worker, platform="smp", cores=cores,
        executables=list(executables),
    )


def _cmd(command_id, min_cores=1, preferred_cores=1, priority=0,
         executable="mdrun"):
    return Command(
        command_id=command_id,
        project_id="p",
        executable=executable,
        min_cores=min_cores,
        preferred_cores=preferred_cores,
        priority=priority,
    )


def test_zero_core_capabilities_are_rejected():
    with pytest.raises(SchedulingError):
        _caps(cores=0)
    with pytest.raises(SchedulingError):
        _caps(cores=-2)


def test_preferred_below_min_cores_assigns_min():
    # a command may declare preferred < min (a misconfigured controller
    # or a deliberately narrow sweet spot); the floor always wins
    queue = CommandQueue()
    queue.push(_cmd("c0", min_cores=4, preferred_cores=2))
    workload = build_workload(queue, _caps(cores=8))
    assert workload == [(workload[0][0], 4)]
    assert workload[0][0].command_id == "c0"


def test_min_cores_never_overcommits_worker():
    # free cores below min_cores filters the command out entirely
    queue = CommandQueue()
    queue.push(_cmd("big", min_cores=4, preferred_cores=4))
    assert build_workload(queue, _caps(cores=2)) == []
    assert len(queue) == 1  # still queued for a bigger worker


def test_priority_order_under_partial_packing():
    # the high-priority wide command takes its preferred share first;
    # the low-priority narrow ones fill the remainder in order
    queue = CommandQueue()
    queue.push(_cmd("late", min_cores=1, preferred_cores=2, priority=5))
    queue.push(_cmd("wide", min_cores=2, preferred_cores=3, priority=0))
    queue.push(_cmd("mid", min_cores=1, preferred_cores=1, priority=1))
    workload = build_workload(queue, _caps(cores=4))
    ids = [c.command_id for c, _ in workload]
    cores = [k for _, k in workload]
    assert ids == ["wide", "mid"]
    assert cores == [3, 1]
    # the worker is full; the lowest-priority command waits
    assert [c.command_id for c in queue.commands()] == ["late"]


def test_preferred_degrades_toward_min_as_worker_fills():
    queue = CommandQueue()
    queue.push(_cmd("a", min_cores=1, preferred_cores=4, priority=0))
    queue.push(_cmd("b", min_cores=1, preferred_cores=4, priority=1))
    workload = build_workload(queue, _caps(cores=6))
    assert [(c.command_id, k) for c, k in workload] == [("a", 4), ("b", 2)]


def test_executable_mismatch_is_skipped_not_popped():
    queue = CommandQueue()
    queue.push(_cmd("other", executable="exotic"))
    queue.push(_cmd("ok"))
    workload = build_workload(queue, _caps(cores=1))
    assert [c.command_id for c, _ in workload] == ["ok"]
    assert [c.command_id for c in queue.commands()] == ["other"]
    assert not can_run(_cmd("x", executable="exotic"), _caps(cores=8))


def test_max_commands_caps_workload_regardless_of_cores():
    # probation sizing: a many-core worker still gets at most the cap
    queue = CommandQueue()
    for k in range(5):
        queue.push(_cmd(f"c{k}", priority=k))
    workload = build_workload(queue, _caps(cores=16), max_commands=2)
    assert [c.command_id for c, _ in workload] == ["c0", "c1"]
    assert len(queue) == 3


def test_max_commands_zero_means_no_workload():
    queue = CommandQueue()
    queue.push(_cmd("c0"))
    assert build_workload(queue, _caps(cores=4), max_commands=0) == []
    assert len(queue) == 1
