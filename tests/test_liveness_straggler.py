"""Straggler detection and speculative re-execution, end to end.

The canned scenario throttles one worker to 10% speed while it keeps
heartbeating: the server must notice the overdue lease (the worker is
alive, so this is a straggler, not a death), launch a speculative copy
from the last checkpoint, accept the first result, and journal the
straggler's late duplicate as the race's loser -- exactly once.
"""

import pytest

from repro.core.events import EventKind
from repro.testing import Invariants, run_swarm_with_straggler


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_straggler_completes_via_speculation_in_bounded_time(seed):
    out = run_swarm_with_straggler(seed=seed)
    runner, server = out.runner, out.server

    # the project finished in bounded virtual time: a handful of ticks,
    # not the ~10x stretch the straggler alone would have needed
    assert out.completed_at <= 20 * 90.0
    assert len(out.controller.finished) == 3

    # the slow worker was flagged as a straggler (not dead), and a
    # speculative copy raced it home
    events = runner.events
    detected = events.filter(kind=EventKind.STRAGGLER_DETECTED)
    assert [e.details.get("worker") for e in detected] == ["w0"]
    started = events.filter(kind=EventKind.SPECULATION_STARTED)
    assert len(started) == 1
    assert started[0].details.get("worker") == "w0"
    assert not any(
        e.details.get("worker") == "w0"
        for e in events.filter(kind=EventKind.WORKER_DEAD)
    )

    assert server.stragglers_detected == 1
    assert server.speculations_started == 1
    assert server.speculations_won == 1

    Invariants(runner).assert_ok()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_losing_copy_is_journaled_and_dropped_exactly_once(seed):
    out = run_swarm_with_straggler(seed=seed)
    runner, server = out.runner, out.server
    events = runner.events

    # the straggler's late result arrived after the drain loop let it
    # finish; it must be recognized as the race's loser exactly once
    lost = events.filter(kind=EventKind.SPECULATION_LOST)
    assert len(lost) == 1
    assert lost[0].details.get("worker") == "w0"
    assert server.speculations_lost == 1

    # ...and exactly-once held: the speculated command completed once
    speculated_id = lost[0].details.get("command")
    completions = [
        e
        for e in events.filter(kind=EventKind.COMMAND_COMPLETED)
        if e.details.get("command") == speculated_id
    ]
    assert len(completions) == 1


def test_straggler_scenario_is_deterministic():
    a = run_swarm_with_straggler(seed=2)
    b = run_swarm_with_straggler(seed=2)
    assert a.transcript == b.transcript
    assert a.completed_at == b.completed_at
    assert a.drain_cycles == b.drain_cycles


def test_checkpoints_evicted_once_commands_complete():
    # satellite regression: WorkerRecord.checkpoints must not leak --
    # finished commands (including the speculated one, reported by two
    # workers) leave no checkpoint behind on any worker record
    out = run_swarm_with_straggler(seed=0)
    server = out.server
    finished_ids = [command_id for command_id, _ in out.controller.finished]
    assert finished_ids
    for worker in server.monitor.workers():
        for command_id in finished_ids:
            key = f"swarm::{command_id}"
            assert server.monitor.checkpoint_for(worker, key) is None
