"""Distributed tracing across the overlay.

The headline property: one trace id follows a command from the
server's issue span through the worker's execution to the result
landing back at the server and the controller folding it in — the
context crosses the server/worker boundary in message headers and
command payloads, so the spans stitch together without any shared
state beyond the deployment's tracer.
"""

import json

import pytest

from repro.obs import SpanContext, Tracer, to_chrome_trace, trace_id_for, validate_chrome_trace
from repro.testing import run_swarm_under_faults, run_swarm_with_straggler


def _spans_by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


def test_tracer_basics_and_context_propagation():
    tracer = Tracer()
    root = tracer.begin("issue", 0.0, "t" * 16, component="srv")
    assert not root.finished and root.duration == 0.0
    tracer.end(root, 5.0, outcome="ok")
    assert root.finished and root.duration == 5.0
    assert root.attributes["outcome"] == "ok"
    # ending before the start clamps (virtual clocks never run backward)
    clamped = tracer.record("x", 10.0, 9.0, "t" * 16, component="srv")
    assert clamped.end == clamped.start

    headers = root.context().inject({})
    ctx = SpanContext.extract(headers)
    assert ctx.trace_id == root.trace_id
    assert ctx.span_id == root.span_id
    assert SpanContext.extract({}) is None


def test_trace_ids_are_deterministic():
    assert trace_id_for("swarm", "cmd0") == trace_id_for("swarm", "cmd0")
    assert trace_id_for("swarm", "cmd0") != trace_id_for("swarm", "cmd1")
    assert len(trace_id_for("p", "c")) == 16


def test_end_to_end_command_trace_spans_server_and_worker():
    out = run_swarm_under_faults(seed=0)
    tracer = out.obs.tracer
    worker_names = {w.name for w in out.workers}

    for k in range(3):
        trace_id = trace_id_for("swarm", f"cmd{k}")
        spans = _spans_by_name(tracer.for_trace(trace_id))
        # the full arc, all sharing the command's trace id
        for name in (
            "command.issue",
            "queue.wait",
            "worker.execute",
            "result.transfer",
            "result.apply",
            "controller.update",
        ):
            assert name in spans, f"cmd{k} missing {name} span"
        issue = spans["command.issue"][0]
        execute = spans["worker.execute"][0]
        assert issue.component == "srv"
        assert execute.component in worker_names
        # the worker's span hangs off the server's issue span: the
        # context crossed the boundary inside the command payload
        assert execute.parent_id == issue.span_id
        assert execute.attributes.get("completed") is True
        # the result transfer was stitched from the worker's headers
        transfer = spans["result.transfer"][0]
        assert transfer.parent_id == execute.span_id
        # causality on the virtual clock
        assert issue.start <= execute.start <= execute.end
        assert spans["controller.update"][0].start >= execute.end


def test_speculation_shares_the_trace_across_workers():
    out = run_swarm_with_straggler(seed=0)
    tracer = out.obs.tracer
    trace_id = trace_id_for("swarm", "cmd0")
    executes = [
        s for s in tracer.for_trace(trace_id) if s.name == "worker.execute"
    ]
    # the straggler's doomed copy and the speculative winner are
    # chapters of the same trace, told by different components
    assert len(executes) >= 2
    assert len({s.component for s in executes}) >= 2


def test_chrome_trace_export_validates_and_is_deterministic():
    first = to_chrome_trace(run_swarm_under_faults(seed=1).obs.tracer)
    assert validate_chrome_trace(first) == []
    assert validate_chrome_trace(json.dumps(first)) == []
    second = to_chrome_trace(run_swarm_under_faults(seed=1).obs.tracer)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    names = {e["name"] for e in first["traceEvents"]}
    assert {"process_name", "thread_name", "worker.execute"} <= names
    threads = {
        e["args"]["name"]
        for e in first["traceEvents"]
        if e["name"] == "thread_name"
    }
    assert {"srv", "w0", "w1", "controller"} <= threads


def test_validator_flags_malformed_traces():
    assert validate_chrome_trace("not json")
    assert validate_chrome_trace({"nope": []})
    bad_order = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
        ]
    }
    assert any("before previous" in p for p in validate_chrome_trace(bad_order))
    unbalanced = {
        "traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
        ]
    }
    assert any("unclosed" in p for p in validate_chrome_trace(unbalanced))
