"""The metrics registry and its exporters.

The registry is the numeric backbone of the observability layer: every
overlay component increments labelled counters into it, and the
exporters must render those values losslessly.  The core property here
is the round trip — the Prometheus text dump re-parses to exactly the
registry's values — checked both on a hand-built registry and on the
registry a real chaos run under fire leaves behind.
"""

import json
import math

import pytest

from repro.obs import MetricsRegistry, parse_prometheus_text, to_json_lines, to_prometheus_text
from repro.testing import run_swarm_under_faults
from repro.util.errors import ConfigurationError


def test_counter_gauge_basics():
    reg = MetricsRegistry()
    reg.inc("jobs_total", server="srv")
    reg.inc("jobs_total", 2.0, server="srv")
    reg.inc("jobs_total", server="other")
    reg.set_gauge("queue_depth", 7, server="srv")
    reg.set_gauge("queue_depth", 3, server="srv")

    assert reg.value("jobs_total", server="srv") == 3.0
    assert reg.value("jobs_total", server="other") == 1.0
    assert reg.total("jobs_total") == 4.0
    assert reg.value("queue_depth", server="srv") == 3.0
    # absent child / absent family fall back to the default
    assert reg.value("jobs_total", default=99.0, server="nobody") == 99.0
    assert reg.value("no_such_metric", default=5.0) == 5.0


def test_counters_reject_decrease_and_type_conflicts():
    reg = MetricsRegistry()
    reg.inc("a_total")
    with pytest.raises(ConfigurationError):
        reg.counter("a_total").labels().inc(-1.0)
    with pytest.raises(ConfigurationError):
        reg.gauge("a_total")  # already a counter
    with pytest.raises(ConfigurationError):
        reg.inc("a_total", server="srv")  # labelnames changed


def test_histogram_cumulative_semantics():
    reg = MetricsRegistry()
    for v in (0.5, 1.5, 2.5, 100.0):
        reg.observe("latency_seconds", v, help="x")
    family = reg.histogram("latency_seconds")
    hist = family.labels()
    assert hist.count == 4
    assert hist.sum == pytest.approx(104.5)
    cumulative = dict(hist.cumulative())
    # buckets are cumulative: everything <= 5.0 includes the 0.5/1.5/2.5
    assert cumulative[0.5] == 1
    assert cumulative[5.0] == 3
    assert cumulative[math.inf] == 4


def test_prometheus_round_trip_hand_built():
    reg = MetricsRegistry()
    reg.inc("events_total", 5, help="Events.", kind="drop")
    reg.inc("events_total", 2, kind='we"ird\nlabel')
    reg.set_gauge("depth", 4.5, help="Depth.")
    reg.observe("sizes", 0.02, help="Sizes.")
    reg.observe("sizes", 7.0)

    text = to_prometheus_text(reg)
    values, types = parse_prometheus_text(text)

    assert types["events_total"] == "counter"
    assert types["depth"] == "gauge"
    assert types["sizes"] == "histogram"
    # every exported sample re-parses to its registry value
    for sample in reg.collect():
        key = (sample.name, tuple(sorted(sample.labels.items())))
        assert values[key] == pytest.approx(sample.value), sample.name
    # and nothing extra appeared
    assert len(values) == len(reg.collect())


def test_prometheus_round_trip_live_run():
    out = run_swarm_under_faults(seed=0)
    reg = out.obs.metrics
    values, types = parse_prometheus_text(to_prometheus_text(reg))
    samples = reg.collect()
    assert samples, "a live run must leave metrics behind"
    for sample in samples:
        key = (sample.name, tuple(sorted(sample.labels.items())))
        assert values[key] == pytest.approx(sample.value), sample.name
    # the run's basic accounting shows up under the expected names
    assert values[("repro_server_commands_submitted_total", (("server", "srv"),))] == 3
    assert types["repro_server_queue_wait_seconds"] == "histogram"


def test_json_lines_export():
    reg = MetricsRegistry()
    reg.inc("a_total", 2, kind="x")
    reg.observe("h", 0.3)
    lines = to_json_lines(reg).strip().splitlines()
    parsed = [json.loads(line) for line in lines]
    assert {p["name"] for p in parsed} >= {"a_total", "h_bucket", "h_sum", "h_count"}
    counter = next(p for p in parsed if p["name"] == "a_total")
    assert counter == {
        "labels": {"kind": "x"},
        "name": "a_total",
        "type": "counter",
        "value": 2.0,
    }


def test_snapshot_is_deterministic_across_seeded_runs():
    first = run_swarm_under_faults(seed=3).obs.metrics.snapshot()
    second = run_swarm_under_faults(seed=3).obs.metrics.snapshot()

    # byte accounting is derived from serialized payload sizes, and MD
    # results embed a measured `wall_seconds` whose decimal length
    # varies run to run — so the size-derived series may wobble by a
    # byte; every logically-clocked series must match exactly
    def logical(snapshot):
        return {
            name: series
            for name, series in snapshot.items()
            if not name.startswith(
                ("repro_net_bytes_total", "repro_net_transfer_seconds")
            )
        }

    assert logical(first) == logical(second)
    assert first["repro_net_bytes_total"][""] == pytest.approx(
        second["repro_net_bytes_total"][""], abs=16
    )
