"""Hypothesis round-trip properties for every wire-format dataclass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.command import Command
from repro.md.engine import MDTask
from repro.md.simulation import Checkpoint
from repro.server.matching import WorkerCapabilities
from repro.util.serialization import decode_message, encode_message


names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=20
)


@settings(max_examples=50)
@given(
    command_id=names,
    project_id=names,
    executable=st.sampled_from(["mdrun", "fepsample"]),
    min_cores=st.integers(min_value=1, max_value=8),
    extra_cores=st.integers(min_value=0, max_value=120),
    priority=st.integers(min_value=-10, max_value=10),
    origin=names,
    with_checkpoint=st.booleans(),
)
def test_command_payload_roundtrip(
    command_id, project_id, executable, min_cores, extra_cores, priority,
    origin, with_checkpoint,
):
    command = Command(
        command_id=command_id,
        project_id=project_id,
        executable=executable,
        payload={"n_steps": 100},
        min_cores=min_cores,
        preferred_cores=min_cores + extra_cores,
        priority=priority,
        origin_server=origin,
        checkpoint={"step": 5} if with_checkpoint else None,
    )
    wire = decode_message(encode_message(command.to_payload()))
    assert Command.from_payload(wire) == command


@settings(max_examples=50)
@given(
    model=st.sampled_from(
        ["villin-fast", "villin-full", "muller-brown", "double-well"]
    ),
    n_steps=st.integers(min_value=1, max_value=10**6),
    report=st.integers(min_value=1, max_value=1000),
    integrator=st.sampled_from(["langevin", "nose-hoover", "verlet"]),
    temperature=st.floats(min_value=1.0, max_value=1000.0),
    friction=st.floats(min_value=0.01, max_value=100.0),
    timestep=st.floats(min_value=1e-4, max_value=0.1),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    task_id=names,
    with_positions=st.booleans(),
)
def test_mdtask_payload_roundtrip(
    model, n_steps, report, integrator, temperature, friction, timestep,
    seed, task_id, with_positions,
):
    task = MDTask(
        model=model,
        n_steps=n_steps,
        report_interval=report,
        integrator=integrator,
        temperature=temperature,
        friction=friction,
        timestep=timestep,
        seed=seed,
        initial_positions=np.arange(12.0).reshape(4, 3) if with_positions else None,
        task_id=task_id,
    )
    wire = decode_message(encode_message(task.to_payload()))
    restored = MDTask.from_payload(wire)
    assert restored.model == task.model
    assert restored.n_steps == task.n_steps
    assert restored.integrator == task.integrator
    assert restored.temperature == pytest.approx(task.temperature)
    assert restored.friction == pytest.approx(task.friction)
    assert restored.timestep == pytest.approx(task.timestep)
    assert restored.seed == task.seed
    assert restored.task_id == task.task_id
    if with_positions:
        np.testing.assert_array_equal(
            restored.initial_positions, task.initial_positions
        )
    else:
        assert restored.initial_positions is None


@settings(max_examples=50, deadline=None)
@given(
    n_atoms=st.integers(min_value=1, max_value=30),
    time=st.floats(min_value=0, max_value=1e6),
    step=st.integers(min_value=0, max_value=10**9),
    thermo=st.floats(allow_nan=False, allow_infinity=False, width=32),
    data_seed=st.integers(min_value=0, max_value=10**6),
)
def test_checkpoint_payload_roundtrip(n_atoms, time, step, thermo, data_seed):
    rng = np.random.default_rng(data_seed)
    checkpoint = Checkpoint(
        positions=rng.normal(size=(n_atoms, 3)),
        velocities=rng.normal(size=(n_atoms, 3)),
        time=time,
        step=step,
        thermostat_state=float(thermo),
    )
    wire = decode_message(encode_message(checkpoint.to_payload()))
    restored = Checkpoint.from_payload(wire)
    np.testing.assert_array_equal(restored.positions, checkpoint.positions)
    np.testing.assert_array_equal(restored.velocities, checkpoint.velocities)
    assert restored.time == pytest.approx(checkpoint.time)
    assert restored.step == checkpoint.step
    assert restored.thermostat_state == pytest.approx(
        checkpoint.thermostat_state, rel=1e-6
    )


@settings(max_examples=50)
@given(
    worker=names,
    platform=st.sampled_from(["smp", "mpi"]),
    cores=st.integers(min_value=1, max_value=4096),
    executables=st.lists(
        st.sampled_from(["mdrun", "fepsample"]), max_size=2, unique=True
    ),
)
def test_capabilities_payload_roundtrip(worker, platform, cores, executables):
    caps = WorkerCapabilities(
        worker=worker, platform=platform, cores=cores, executables=executables
    )
    wire = decode_message(encode_message(caps.to_payload()))
    assert WorkerCapabilities.from_payload(wire) == caps
