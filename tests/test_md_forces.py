"""Force-field correctness: analytic vs numerical gradients, invariances."""

import numpy as np
import pytest

from repro.md.forcefield.base import composite_energy_forces, numerical_forces
from repro.md.forcefield.bonded import (
    HarmonicAngleForce,
    HarmonicBondForce,
    PeriodicDihedralForce,
)
from repro.md.forcefield.go_model import GoContactForce
from repro.md.forcefield.nonbonded import (
    ExcludedVolumeForce,
    LennardJonesForce,
    ReactionFieldElectrostatics,
)
from repro.md.models.villin import build_villin
from repro.md.neighborlist import AllPairs
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@pytest.fixture(scope="module")
def perturbed_native():
    model = build_villin("fast")
    rng = RandomStream(3)
    return model, model.native + rng.normal(scale=0.05, size=model.native.shape)


def test_all_villin_terms_match_numerical_gradient(perturbed_native):
    model, pos = perturbed_native
    for force in model.system.forces:
        _, analytic = force.energy_forces(pos)
        numerical = numerical_forces(force, pos)
        scale = max(np.abs(numerical).max(), 1e-9)
        assert np.abs(analytic - numerical).max() / scale < 1e-5, type(force).__name__


def test_bond_force_zero_at_equilibrium():
    force = HarmonicBondForce([[0, 1]], [1.0], [100.0])
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    energy, forces = force.energy_forces(pos)
    assert energy == pytest.approx(0.0)
    np.testing.assert_allclose(forces, 0.0, atol=1e-12)


def test_bond_force_restoring_direction():
    force = HarmonicBondForce([[0, 1]], [1.0], [100.0])
    pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])  # stretched
    energy, forces = force.energy_forces(pos)
    assert energy == pytest.approx(0.5 * 100.0 * 0.25)
    assert forces[1, 0] < 0  # pulls atom 1 back
    assert forces[0, 0] > 0


def test_bond_force_misaligned_arrays_rejected():
    with pytest.raises(ConfigurationError):
        HarmonicBondForce([[0, 1]], [1.0, 2.0], [100.0])


def test_angle_force_zero_at_equilibrium():
    theta0 = np.deg2rad(90.0)
    force = HarmonicAngleForce([[0, 1, 2]], [theta0], [50.0])
    pos = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    energy, forces = force.energy_forces(pos)
    assert energy == pytest.approx(0.0, abs=1e-10)
    np.testing.assert_allclose(forces, 0.0, atol=1e-8)


def test_angle_force_energy_value():
    # 90 degrees vs equilibrium 60 degrees: E = 0.5 k (pi/6)^2
    force = HarmonicAngleForce([[0, 1, 2]], [np.deg2rad(60.0)], [50.0])
    pos = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    energy, _ = force.energy_forces(pos)
    assert energy == pytest.approx(0.5 * 50.0 * (np.pi / 6) ** 2, rel=1e-6)


def test_dihedral_angles_known_geometry():
    # trans (phi = pi) configuration
    pos = np.array(
        [[0.0, 1.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, -1.0, 0.0]]
    )
    quads = np.array([[0, 1, 2, 3]])
    phi = PeriodicDihedralForce.dihedral_angles(pos, quads)
    assert abs(abs(phi[0]) - np.pi) < 1e-10


def test_dihedral_cis_geometry():
    pos = np.array(
        [[0.0, 1.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 1.0, 0.0]]
    )
    quads = np.array([[0, 1, 2, 3]])
    phi = PeriodicDihedralForce.dihedral_angles(pos, quads)
    assert abs(phi[0]) < 1e-10


def test_dihedral_force_minimum_at_native_phase():
    rng = RandomStream(11)
    pos = rng.normal(size=(4, 3))
    quads = np.array([[0, 1, 2, 3]])
    phi_native = PeriodicDihedralForce.dihedral_angles(pos, quads)
    force = PeriodicDihedralForce(quads, phi_native - np.pi, [3.0], [1])
    energy, forces = force.energy_forces(pos)
    assert energy == pytest.approx(0.0, abs=1e-9)  # k(1+cos(pi)) = 0
    np.testing.assert_allclose(forces, 0.0, atol=1e-7)


def test_lj_force_minimum_at_sigma_pow():
    # LJ minimum at r = 2^(1/6) sigma
    provider = AllPairs(2)
    force = LennardJonesForce(provider, sigma=0.3, epsilon=1.0, cutoff=2.0)
    r_min = 0.3 * 2 ** (1 / 6)
    pos = np.array([[0.0, 0.0, 0.0], [r_min, 0.0, 0.0]])
    _, forces = force.energy_forces(pos)
    np.testing.assert_allclose(forces, 0.0, atol=1e-9)


def test_lj_energy_shifted_to_zero_at_cutoff():
    provider = AllPairs(2)
    force = LennardJonesForce(provider, sigma=0.3, epsilon=1.0, cutoff=1.0)
    pos = np.array([[0.0, 0.0, 0.0], [0.999999, 0.0, 0.0]])
    energy, _ = force.energy_forces(pos)
    assert energy == pytest.approx(0.0, abs=1e-4)


def test_lj_numerical_gradient():
    rng = RandomStream(5)
    pos = rng.uniform(0, 1.0, size=(6, 3))
    force = LennardJonesForce(AllPairs(6), sigma=0.25, epsilon=0.8, cutoff=5.0)
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-4, atol=1e-5)


def test_lj_lorentz_berthelot_mixing():
    sigma = np.array([0.2, 0.4])
    eps = np.array([1.0, 4.0])
    force = LennardJonesForce(AllPairs(2), sigma=sigma, epsilon=eps, cutoff=10.0)
    # mixed sigma = 0.3, mixed eps = 2.0; at r=0.3 energy = 4*2*(1-1)-shift
    pos = np.array([[0.0, 0.0, 0.0], [0.3, 0.0, 0.0]])
    energy, _ = force.energy_forces(pos)
    sc6 = (0.3 / 10.0) ** 6
    shift = 4 * 2.0 * (sc6 * sc6 - sc6)
    assert energy == pytest.approx(0.0 - shift, abs=1e-9)


def test_reaction_field_opposite_charges_attract():
    charges = np.array([1.0, -1.0])
    force = ReactionFieldElectrostatics(AllPairs(2), charges, cutoff=2.0)
    pos = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
    energy, forces = force.energy_forces(pos)
    assert energy < 0
    assert forces[1, 0] < 0  # pulled toward atom 0


def test_reaction_field_energy_zero_at_cutoff():
    charges = np.array([1.0, -1.0])
    force = ReactionFieldElectrostatics(AllPairs(2), charges, cutoff=1.0)
    pos = np.array([[0.0, 0.0, 0.0], [0.9999999, 0.0, 0.0]])
    energy, _ = force.energy_forces(pos)
    assert energy == pytest.approx(0.0, abs=1e-4)


def test_reaction_field_numerical_gradient():
    rng = RandomStream(6)
    pos = rng.uniform(0, 1.0, size=(5, 3))
    charges = rng.normal(size=5)
    force = ReactionFieldElectrostatics(AllPairs(5), charges, cutoff=5.0)
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-4, atol=1e-5)


def test_excluded_volume_purely_repulsive():
    force = ExcludedVolumeForce(AllPairs(2), sigma=0.4, epsilon=1.0)
    pos = np.array([[0.0, 0.0, 0.0], [0.3, 0.0, 0.0]])
    energy, forces = force.energy_forces(pos)
    assert energy > 0
    assert forces[1, 0] > 0  # pushed away


def test_go_contact_minimum_at_native_distance():
    force = GoContactForce([[0, 1]], [0.6], epsilon=2.0)
    pos = np.array([[0.0, 0.0, 0.0], [0.6, 0.0, 0.0]])
    energy, forces = force.energy_forces(pos)
    assert energy == pytest.approx(-2.0)  # 5-6 = -1 times eps
    np.testing.assert_allclose(forces, 0.0, atol=1e-9)


def test_go_contact_numerical_gradient():
    rng = RandomStream(7)
    pos = rng.uniform(0, 1.5, size=(6, 3))
    pairs = np.array([[0, 3], [1, 4], [2, 5]])
    force = GoContactForce(pairs, [0.5, 0.6, 0.7], epsilon=1.5)
    _, analytic = force.energy_forces(pos)
    numerical = numerical_forces(force, pos)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-4, atol=1e-5)


def test_go_fraction_native_all_formed():
    force = GoContactForce([[0, 1]], [0.6])
    pos = np.array([[0.0, 0.0, 0.0], [0.6, 0.0, 0.0]])
    assert force.fraction_native(pos) == 1.0


def test_go_fraction_native_none_formed():
    force = GoContactForce([[0, 1]], [0.6])
    pos = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
    assert force.fraction_native(pos) == 0.0


def test_forces_sum_to_zero_translation_invariance(perturbed_native):
    """Newton's third law: net force vanishes for internal interactions."""
    model, pos = perturbed_native
    for force in model.system.forces:
        _, forces = force.energy_forces(pos)
        np.testing.assert_allclose(
            forces.sum(axis=0), 0.0, atol=1e-8
        ), type(force).__name__


def test_energy_invariant_under_rotation_translation(perturbed_native):
    model, pos = perturbed_native
    e_ref, _ = composite_energy_forces(model.system.forces, pos)
    # random rotation via QR
    rng = RandomStream(8)
    q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    moved = pos @ q.T + np.array([1.0, -2.0, 3.0])
    e_rot, _ = composite_energy_forces(model.system.forces, moved)
    assert e_rot == pytest.approx(e_ref, rel=1e-9)


def test_invalid_cutoffs_rejected():
    with pytest.raises(ConfigurationError):
        LennardJonesForce(AllPairs(2), 0.3, 1.0, cutoff=-1.0)
    with pytest.raises(ConfigurationError):
        ReactionFieldElectrostatics(AllPairs(2), np.zeros(2), cutoff=0.0)
    with pytest.raises(ConfigurationError):
        ExcludedVolumeForce(AllPairs(2), sigma=-0.1)
    with pytest.raises(ConfigurationError):
        GoContactForce([[0, 1]], [-0.5])


def test_lj_with_cell_list_matches_all_pairs():
    """Cell-list pruning changes nothing within the cutoff."""
    from repro.md.neighborlist import CellList

    rng = RandomStream(9)
    positions = rng.uniform(0, 2.0, size=(40, 3))
    cutoff = 0.6
    lj_all = LennardJonesForce(AllPairs(40), sigma=0.25, epsilon=1.0, cutoff=cutoff)
    lj_cell = LennardJonesForce(
        CellList(cutoff=cutoff, skin=0.0), sigma=0.25, epsilon=1.0, cutoff=cutoff
    )
    e_all, f_all = lj_all.energy_forces(positions)
    e_cell, f_cell = lj_cell.energy_forces(positions)
    assert e_cell == pytest.approx(e_all, rel=1e-12)
    np.testing.assert_allclose(f_cell, f_all, atol=1e-10)


def test_excluded_volume_with_cell_list_matches_all_pairs():
    from repro.md.neighborlist import CellList

    rng = RandomStream(10)
    positions = rng.uniform(0, 1.5, size=(30, 3))
    wall_all = ExcludedVolumeForce(AllPairs(30), sigma=0.3, epsilon=1.0)
    wall_cell = ExcludedVolumeForce(
        CellList(cutoff=0.9, skin=0.0), sigma=0.3, epsilon=1.0
    )
    e_all, f_all = wall_all.energy_forces(positions)
    e_cell, f_cell = wall_cell.energy_forces(positions)
    assert e_cell == pytest.approx(e_all, rel=1e-12)
    np.testing.assert_allclose(f_cell, f_all, atol=1e-10)
