"""Per-project ownership epochs: journaling, stamping, fencing.

Every effectful path a stale writer could reach — lease grant,
heartbeat checkpoint, result acceptance, result forward, re-adoption —
must validate the command's epoch stamp against the project's current
regime and reject older stamps with a typed, *quiet* verdict: counted
in ``repro_fencing_rejections_total``, recorded as
``FENCING_REJECTED``, never retried and never fed to circuit
breakers.  These tests pin each path down in isolation; the
partition scenario in test_partition_failover.py proves them composed.
"""

import pytest

from repro.core.command import Command
from repro.core.events import EventKind, EventLog
from repro.net.protocol import Message, MessageType
from repro.net.transport import Network
from repro.server.server import CopernicusServer
from repro.server.shardmon import ShardMonitor
from repro.server.wal import ProjectJournal, ServerJournal
from repro.util.errors import FencedError
from repro.worker.platform import SMPPlatform
from repro.worker.worker import Worker


def make_owner(tmp_path, name="owner", epoch=0, pid="p"):
    net = Network(seed=0)
    owner = CopernicusServer(name, net)
    owner.events = EventLog()
    owner.attach_journal(ServerJournal(tmp_path / name))
    received = []
    owner.host_project(pid, lambda c, r: received.append(c.command_id))
    if epoch:
        owner.adopt_epoch(pid, epoch)
    return net, owner, received


def stale_command(command_id="c1", pid="p", epoch=0):
    command = Command(command_id, pid, "mdrun", {})
    command.epoch = epoch
    return command


# -- the WAL record ---------------------------------------------------------


def test_epoch_record_round_trips_through_recovery(tmp_path):
    journal = ProjectJournal(tmp_path / "p", snapshot_every=None)
    assert journal.state.epoch == 0
    journal.record_epoch(3)
    journal.close()
    assert ProjectJournal(tmp_path / "p").recover().epoch == 3


def test_epoch_record_is_idempotent_and_forward_only(tmp_path):
    journal = ProjectJournal(tmp_path / "p", snapshot_every=None)
    journal.record_epoch(2)
    before = list(journal.wal.records())
    journal.record_epoch(2)  # same regime: no new record
    journal.record_epoch(1)  # older regime: silently ignored
    assert list(journal.wal.records()) == before
    assert journal.state.epoch == 2


def test_epoch_survives_snapshot_compaction(tmp_path):
    journal = ProjectJournal(tmp_path / "p", snapshot_every=None)
    journal.record_epoch(4)
    journal.record_result(stale_command("c1", epoch=4), {"steps": 1})
    journal.snapshot()  # compacts the log into the snapshot
    journal.close()
    state = ProjectJournal(tmp_path / "p").recover()
    assert state.epoch == 4
    assert [c.command_id for c, _ in state.results] == ["c1"]


def test_pre_epoch_journal_recovers_at_epoch_zero(tmp_path):
    # a journal written before epochs existed has no epoch record: it
    # must recover at the epoch-zero regime, not crash
    journal = ProjectJournal(tmp_path / "p", snapshot_every=None)
    journal.record_issued([stale_command("c1")])
    journal.close()
    assert ProjectJournal(tmp_path / "p").recover().epoch == 0


# -- adoption ---------------------------------------------------------------


def test_adopt_epoch_journals_and_records_the_bump(tmp_path):
    net, owner, _ = make_owner(tmp_path)
    owner.adopt_epoch("p", 2)
    assert owner.epochs["p"] == 2
    assert owner.journal.project("p").state.epoch == 2
    bumps = owner.events.filter(kind=EventKind.EPOCH_BUMPED)
    assert [(e.details["previous"], e.details["epoch"]) for e in bumps] == [
        (0, 2)
    ]
    # re-adopting the same epoch is a restart, not a regime change
    owner.adopt_epoch("p", 2)
    assert len(owner.events.filter(kind=EventKind.EPOCH_BUMPED)) == 1


def test_adopt_older_epoch_is_fenced(tmp_path):
    net, owner, _ = make_owner(tmp_path, epoch=3)
    with pytest.raises(FencedError) as caught:
        owner.adopt_epoch("p", 1)
    assert caught.value.project_id == "p"
    assert caught.value.stale_epoch == 1
    assert caught.value.current_epoch == 3
    assert owner.epochs["p"] == 3
    assert owner.obs.metrics.value(
        "repro_fencing_rejections_total", server="owner", project="p", path="adopt"
    ) == 1


def test_restore_commands_restamps_the_recovered_epoch(tmp_path):
    net, owner, _ = make_owner(tmp_path)
    command = stale_command("c1", epoch=0)
    owner.restore_commands("p", [command], {"done"}, epoch=5)
    assert owner.epochs["p"] == 5
    assert command.epoch == 5  # reissued under the owner's regime
    assert [c.command_id for c in owner.queue.commands()] == ["c1"]
    assert "p::done" in owner.completed_ids


# -- the effectful paths ----------------------------------------------------


def test_stale_queued_command_is_never_leased(tmp_path):
    net, owner, _ = make_owner(tmp_path, name="srv", epoch=2)
    worker = Worker(
        "w0", net, server="srv", platform=SMPPlatform(cores=2),
        segment_steps=100,
    )
    net.connect("srv", "w0")
    worker.announce(0.0)
    owner.queue.push(stale_command(epoch=0))
    completed = worker.work_once(now=0.0)
    # the stale command was dropped before the lease was granted or
    # journaled — not handed to the worker, not left in the queue
    assert completed == 0
    assert len(owner.queue) == 0
    assert owner.leases._leases == {}
    assert owner.journal.project("p").state.leases == {}
    assert owner.obs.metrics.value(
        "repro_fencing_rejections_total", server="srv", project="p", path="lease"
    ) == 1


def test_stale_result_is_fenced_before_the_dedup_barrier(tmp_path):
    net, owner, received = make_owner(tmp_path, epoch=2)
    outcome = owner._route_result(stale_command(epoch=1), {"steps": 1})
    assert outcome == "fenced"
    assert received == []
    # never journaled, never marked complete: the current regime's
    # re-issue of the same command must still be acceptable
    assert owner.journal.project("p").state.results == []
    assert "p::c1" not in owner.completed_ids
    fresh = stale_command(epoch=2)
    assert owner._route_result(fresh, {"steps": 1}) == "completed"
    assert received == ["c1"]


def test_stale_heartbeat_checkpoint_is_rejected_not_journaled(tmp_path):
    net, owner, _ = make_owner(tmp_path, name="srv", epoch=2)
    command = stale_command(epoch=0)
    owner.monitor.register("w0", 0.0)
    owner.assignments.setdefault("w0", {})[command.scoped_id] = command
    owner.handle(
        Message(
            type=MessageType.HEARTBEAT,
            src="w0",
            dst="srv",
            payload={
                "worker": "w0",
                "now": 1.0,
                "checkpoints": {command.scoped_id: {"step": 100}},
            },
        )
    )
    assert owner.journal.project("p").state.checkpoints == {}
    assert owner.obs.metrics.value(
        "repro_fencing_rejections_total", server="srv", project="p", path="checkpoint"
    ) == 1


def test_stale_forward_raises_typed_fenced_error(tmp_path):
    net, owner, received = make_owner(tmp_path, epoch=2)
    carrier = CopernicusServer("carrier", net)
    net.connect("carrier", "owner")
    with pytest.raises(FencedError) as caught:
        carrier.send(
            "owner",
            MessageType.RESULT_FORWARD,
            {"command": stale_command(epoch=1).to_payload(), "result": {}},
        )
    assert caught.value.project_id == "p"
    assert caught.value.stale_epoch == 1
    assert caught.value.current_epoch == 2
    assert received == []
    assert owner.obs.metrics.value(
        "repro_fencing_rejections_total", server="owner", project="p", path="forward"
    ) == 1


# -- satellite: transport triage --------------------------------------------


def test_fencing_rejection_is_permanent_and_quiet_in_transport(tmp_path):
    """FencedError must not be retried, must not count as a send
    failure, and must never feed circuit-breaker penalties."""
    net, owner, _ = make_owner(tmp_path, epoch=2)
    carrier = CopernicusServer("carrier", net)
    net.connect("carrier", "owner")
    with pytest.raises(FencedError):
        carrier.send(
            "owner",
            MessageType.RESULT_FORWARD,
            {"command": stale_command(epoch=0).to_payload(), "result": {}},
        )
    # exactly one rejection at the owner: the handler ran once — the
    # retry loop re-raised instead of re-sending the doomed write
    assert owner.fencing_rejections == 1
    assert carrier.send_retries == 0
    assert carrier.send_failures == 0
    assert not net.obs.metrics.value(
        "repro_net_send_failures_total", endpoint="carrier"
    )
    # breaker counters flat: no failures recorded, nothing opened
    for breaker in carrier.peer_breakers.values():
        assert breaker.opens == 0
        assert breaker.failures == 0
    assert not net.obs.metrics.value(
        "repro_net_breaker_transitions_total", endpoint="carrier"
    )


def test_relay_drops_fenced_result_quietly(tmp_path):
    # a carrier relaying a dead regime's result learns the verdict and
    # drops the relay instead of erroring or retrying
    net, owner, received = make_owner(tmp_path, epoch=2)
    carrier = CopernicusServer("carrier", net)
    net.connect("carrier", "owner")
    carrier.update_route("p", "owner")
    outcome = carrier._route_result(stale_command(epoch=0), {"steps": 1})
    assert outcome == "fenced"
    assert received == []
    assert carrier.obs.metrics.value(
        "repro_server_results_total", server="carrier", outcome="fenced"
    ) == 1


# -- demotion ---------------------------------------------------------------


def make_zombie_pair(tmp_path):
    """owner (epoch 2) and a zombie that still thinks it hosts ``p``."""
    net = Network(seed=0)
    owner = CopernicusServer("owner", net)
    owner.events = EventLog()
    owner.attach_journal(ServerJournal(tmp_path / "owner"))
    received = []
    owner.host_project("p", lambda c, r: received.append(c.command_id))
    owner.adopt_epoch("p", 2)
    zombie = CopernicusServer("zombie", net)
    zombie.events = EventLog()
    zombie.attach_journal(ServerJournal(tmp_path / "zombie"))
    zombie.host_project("p", lambda c, r: None)
    net.connect("zombie", "owner")
    return net, owner, zombie, received


def test_demotion_stands_the_zombie_down_completely(tmp_path):
    net, owner, zombie, received = make_zombie_pair(tmp_path)
    # the dead regime's residue: a queued command, a leased one, and
    # two locally-journaled split-brain completions
    zombie.queue.push(stale_command("queued"))
    leased = stale_command("leased")
    zombie.monitor.register("w0", 0.0)
    zombie.assignments.setdefault("w0", {})[leased.scoped_id] = leased
    zombie.leases.grant("w0", leased, 0.0, 100.0)
    journal = zombie.journal.project("p")
    journal.record_result(stale_command("done1"), {"steps": 1})
    journal.record_result(stale_command("done2"), {"steps": 1})

    report = zombie.demote_project("p", 2, "owner")

    assert report["queue_purged"] == 1
    assert report["leases_voided"] == 1
    assert report["results_forwarded"] == 2
    # the forwards still carried their stale stamps: the owner's fence
    # rejected them — nothing was applied at the new regime
    assert report["forwards_rejected"] == 2
    assert received == []
    assert owner.fencing_rejections == 2
    # dispatch is over: no queue, no leases, no sink, route flipped
    assert len(zombie.queue) == 0
    assert zombie.leases._leases == {}
    assert not zombie.hosts("p")
    assert zombie.routes["p"] == "owner"
    assert zombie.epochs["p"] == 2
    assert "p" not in zombie.journal._journals  # journal handle freed
    fenced = zombie.events.filter(kind=EventKind.PROJECT_FENCED)
    assert [e.details["owner"] for e in fenced] == ["owner"]
    assert zombie.obs.metrics.value(
        "repro_projects_fenced_total", server="zombie", project="p"
    ) == 1


def test_demotion_is_idempotent(tmp_path):
    net, owner, zombie, _ = make_zombie_pair(tmp_path)
    first = zombie.demote_project("p", 2, "owner")
    assert zombie.demote_project("p", 2, "owner") is first
    assert len(zombie.events.filter(kind=EventKind.PROJECT_FENCED)) == 1


def test_demoted_server_refuses_late_submissions(tmp_path):
    net, owner, zombie, _ = make_zombie_pair(tmp_path)
    zombie.demote_project("p", 2, "owner")
    with pytest.raises(FencedError):
        zombie.submit_commands([stale_command("late")])


def test_probe_fence_table_demotes_a_healed_zombie(tmp_path):
    # the zombie-watch path end to end: the gateway's probe carries the
    # fence table; the healed zombie demotes itself synchronously and
    # the demotion report rides back on the probe answer
    net, owner, zombie, _ = make_zombie_pair(tmp_path)
    gateway = CopernicusServer("gateway", net)
    net.connect("gateway", "zombie")
    monitor = ShardMonitor(gateway, ["zombie"])
    monitor.record_fence("p", 2, "owner")
    monitor.mark_dead("zombie")
    assert monitor.check(10.0) == []  # zombie watch: dead stays dead
    assert len(monitor.demotions) == 1
    report = monitor.demotions[0]
    assert report["project_id"] == "p"
    assert report["server"] == "zombie"
    assert report["owner"] == "owner"
    assert report["epoch"] == 2
    assert not zombie.hosts("p")
    # the next probe does not demote again (idempotent, one report)
    monitor.check(20.0)
    assert len(monitor.demotions) == 1
