"""Tests for the simulated domain decomposition (the MPI level)."""

import numpy as np
import pytest

from repro.md.models.villin import build_villin
from repro.md.parallel import (
    BYTES_PER_VECTOR,
    DomainDecomposition,
    slab_assignment,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RandomStream


@pytest.fixture(scope="module")
def villin():
    return build_villin("fast")


def test_slab_assignment_balanced():
    rng = RandomStream(0)
    positions = rng.normal(size=(100, 3))
    owner = slab_assignment(positions, 4)
    counts = np.bincount(owner, minlength=4)
    assert counts.tolist() == [25, 25, 25, 25]


def test_slab_assignment_spatial_coherence():
    rng = RandomStream(1)
    positions = rng.normal(size=(60, 3))
    owner = slab_assignment(positions, 3, axis=0)
    # slabs are ordered along the axis: every atom of rank 0 sits left
    # of every atom of rank 2
    assert positions[owner == 0, 0].max() <= positions[owner == 2, 0].min()


def test_slab_assignment_validation():
    with pytest.raises(ConfigurationError):
        slab_assignment(np.zeros((5, 3)), 0)
    with pytest.raises(ConfigurationError):
        slab_assignment(np.zeros((2, 3)), 5)


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
def test_decomposed_forces_match_serial(villin, n_ranks):
    """The decomposed computation equals the serial one exactly."""
    rng = RandomStream(2)
    positions = villin.native + rng.normal(scale=0.05, size=villin.native.shape)
    e_serial, f_serial = villin.system.energy_forces(positions)
    dd = DomainDecomposition(villin.system, positions, n_ranks=n_ranks)
    e_dd, f_dd, stats = dd.compute_forces(positions)
    assert e_dd == pytest.approx(e_serial, rel=1e-12)
    np.testing.assert_allclose(f_dd, f_serial, atol=1e-10)
    assert stats.n_ranks == n_ranks


def test_single_rank_has_no_communication(villin):
    dd = DomainDecomposition(villin.system, villin.native, n_ranks=1)
    _, _, stats = dd.compute_forces(villin.native)
    assert stats.total_bytes_per_step == 0
    assert stats.max_halo == 0


def test_more_ranks_more_communication(villin):
    """Halo traffic grows with rank count (smaller slabs, same cutoff)."""
    vol = []
    for n_ranks in (2, 4, 8):
        dd = DomainDecomposition(villin.system, villin.native, n_ranks=n_ranks)
        _, _, stats = dd.compute_forces(villin.native)
        vol.append(stats.total_bytes_per_step)
    assert vol[0] < vol[-1]


def test_comm_stats_bytes_formula(villin):
    dd = DomainDecomposition(villin.system, villin.native, n_ranks=3)
    _, _, stats = dd.compute_forces(villin.native)
    assert stats.total_bytes_per_step == BYTES_PER_VECTOR * (
        sum(stats.halo_atoms_per_rank) + sum(stats.export_atoms_per_rank)
    )


def test_load_balance_reasonable(villin):
    dd = DomainDecomposition(villin.system, villin.native, n_ranks=3)
    balance = dd.load_balance()
    assert balance.shape == (3,)
    assert balance.mean() == pytest.approx(1.0)
    assert balance.max() < 2.5  # no rank holds the whole system


def test_communication_summary_keys(villin):
    dd = DomainDecomposition(villin.system, villin.native, n_ranks=2)
    summary = dd.communication_summary(villin.native)
    assert {"n_ranks", "bytes_per_step", "max_halo_atoms", "mean_halo_atoms"} <= set(
        summary
    )


def test_decomposition_validates_positions(villin):
    with pytest.raises(ConfigurationError):
        DomainDecomposition(villin.system, np.zeros((3, 3)), n_ranks=2)


def test_decomposed_dynamics_track_serial(villin):
    """A short NVE run under the decomposed engine matches serial."""
    from repro.md import VelocityVerletIntegrator, Simulation
    from repro.md.system import State

    dd = DomainDecomposition(villin.system, villin.native, n_ranks=3)

    class DDSystemView:
        """System facade whose force evaluation is the decomposition."""

        def __init__(self, system, dd):
            self._system = system
            self._dd = dd
            self.masses = system.masses
            self.dim = system.dim
            self.n_atoms = system.n_atoms

        def energy_forces(self, positions):
            e, f, _ = self._dd.compute_forces(positions)
            return e, f

        def kinetic_energy(self, velocities):
            return self._system.kinetic_energy(velocities)

        def potential_energy(self, positions):
            return self.energy_forces(positions)[0]

    def run(system_like):
        state = State(villin.native.copy(), np.zeros_like(villin.native))
        sim = Simulation(system_like, VelocityVerletIntegrator(0.005), state)
        sim.run(100)
        return sim.state.positions

    serial = run(villin.system)
    parallel = run(DDSystemView(villin.system, dd))
    np.testing.assert_allclose(parallel, serial, atol=1e-9)
