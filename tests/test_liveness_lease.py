"""Lease deadlines from the performance model (repro.server.lease)."""

import pytest

from repro.core.command import Command
from repro.md.engine import MDTask
from repro.perfmodel.mdperf import VILLIN_MODEL
from repro.server.lease import (
    DEFAULT_ESTIMATE_SECONDS,
    LeasePolicy,
    LeaseTracker,
    estimate_command_seconds,
)
from repro.util.errors import ConfigurationError


def _md_command(command_id="c0", n_steps=5000, checkpoint_step=None):
    command = Command(
        command_id=command_id,
        project_id="p",
        executable="mdrun",
        payload=MDTask(
            model="villin-fast", n_steps=n_steps, report_interval=200,
            seed=0, task_id=command_id,
        ).to_payload(),
    )
    if checkpoint_step is not None:
        command.checkpoint = {"step": checkpoint_step}
    return command


def test_estimate_scales_with_remaining_steps():
    full = estimate_command_seconds(_md_command(n_steps=5000), cores=1)
    half = estimate_command_seconds(
        _md_command(n_steps=5000, checkpoint_step=2500), cores=1
    )
    assert full > 0
    assert half == pytest.approx(full / 2, rel=1e-6)


def test_estimate_matches_perfmodel_hours():
    command = _md_command(n_steps=5000)
    ns = 5000 * command.payload["timestep"] / 1000.0
    expected = VILLIN_MODEL.hours_for(ns, 4) * 3600.0
    assert estimate_command_seconds(command, cores=4) == pytest.approx(expected)


def test_estimate_zero_when_checkpoint_past_end():
    done = _md_command(n_steps=1000, checkpoint_step=1000)
    assert estimate_command_seconds(done, cores=1) == 0.0


def test_non_md_payload_falls_back_to_default():
    command = Command(command_id="x", project_id="p", executable="analyze")
    assert (
        estimate_command_seconds(command, cores=1)
        == DEFAULT_ESTIMATE_SECONDS
    )


def test_policy_applies_slack_and_floor():
    command = _md_command(n_steps=5000)
    policy = LeasePolicy(slack=2.0, min_seconds=50.0, hours_to_seconds=300.0)
    estimate = estimate_command_seconds(
        command, 1, hours_to_seconds=300.0
    )
    assert policy.deadline_for(command, 1, now=100.0) == pytest.approx(
        100.0 + 2.0 * estimate
    )
    # a tiny command hits the floor instead
    tiny = _md_command(n_steps=10)
    assert policy.deadline_for(tiny, 1, now=100.0) == pytest.approx(150.0)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        LeasePolicy(slack=0.0)
    with pytest.raises(ConfigurationError):
        LeasePolicy(min_seconds=-1.0)
    with pytest.raises(ConfigurationError):
        LeasePolicy(hours_to_seconds=0.0)


def test_tracker_grant_overdue_and_clear():
    tracker = LeaseTracker()
    a = _md_command("a")
    b = _md_command("b")
    tracker.grant("w0", a, now=0.0, deadline=100.0)
    tracker.grant("w0", b, now=0.0, deadline=300.0)
    tracker.grant("w1", a, now=0.0, deadline=150.0)
    assert len(tracker) == 3
    assert {l.command.command_id for l in tracker.overdue(200.0)} == {"a"}
    assert len(tracker.overdue(200.0)) == 2  # both workers' "a" leases

    # a speculated lease stops being reported as overdue
    lease = tracker.get("w0", "p::a")
    lease.speculated = True
    assert [l.worker for l in tracker.overdue(200.0)] == ["w1"]

    tracker.clear_command("p::a")
    assert len(tracker) == 1
    tracker.clear_worker("w0")
    assert len(tracker) == 0
    assert tracker.clear("w0", "p::b") is None  # already gone


def test_tracker_regrant_replaces_lease():
    tracker = LeaseTracker()
    a = _md_command("a")
    tracker.grant("w0", a, now=0.0, deadline=100.0)
    tracker.grant("w0", a, now=50.0, deadline=400.0)
    assert len(tracker) == 1
    assert tracker.get("w0", "p::a").deadline == 400.0
    assert tracker.overdue(200.0) == []
